//! φ-accrual failure detection over heartbeat-piggybacked load
//! reports.
//!
//! The classic φ-accrual detector grades inter-arrival times of
//! heartbeats. In this simulator that signal is useless: the MD loop
//! is bulk-synchronous, so every rank's virtual clock re-synchronizes
//! at each collective and a straggler's heartbeats arrive exactly as
//! punctually as anyone else's. What *does* localize a gray failure is
//! the per-unit compute cost each rank observes on itself — a node
//! running at half speed reports twice the seconds per unit of work.
//!
//! Each heartbeat therefore piggybacks the sender's last normalized
//! step cost (control messages are modeled at one byte regardless of
//! payload, so the piggyback changes no timing or RNG draw). Every
//! member receives the identical set of reports, so detector state is
//! **replicated by construction**: suspect/evict/rebalance decisions
//! come out the same on every rank with zero extra agreement traffic.
//!
//! The suspicion level of peer `j` is
//!
//! ```text
//! φ_j = log10(e) · ewma_j / median(ewma over live members)
//! ```
//!
//! i.e. the accrual scale applied to *relative* slowness, so a
//! uniformly slow (or uniformly fast) cohort accrues no suspicion at
//! all. A healthy peer sits at φ ≈ 0.434; the default thresholds put
//! *suspect* at 1.5× the cohort median (rebalance away) and *evict* at
//! ~3.5× (treat as crashed and shrink).

use cpc_cluster::RttEstimator;

/// `log10(e)` — the φ-accrual scale factor: φ of an event with
/// likelihood `10^-φ` under the fitted model, here applied to the
/// relative-slowness ratio.
pub const PHI_SCALE: f64 = core::f64::consts::LOG10_E;

/// Tuning knobs of the [`FailureDetector`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorConfig {
    /// φ at which a peer is *suspected* (rebalance work away from it).
    /// The default corresponds to 1.5× the cohort median cost.
    pub phi_suspect: f64,
    /// φ at which a peer is *evicted* (treated as crashed; the
    /// communicator shrinks). The default corresponds to ~3.5× the
    /// cohort median cost.
    pub phi_evict: f64,
    /// EWMA smoothing factor for per-peer cost reports, in `(0, 1]`;
    /// 1.0 = latest report only.
    pub ewma_alpha: f64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            phi_suspect: 0.65,
            phi_evict: 1.5,
            ewma_alpha: 0.5,
        }
    }
}

/// Replicated φ-accrual failure detector fed by heartbeat-piggybacked
/// per-unit cost reports. Peers are indexed by *engine* rank, which is
/// stable across communicator shrinks.
#[derive(Debug, Clone)]
pub struct FailureDetector {
    cfg: DetectorConfig,
    /// Per-engine-rank EWMA of reported per-unit step cost; `None`
    /// until the first report.
    ewma: Vec<Option<f64>>,
    /// Per-engine-rank RTT estimate from heartbeat wire times. Local
    /// observation only (each receiver sees its own wire times) — used
    /// for statistics and adaptive timers, never for the replicated
    /// suspect/evict decisions.
    rtt: Vec<RttEstimator>,
    /// Highest φ ever computed by this detector (reporting).
    phi_max: f64,
}

impl FailureDetector {
    /// A detector for a cluster of `ranks` engine ranks.
    pub fn new(ranks: usize, cfg: DetectorConfig) -> Self {
        FailureDetector {
            cfg,
            ewma: vec![None; ranks],
            rtt: vec![RttEstimator::new(); ranks],
            phi_max: 0.0,
        }
    }

    /// The configured thresholds.
    pub fn config(&self) -> DetectorConfig {
        self.cfg
    }

    /// Folds a per-unit cost report from `engine_rank` into its EWMA.
    /// Negative reports are the "no data yet" sentinel and are skipped.
    pub fn report(&mut self, engine_rank: usize, unit_cost: f64) {
        if !unit_cost.is_finite() || unit_cost < 0.0 {
            return;
        }
        let a = self.cfg.ewma_alpha;
        self.ewma[engine_rank] = Some(match self.ewma[engine_rank] {
            Some(prev) => (1.0 - a) * prev + a * unit_cost,
            None => unit_cost,
        });
    }

    /// Folds a heartbeat wire-time sample for `engine_rank` (local
    /// statistics only).
    pub fn observe_rtt(&mut self, engine_rank: usize, wire: f64) {
        self.rtt[engine_rank].observe(wire);
    }

    /// The smoothed heartbeat RTT toward `engine_rank`, if observed.
    pub fn srtt(&self, engine_rank: usize) -> Option<f64> {
        self.rtt[engine_rank].srtt()
    }

    /// Largest smoothed heartbeat RTT over all peers, if any.
    pub fn srtt_max(&self) -> Option<f64> {
        self.rtt
            .iter()
            .filter_map(|e| e.srtt())
            .fold(None, |acc, s| Some(acc.map_or(s, |a: f64| a.max(s))))
    }

    /// Clears all state for `engine_rank` (crashed or evicted peer).
    pub fn forget(&mut self, engine_rank: usize) {
        self.ewma[engine_rank] = None;
        self.rtt[engine_rank] = RttEstimator::new();
    }

    /// Highest suspicion level ever computed (reporting).
    pub fn phi_max(&self) -> f64 {
        self.phi_max
    }

    /// Relative per-unit costs of `members` (each member's EWMA over
    /// the cohort median), or `None` until every member has reported.
    /// Identical on every rank: the inputs are the replicated reports.
    pub fn relative_costs(&self, members: &[usize]) -> Option<Vec<f64>> {
        let costs: Vec<f64> = members
            .iter()
            .map(|&m| self.ewma[m])
            .collect::<Option<Vec<f64>>>()?;
        let med = median(&costs);
        if !(med.is_finite() && med > 0.0) {
            return None;
        }
        Some(costs.iter().map(|c| c / med).collect())
    }

    /// Suspicion levels of `members`, aligned with the input order, or
    /// `None` until every member has reported. Updates
    /// [`phi_max`](Self::phi_max).
    pub fn phis(&mut self, members: &[usize]) -> Option<Vec<f64>> {
        let phis: Vec<f64> = self
            .relative_costs(members)?
            .iter()
            .map(|r| PHI_SCALE * r)
            .collect();
        for &phi in &phis {
            self.phi_max = self.phi_max.max(phi);
        }
        Some(phis)
    }

    /// Engine ranks of `members` whose suspicion has crossed
    /// [`DetectorConfig::phi_suspect`] (rebalance candidates).
    pub fn suspects(&mut self, members: &[usize]) -> Vec<usize> {
        match self.phis(members) {
            Some(phis) => members
                .iter()
                .zip(&phis)
                .filter(|(_, &phi)| phi >= self.cfg.phi_suspect)
                .map(|(&m, _)| m)
                .collect(),
            None => Vec::new(),
        }
    }

    /// The engine rank of the single worst member at or past
    /// [`DetectorConfig::phi_evict`], if any — the one to evict and
    /// shrink away. At most one per call so the cohort never collapses
    /// in a single boundary; ties break toward the lowest engine rank,
    /// and a 1-member cohort never evicts. Deterministic and identical
    /// on every rank.
    pub fn evict_candidate(&mut self, members: &[usize]) -> Option<usize> {
        if members.len() <= 1 {
            return None;
        }
        let phis = self.phis(members)?;
        let mut worst: Option<(f64, usize)> = None;
        for (&m, &phi) in members.iter().zip(&phis) {
            if phi >= self.cfg.phi_evict && worst.is_none_or(|(wp, _)| phi > wp) {
                worst = Some((phi, m));
            }
        }
        worst.map(|(_, m)| m)
    }
}

/// Lower median of a non-empty slice (order statistic at
/// `(n - 1) / 2`). The lower median, not the interpolated one, keeps
/// the healthy-cohort baseline uncontaminated by the straggler itself
/// in small even-sized cohorts: in a 2-member cohort with costs
/// `[1, 3]` the interpolated median is 2 and the straggler's ratio a
/// useless 1.5, while the lower median is 1 and the ratio the true 3.
fn median(xs: &[f64]) -> f64 {
    debug_assert!(!xs.is_empty());
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    sorted[(sorted.len() - 1) / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fed(costs: &[f64]) -> FailureDetector {
        let mut det = FailureDetector::new(costs.len(), DetectorConfig::default());
        for (r, &c) in costs.iter().enumerate() {
            det.report(r, c);
        }
        det
    }

    #[test]
    fn uniform_cohort_accrues_no_suspicion() {
        let mut det = fed(&[2.0, 2.0, 2.0, 2.0]);
        let members = [0, 1, 2, 3];
        let phis = det.phis(&members).unwrap();
        for phi in phis {
            assert!((phi - PHI_SCALE).abs() < 1e-12, "healthy φ ≈ 0.434");
        }
        assert!(det.suspects(&members).is_empty());
        assert_eq!(det.evict_candidate(&members), None);
    }

    #[test]
    fn scale_invariance_a_uniformly_slow_cohort_is_healthy() {
        let mut fast = fed(&[1.0, 1.0, 1.0, 1.0]);
        let mut slow = fed(&[10.0, 10.0, 10.0, 10.0]);
        let members = [0, 1, 2, 3];
        assert_eq!(fast.phis(&members), slow.phis(&members));
    }

    #[test]
    fn a_2x_straggler_is_suspected_but_not_evicted() {
        let mut det = fed(&[1.0, 1.0, 1.0, 2.0]);
        let members = [0, 1, 2, 3];
        assert_eq!(det.suspects(&members), vec![3]);
        assert_eq!(det.evict_candidate(&members), None);
    }

    #[test]
    fn a_severe_straggler_becomes_the_evict_candidate() {
        let mut det = fed(&[1.0, 1.0, 1.0, 4.0]);
        let members = [0, 1, 2, 3];
        assert_eq!(det.evict_candidate(&members), Some(3));
        // A lone member is never evicted no matter how slow.
        assert_eq!(det.evict_candidate(&[3]), None);
    }

    #[test]
    fn evict_takes_the_single_worst_with_low_rank_ties() {
        let mut det = fed(&[1.0, 6.0, 1.0, 6.0, 1.0]);
        let members = [0, 1, 2, 3, 4];
        assert_eq!(det.evict_candidate(&members), Some(1));
    }

    #[test]
    fn no_verdicts_until_every_member_reported() {
        let mut det = FailureDetector::new(4, DetectorConfig::default());
        det.report(0, 1.0);
        det.report(1, 1.0);
        let members = [0, 1, 2, 3];
        assert_eq!(det.phis(&members), None);
        assert!(det.suspects(&members).is_empty());
        // The reported subset alone is judgeable.
        assert!(det.phis(&[0, 1]).is_some());
    }

    #[test]
    fn sentinel_and_bogus_reports_are_skipped() {
        let mut det = FailureDetector::new(2, DetectorConfig::default());
        det.report(0, -1.0);
        det.report(0, f64::NAN);
        assert_eq!(det.phis(&[0]), None);
        det.report(0, 3.0);
        assert!(det.phis(&[0]).is_some());
    }

    #[test]
    fn ewma_tracks_a_developing_straggler() {
        let mut det = FailureDetector::new(2, DetectorConfig::default());
        let members = [0, 1];
        for _ in 0..4 {
            det.report(0, 1.0);
            det.report(1, 1.0);
        }
        assert!(det.suspects(&members).is_empty());
        // Node 1 turns slow: suspicion accrues over a few heartbeats
        // rather than tripping on one noisy report.
        det.report(0, 1.0);
        det.report(1, 3.0);
        let after_one = det.phis(&members).unwrap()[1];
        det.report(0, 1.0);
        det.report(1, 3.0);
        let after_two = det.phis(&members).unwrap()[1];
        assert!(after_two > after_one, "suspicion accrues");
        assert_eq!(det.suspects(&members), vec![1]);
    }

    #[test]
    fn forget_clears_a_peer() {
        let mut det = fed(&[1.0, 5.0]);
        det.observe_rtt(1, 0.01);
        assert!(det.srtt(1).is_some());
        det.forget(1);
        assert_eq!(det.phis(&[0, 1]), None);
        assert_eq!(det.srtt(1), None);
        assert!(det.phis(&[0]).is_some(), "survivor state is intact");
    }

    #[test]
    fn phi_max_and_srtt_max_report_extremes() {
        let mut det = fed(&[1.0, 1.0, 1.0, 4.0]);
        let members = [0, 1, 2, 3];
        let phis = det.phis(&members).unwrap();
        let expect = phis.iter().fold(0.0, |a: f64, &b| a.max(b));
        assert_eq!(det.phi_max(), expect);
        assert_eq!(det.srtt_max(), None);
        det.observe_rtt(0, 0.01);
        det.observe_rtt(2, 0.04);
        assert_eq!(det.srtt_max(), Some(0.04));
    }

    #[test]
    fn detector_state_is_replicated_under_identical_reports() {
        // Two "ranks" folding the same report sequence in different
        // arrival orders converge to identical state: per-peer EWMAs
        // are independent folds.
        let mut a = FailureDetector::new(3, DetectorConfig::default());
        let mut b = FailureDetector::new(3, DetectorConfig::default());
        for step in 0..5 {
            let reports = [1.0 + 0.1 * step as f64, 2.0, 1.5];
            for (r, &c) in reports.iter().enumerate() {
                a.report(r, c);
            }
            for (r, &c) in reports.iter().enumerate().rev() {
                b.report(r, c);
            }
        }
        let members = [0, 1, 2];
        assert_eq!(a.phis(&members), b.phis(&members));
        assert_eq!(a.evict_candidate(&members), b.evict_candidate(&members));
    }
}
