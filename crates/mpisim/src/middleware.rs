//! The paper's "Middleware" factor: how CHARMM's interprocess
//! communication is expressed.

use serde::{Deserialize, Serialize};

/// Communication middleware style.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Middleware {
    /// The standard implementation: raw MPI calls, point-to-point
    /// blocking communication, global synchronization through MPI
    /// barriers (binomial-tree control messages).
    Mpi,
    /// CHARMM MPI: a portability layer using nonblocking split
    /// send/receive pairs; every synchronization is `p - 1` rounds of
    /// 1-byte exchanges with ring neighbours, and every split exchange
    /// group is closed by such a synchronization. Cheap on low-overhead
    /// networks, pathological on TCP (paper section 4.2).
    Cmpi,
}

impl Middleware {
    /// Both levels of the middleware factor.
    pub const ALL: [Middleware; 2] = [Middleware::Mpi, Middleware::Cmpi];

    /// Label used in figures.
    pub fn label(self) -> &'static str {
        match self {
            Middleware::Mpi => "MPI",
            Middleware::Cmpi => "CMPI",
        }
    }
}

/// Algorithm used for a global-sum collective — the design choice the
/// ablation benches probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CombineAlgo {
    /// Master-based gather + broadcast (early CHARMM `GCOMB`).
    Flat,
    /// Binomial-tree fold + broadcast.
    Tree,
    /// Ring reduce-scatter + allgather (bandwidth optimal).
    Ring,
}

impl CombineAlgo {
    /// All algorithms.
    pub const ALL: [CombineAlgo; 3] = [CombineAlgo::Flat, CombineAlgo::Tree, CombineAlgo::Ring];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            CombineAlgo::Flat => "flat (master)",
            CombineAlgo::Tree => "binomial tree",
            CombineAlgo::Ring => "ring",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combine_labels() {
        assert_eq!(CombineAlgo::ALL.len(), 3);
        for a in CombineAlgo::ALL {
            assert!(!a.label().is_empty());
        }
    }

    #[test]
    fn labels() {
        assert_eq!(Middleware::Mpi.label(), "MPI");
        assert_eq!(Middleware::Cmpi.label(), "CMPI");
        assert_eq!(Middleware::ALL.len(), 2);
    }
}
