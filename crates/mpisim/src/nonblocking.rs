//! Nonblocking (split) point-to-point operations — the primitive the
//! CMPI middleware is built on, exposed as an explicit request API so
//! application code can overlap communication with computation the way
//! the paper's reference \[21\] ("Decoupling Synchronization and Data
//! Transfer") advocates.
//!
//! Semantics mirror MPI: `isend` posts an eager/buffered send and
//! completes immediately (our transport is buffered); `irecv` posts a
//! receive that is matched on `wait`. `waitall` drains a set of
//! receives in the order given.

use crate::comm::Comm;
use cpc_cluster::{Msg, MsgClass, OpShape};
use cpc_pool::Backoff;

/// Surfaced counters from a [`RecvRequest::wait_polling`] wait: how
/// hard the real thread worked before the message was queued. Virtual
/// time is untouched by the poll; these are diagnostics for the real
/// scheduler, not simulation results.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PollStats {
    /// `spin_loop` hints issued.
    pub spins: u64,
    /// `yield_now` calls issued.
    pub yields: u64,
    /// Timed parks taken.
    pub parks: u64,
}

/// Handle for a posted send (eager: already complete).
#[derive(Debug)]
#[must_use = "requests must be completed with wait()"]
pub struct SendRequest {
    completed: bool,
}

impl SendRequest {
    /// Completes the send (a no-op under eager semantics, kept for
    /// structural fidelity with split send/receive code).
    pub fn wait(mut self) {
        self.completed = true;
    }
}

impl Drop for SendRequest {
    fn drop(&mut self) {
        // Eager sends complete on their own; nothing leaks. The
        // must_use lint still nudges callers toward explicit waits.
    }
}

/// Handle for a posted receive.
#[derive(Debug)]
#[must_use = "a posted receive must be waited on"]
pub struct RecvRequest {
    /// Engine rank (resolved from the logical rank when posted).
    src: usize,
    tag: u64,
}

impl RecvRequest {
    /// Engine rank this receive is matched against.
    pub fn source(&self) -> usize {
        self.src
    }

    /// Blocks until the message arrives; returns it and advances the
    /// virtual clock.
    pub fn wait(self, comm: &mut Comm<'_>) -> Msg {
        comm.raw_recv(self.src, self.tag)
    }

    /// Non-blocking test: true if the message is already queued (does
    /// not advance virtual time).
    pub fn test(&self, comm: &mut Comm<'_>) -> bool {
        comm.raw_probe(self.src, self.tag)
    }

    /// Polls (real time) until the message is queued, then completes
    /// the receive. The poll escalates through a bounded [`Backoff`] —
    /// spin hints, scheduler yields, short timed parks — instead of a
    /// bare `yield_now` loop, which on a one-core host starves the
    /// very sender being waited on. Virtual time stays frozen during
    /// the poll exactly as with [`test`](Self::test); the returned
    /// [`PollStats`] surface how far the waiter had to escalate.
    pub fn wait_polling(self, comm: &mut Comm<'_>) -> (Msg, PollStats) {
        let mut backoff = Backoff::new();
        while !self.test(comm) {
            backoff.snooze();
        }
        let stats = PollStats {
            spins: backoff.spins(),
            yields: backoff.yields(),
            parks: backoff.parks(),
        };
        (self.wait(comm), stats)
    }
}

impl Comm<'_> {
    /// Posts a nonblocking user-level send.
    pub fn isend(&mut self, dst: usize, tag: u64, data: Vec<f64>) -> SendRequest {
        let t = self.user_tag(tag);
        let gdst = self.to_global(dst);
        self.ctx()
            .send(gdst, t, data, MsgClass::Payload, OpShape::p2p());
        SendRequest { completed: false }
    }

    /// Posts a nonblocking user-level receive.
    pub fn irecv(&mut self, src: usize, tag: u64) -> RecvRequest {
        RecvRequest {
            src: self.to_global(src),
            tag: self.user_tag(tag),
        }
    }

    /// Waits for every request, in order; returns the messages.
    pub fn waitall(&mut self, requests: Vec<RecvRequest>) -> Vec<Msg> {
        requests.into_iter().map(|r| r.wait(self)).collect()
    }

    /// Combined send+receive with a partner (deadlock-free under the
    /// eager transport; the classic exchange primitive).
    pub fn sendrecv(&mut self, peer: usize, tag: u64, data: Vec<f64>) -> Vec<f64> {
        let req = self.irecv(peer, tag);
        self.isend(peer, tag, data).wait();
        req.wait(self).data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Middleware;
    use cpc_cluster::{run_cluster, ClusterConfig, NetworkKind};

    #[test]
    fn split_exchange_delivers_both_ways() {
        let cfg = ClusterConfig::uni(2, NetworkKind::ScoreGigE);
        let out = run_cluster(cfg, |ctx| {
            let mut comm = Comm::new(ctx, Middleware::Mpi);
            let peer = 1 - comm.rank();
            comm.sendrecv(peer, 3, vec![comm.rank() as f64; 4])
        });
        assert_eq!(out[0].result, vec![1.0; 4]);
        assert_eq!(out[1].result, vec![0.0; 4]);
    }

    #[test]
    fn waitall_preserves_order() {
        let cfg = ClusterConfig::uni(3, NetworkKind::MyrinetGm);
        let out = run_cluster(cfg, |ctx| {
            let mut comm = Comm::new(ctx, Middleware::Mpi);
            let p = comm.size();
            let rank = comm.rank();
            // Post all receives first (split style), then all sends.
            let reqs: Vec<RecvRequest> = (0..p)
                .filter(|&s| s != rank)
                .map(|s| comm.irecv(s, 9))
                .collect();
            for d in 0..p {
                if d != rank {
                    comm.isend(d, 9, vec![rank as f64]).wait();
                }
            }
            comm.waitall(reqs)
                .into_iter()
                .map(|m| m.data[0])
                .collect::<Vec<_>>()
        });
        assert_eq!(out[0].result, vec![1.0, 2.0]);
        assert_eq!(out[1].result, vec![0.0, 2.0]);
        assert_eq!(out[2].result, vec![0.0, 1.0]);
    }

    #[test]
    fn test_does_not_advance_time() {
        let cfg = ClusterConfig::uni(2, NetworkKind::TcpGigE);
        let out = run_cluster(cfg, |ctx| {
            let mut comm = Comm::new(ctx, Middleware::Mpi);
            if comm.rank() == 0 {
                comm.isend(1, 7, vec![1.0]).wait();
                0.0
            } else {
                let req = comm.irecv(0, 7);
                // Poll (real time, bounded backoff — never a bare
                // yield_now loop) until queued; virtual clock frozen.
                let mut backoff = Backoff::new();
                while !req.test(&mut comm) {
                    backoff.snooze();
                }
                let before = comm.ctx().now();
                assert_eq!(before, 0.0);
                req.wait(&mut comm);
                comm.ctx().now()
            }
        });
        assert!(out[1].result > 0.0);
    }

    #[test]
    fn wait_polling_delivers_and_surfaces_waiter_effort() {
        let cfg = ClusterConfig::uni(2, NetworkKind::TcpGigE);
        let out = run_cluster(cfg, |ctx| {
            let mut comm = Comm::new(ctx, Middleware::Mpi);
            if comm.rank() == 0 {
                // Make the receiver actually wait in real time so the
                // backoff has visible work to report.
                std::thread::sleep(std::time::Duration::from_millis(2));
                comm.isend(1, 11, vec![42.0]).wait();
                0.0
            } else {
                let req = comm.irecv(0, 11);
                let (msg, stats) = req.wait_polling(&mut comm);
                assert_eq!(msg.data, vec![42.0]);
                // 2 ms of real waiting must escalate past nothing-at-
                // all: some combination of spins/yields/parks shows up.
                assert!(
                    stats.spins + stats.yields + stats.parks > 0,
                    "waiter effort invisible: {stats:?}"
                );
                comm.ctx().now()
            }
        });
        assert!(out[1].result > 0.0);
    }

    #[test]
    fn overlap_hides_transfer_behind_compute() {
        // The point of split operations: computation during the wire
        // time. With overlap, total elapsed < compute + transfer.
        let cfg = ClusterConfig::uni(2, NetworkKind::TcpGigE);
        let out = run_cluster(cfg, |ctx| {
            let mut comm = Comm::new(ctx, Middleware::Mpi);
            if comm.rank() == 0 {
                comm.isend(1, 1, vec![0.0; 200_000]).wait();
            } else {
                let req = comm.irecv(0, 1);
                comm.ctx().charge_compute(0.05); // overlapped work
                req.wait(&mut comm);
            }
            comm.ctx().now()
        });
        // Wire time of 1.6 MB over TCP is ~60 ms; overlapped with 50 ms
        // of compute the receiver finishes well before the 110 ms sum.
        assert!(out[1].result < 0.105, "elapsed {}", out[1].result);
        assert!(out[1].result >= 0.05);
    }
}
