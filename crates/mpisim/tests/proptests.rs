//! Property-based tests of the collectives: algebraic correctness for
//! arbitrary vectors, rank counts, middlewares and algorithms.

use cpc_cluster::{run_cluster, ClusterConfig, NetworkKind};
use cpc_mpi::{CombineAlgo, Comm, Middleware};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_allreduce_algorithms_agree(
        p in 1usize..9,
        n in 1usize..40,
        seed in 0u64..1000,
        algo_idx in 0usize..3,
        mw_idx in 0usize..2,
    ) {
        let algo = CombineAlgo::ALL[algo_idx];
        let mw = Middleware::ALL[mw_idx];
        let cfg = ClusterConfig::uni(p, NetworkKind::ScoreGigE);
        let out = run_cluster(cfg, |ctx| {
            let mut comm = Comm::new(ctx, mw);
            let r = comm.rank() as f64;
            let mut v: Vec<f64> = (0..n)
                .map(|i| ((seed as f64) * 0.001 + i as f64) * (r + 1.0))
                .collect();
            comm.allreduce_with(algo, &mut v);
            v
        });
        let scale: f64 = (1..=p).map(|k| k as f64).sum();
        let expect: Vec<f64> =
            (0..n).map(|i| ((seed as f64) * 0.001 + i as f64) * scale).collect();
        for o in &out {
            for (a, b) in o.result.iter().zip(&expect) {
                prop_assert!((a - b).abs() < 1e-9 * b.abs().max(1.0),
                    "p={p} algo={algo:?} mw={mw:?}");
            }
        }
        // All ranks agree bitwise (broadcast semantics).
        for o in &out[1..] {
            prop_assert_eq!(&o.result, &out[0].result);
        }
    }

    #[test]
    fn alltoallv_is_a_permutation(
        p in 1usize..9,
        block in 1usize..30,
        mw_idx in 0usize..2,
    ) {
        let mw = Middleware::ALL[mw_idx];
        let cfg = ClusterConfig::uni(p, NetworkKind::MyrinetGm);
        let out = run_cluster(cfg, |ctx| {
            let mut comm = Comm::new(ctx, mw);
            let rank = comm.rank();
            let sends: Vec<Vec<f64>> = (0..p)
                .map(|d| (0..block).map(|k| (rank * 1000 + d * 10 + k) as f64).collect())
                .collect();
            comm.alltoallv(sends)
        });
        for (r, o) in out.iter().enumerate() {
            for (s, got) in o.result.iter().enumerate() {
                let expect: Vec<f64> =
                    (0..block).map(|k| (s * 1000 + r * 10 + k) as f64).collect();
                prop_assert_eq!(got, &expect, "p={} r={} s={}", p, r, s);
            }
        }
    }

    #[test]
    fn allgather_and_gather_agree(
        p in 1usize..9,
        len in 1usize..20,
        mw_idx in 0usize..2,
    ) {
        let mw = Middleware::ALL[mw_idx];
        let cfg = ClusterConfig::uni(p, NetworkKind::TcpGigE);
        let out = run_cluster(cfg, |ctx| {
            let mut comm = Comm::new(ctx, mw);
            let mine: Vec<f64> = (0..len).map(|i| (comm.rank() * 100 + i) as f64).collect();
            let everyone = comm.allgather(mine.clone());
            let at_root = comm.gather(0, mine);
            (everyone, at_root)
        });
        let expect: Vec<Vec<f64>> = (0..p)
            .map(|r| (0..len).map(|i| (r * 100 + i) as f64).collect())
            .collect();
        for o in &out {
            prop_assert_eq!(&o.result.0, &expect);
        }
        prop_assert_eq!(out[0].result.1.as_ref().unwrap(), &expect);
    }

    #[test]
    fn barriers_preserve_message_ordering(
        p in 2usize..7,
        rounds in 1usize..5,
        mw_idx in 0usize..2,
    ) {
        // Interleaving barriers with point-to-point traffic must not
        // deadlock or mis-route.
        let mw = Middleware::ALL[mw_idx];
        let cfg = ClusterConfig::uni(p, NetworkKind::TcpGigE);
        let out = run_cluster(cfg, |ctx| {
            let mut comm = Comm::new(ctx, mw);
            let mut received = Vec::new();
            for round in 0..rounds {
                let next = (comm.rank() + 1) % p;
                let prev = (comm.rank() + p - 1) % p;
                comm.send(next, round as u64, vec![round as f64]);
                comm.barrier();
                received.push(comm.recv(prev, round as u64)[0]);
                comm.barrier();
            }
            received
        });
        for o in &out {
            prop_assert_eq!(o.result.len(), rounds);
            for (round, v) in o.result.iter().enumerate() {
                prop_assert_eq!(*v, round as f64);
            }
        }
    }
}
