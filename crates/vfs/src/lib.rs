//! Injectable filesystem layer for every durability component.
//!
//! PRs 1–7 made `kill -9` invisible, but each guarantee silently
//! assumed that writes which were *issued* also *reached the disk* —
//! the journals, the result cache, the queue shards, the checkpoint
//! store and the gateway's `meta.json` each hand-rolled its own
//! tmp+fsync+rename dance, and the five copies disagreed about which
//! fsyncs matter. This crate replaces all of them with one audited
//! path:
//!
//! * [`Fs`] — the narrow trait every durable write goes through:
//!   create/append/read/rename/dir-sync/remove. Production code uses
//!   [`RealFs`] (a passthrough to `std::fs`); chaos campaigns use
//!   [`SimFs`], a deterministic in-memory filesystem that models the
//!   page cache explicitly (unsynced bytes are *not* durable) and
//!   injects ENOSPC, EIO, short writes, rename failures and power
//!   loss from a sampled [`DiskFaultPlan`].
//! * [`atomic_publish`] — the single atomic-write helper: write tmp →
//!   fsync file → rename → fsync dir. Its fsyncgate policy is
//!   load-bearing: **a failed fsync poisons the file forever**. The
//!   kernel reports a writeback error once, then marks the dirty pages
//!   clean — retrying fsync on the same file returns success while the
//!   data is gone. The only sound reaction is to abandon the file and
//!   rewrite from scratch, which is exactly what `atomic_publish` does
//!   (the tmp file is removed and the error propagates).
//! * [`explore_crashes`] — a crash-consistency explorer that runs a
//!   durable operation once to count its filesystem ops, then replays
//!   it with a power cut injected at *every* op index and checks a
//!   recovery oracle against each post-crash image.
//!
//! The durability model [`SimFs`] enforces is deliberately adversarial
//! (strict POSIX, no journaled-filesystem mercy): bytes survive a
//! power cut only up to the file's last fsync, and a file's directory
//! entry (creation or rename) survives only if the *directory* was
//! fsynced afterwards.

use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

mod explore;
mod plan;
mod real;
mod sim;

pub use explore::{explore_crashes, CrashReport};
pub use plan::{DiskFault, DiskFaultPlan};
pub use real::RealFs;
pub use sim::{is_power_cut, power_cut_error, DiskCounters, SimFs};

/// An open file handle behind the [`Fs`] abstraction. Writes land in
/// the (simulated or real) page cache; [`VfsFile::sync`] is the only
/// call that makes them durable.
pub trait VfsFile: Write + Send {
    /// fsync: flush the file's bytes to stable storage. An `Err` means
    /// the kernel may already have dropped the dirty pages — per the
    /// fsyncgate policy the caller must treat the file as poisoned and
    /// rewrite from scratch, never retry-and-trust.
    fn sync(&mut self) -> io::Result<()>;
}

/// The filesystem operations every durability component is allowed to
/// use. Narrow on purpose: anything not expressible here (mmap,
/// in-place overwrite of synced bytes, hardlinks) is also not
/// crash-safe under the model the chaos campaigns check.
pub trait Fs: Send + Sync {
    /// Creates (or truncates) a file for writing. The new directory
    /// entry is durable only after [`Fs::sync_dir`] on its parent.
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Opens (creating if needed) a file for appending.
    fn append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Reads a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Atomically replaces `to` with `from`. Durable only after
    /// [`Fs::sync_dir`] on the parent.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// fsyncs a directory, making its entries (creates, renames,
    /// removes) durable.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
    /// Removes a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Creates a directory and all its ancestors.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
    /// Entries (files and directories) directly under `dir`, sorted by
    /// path for deterministic iteration.
    fn read_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>>;
    /// Whether a file or directory exists at `path`.
    fn exists(&self, path: &Path) -> bool;

    /// Reads a whole file as UTF-8.
    fn read_to_string(&self, path: &Path) -> io::Result<String> {
        String::from_utf8(self.read(path)?)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }
}

/// The shared handle type components store: `RealFs` by default, a
/// `SimFs` under chaos.
pub type SharedFs = Arc<dyn Fs>;

/// The default production filesystem.
pub fn real_fs() -> SharedFs {
    Arc::new(RealFs)
}

/// ENOSPC as an `io::Error`, carrying the OS error code so
/// [`is_enospc`] recognizes simulated and real instances alike.
pub fn enospc_error() -> io::Error {
    io::Error::from_raw_os_error(28) // ENOSPC
}

/// Whether an error is out-of-space — from [`SimFs`], from a real
/// disk, or wrapped by an intermediate layer that preserved the OS
/// code. Drives the graceful-degradation paths: the gateway sheds
/// with 507 + Retry-After, the job service quiesces instead of
/// corrupting.
pub fn is_enospc(e: &io::Error) -> bool {
    e.raw_os_error() == Some(28)
}

/// EIO as an `io::Error` (simulated media failure).
pub fn eio_error() -> io::Error {
    io::Error::from_raw_os_error(5) // EIO
}

/// Whether an error is an I/O media failure.
pub fn is_eio(e: &io::Error) -> bool {
    e.raw_os_error() == Some(5)
}

/// Publishes `bytes` at `path` atomically and durably: write
/// `path.tmp` → fsync the file → rename over `path` → fsync the
/// directory. A crash at any byte leaves either the old content or
/// the new, never a torn file under the final name — and once this
/// returns `Ok`, the content survives power loss.
///
/// Fsyncgate discipline: if the file fsync fails, the tmp file is
/// *abandoned* (removed best-effort) and the error propagates. It is
/// never retried — after a writeback error the kernel has already
/// marked the lost pages clean, so a second fsync would report
/// success for data that is gone. Callers retry by calling
/// `atomic_publish` again, which rewrites from scratch.
pub fn atomic_publish(fs: &dyn Fs, path: &Path, bytes: &[u8]) -> io::Result<()> {
    atomic_publish_phased(fs, path, bytes).map_err(|e| e.error)
}

/// Which step of an [`atomic_publish`] failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PublishPhase {
    /// Creating, writing, or fsyncing the tmp file: nothing reached
    /// the final name; the old content (if any) is untouched.
    Write,
    /// The rename: the fsynced tmp was abandoned; old content intact.
    Rename,
    /// The directory fsync after the rename: the new content is under
    /// the final name and its *bytes* are fsynced, but the rename
    /// itself may not survive power loss — the publish must not be
    /// reported durable.
    DirSync,
}

/// An [`atomic_publish`] failure tagged with the phase it died in. The
/// underlying `io::Error` is preserved verbatim (so [`is_enospc`] /
/// [`is_eio`] still see the OS code through this wrapper).
#[derive(Debug)]
pub struct PublishError {
    /// Where the publish failed.
    pub phase: PublishPhase,
    /// The untouched underlying error.
    pub error: io::Error,
}

impl std::fmt::Display for PublishError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let phase = match self.phase {
            PublishPhase::Write => "write/fsync of tmp file",
            PublishPhase::Rename => "rename into place",
            PublishPhase::DirSync => "directory fsync after rename",
        };
        write!(f, "atomic publish failed at {phase}: {}", self.error)
    }
}

impl std::error::Error for PublishError {}

/// [`atomic_publish`] with the failing phase reported, for callers
/// whose error taxonomy distinguishes "never reached disk" from
/// "reached disk but not provably durable" (e.g. the checkpoint
/// store's typed `SaveError`).
pub fn atomic_publish_phased(fs: &dyn Fs, path: &Path, bytes: &[u8]) -> Result<(), PublishError> {
    let dir = path.parent().unwrap_or_else(|| Path::new(""));
    let tmp = tmp_path(path);
    let write = |fs: &dyn Fs| -> io::Result<()> {
        let mut f = fs.create(&tmp)?;
        f.write_all(bytes)?;
        f.sync()
    };
    if let Err(e) = write(fs) {
        // Poisoned or short: abandon the tmp file, never trust it.
        let _ = fs.remove_file(&tmp);
        return Err(PublishError {
            phase: PublishPhase::Write,
            error: e,
        });
    }
    if let Err(e) = fs.rename(&tmp, path) {
        let _ = fs.remove_file(&tmp);
        return Err(PublishError {
            phase: PublishPhase::Rename,
            error: e,
        });
    }
    fs.sync_dir(dir).map_err(|e| PublishError {
        phase: PublishPhase::DirSync,
        error: e,
    })
}

/// The temp-file name `atomic_publish` writes next to `path`: the
/// final name with `.tmp` appended, so every component's tmp files
/// are recognizable (and sweepable) by one rule.
pub fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// A [`RealFs`] wrapper that fails every space-consuming operation
/// with ENOSPC while a trigger file exists — the live-smoke analogue
/// of [`SimFs`]'s persistent ENOSPC fault, controllable from a shell
/// (`touch` injects the fault, `rm` lifts it) so CI can drive a real
/// `serve` process into graceful degradation over the wire.
pub struct EnospcTrigger {
    inner: RealFs,
    trigger: PathBuf,
}

impl EnospcTrigger {
    /// Wraps the real filesystem; ENOSPC while `trigger` exists.
    pub fn new(trigger: impl Into<PathBuf>) -> Self {
        EnospcTrigger {
            inner: RealFs,
            trigger: trigger.into(),
        }
    }

    fn full(&self) -> bool {
        self.trigger.exists()
    }
}

impl Fs for EnospcTrigger {
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        if self.full() {
            return Err(enospc_error());
        }
        self.inner.create(path)
    }

    fn append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        if self.full() {
            return Err(enospc_error());
        }
        self.inner.append(path)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.inner.read(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.inner.rename(from, to)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        self.inner.sync_dir(dir)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.inner.remove_file(path)
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        if self.full() {
            return Err(enospc_error());
        }
        self.inner.create_dir_all(dir)
    }

    fn read_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        self.inner.read_dir(dir)
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tmp_names_extend_the_final_name() {
        assert_eq!(
            tmp_path(Path::new("a/b/meta.json")),
            PathBuf::from("a/b/meta.json.tmp")
        );
        assert_eq!(
            tmp_path(Path::new("cache/0123.json")),
            PathBuf::from("cache/0123.json.tmp")
        );
    }

    #[test]
    fn enospc_and_eio_are_recognizable_after_construction() {
        assert!(is_enospc(&enospc_error()));
        assert!(!is_enospc(&eio_error()));
        assert!(is_eio(&eio_error()));
        assert!(!is_eio(&enospc_error()));
        assert!(!is_enospc(&io::Error::other("x")));
    }

    #[test]
    fn atomic_publish_on_the_real_fs_roundtrips() {
        let dir = std::env::temp_dir().join(format!("cpc-vfs-pub-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let fs = RealFs;
        let path = dir.join("meta.json");
        atomic_publish(&fs, &path, b"{\"v\":1}").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"{\"v\":1}");
        assert!(
            !tmp_path(&path).exists(),
            "the tmp file must not survive a successful publish"
        );
        // Republish overwrites atomically.
        atomic_publish(&fs, &path, b"{\"v\":2}").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"{\"v\":2}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn enospc_trigger_gates_on_the_trigger_file() {
        let dir = std::env::temp_dir().join(format!("cpc-vfs-trig-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let trigger = dir.join("full");
        let fs = EnospcTrigger::new(&trigger);
        let path = dir.join("x.json");
        atomic_publish(&fs, &path, b"ok").unwrap();
        std::fs::write(&trigger, b"").unwrap();
        let err = atomic_publish(&fs, &path, b"blocked").unwrap_err();
        assert!(is_enospc(&err));
        assert_eq!(std::fs::read(&path).unwrap(), b"ok", "old content intact");
        std::fs::remove_file(&trigger).unwrap();
        atomic_publish(&fs, &path, b"after").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"after");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
