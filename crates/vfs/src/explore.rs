//! Crash-consistency exploration: power-cut a durable operation at
//! *every* filesystem op it issues and check a recovery oracle
//! against each surviving image.
//!
//! The sampled disk-fault campaigns cover the space probabilistically;
//! this explorer covers one operation *exhaustively*. Every durable
//! primitive (journal append, cache publish, checkpoint save, queue
//! event, gateway registration) gets an `explore_crashes` test: if any
//! crash point leaves a state its recovery path mis-handles, the
//! oracle names the op index, and the failure replays exactly.

use crate::{sim::is_power_cut, SimFs};
use std::io;

/// What an exploration covered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashReport {
    /// Mutating filesystem ops the fault-free run issued.
    pub ops: u64,
    /// Crash points explored (one per op).
    pub crashes: u64,
}

/// Runs `work` once fault-free to count its filesystem ops, then once
/// per op index with power cut at exactly that op, handing each
/// post-restart image to `check`. `work` receives a fresh [`SimFs`]
/// every time and must be deterministic; under a cut it will see its
/// I/O fail — it must propagate the error, not panic. `check` replays
/// recovery against the surviving bytes and returns `Err` with a
/// description to convict.
///
/// Fails fast with the op index baked into the message, so a failing
/// crash point is a one-line reproducer.
pub fn explore_crashes(
    mut work: impl FnMut(&SimFs) -> io::Result<()>,
    mut check: impl FnMut(&SimFs) -> Result<(), String>,
) -> Result<CrashReport, String> {
    let baseline = SimFs::new();
    work(&baseline).map_err(|e| format!("fault-free run failed: {e}"))?;
    let ops = baseline.op_count();
    check(&baseline).map_err(|e| format!("fault-free image failed recovery: {e}"))?;

    for at in 1..=ops {
        let fs = SimFs::new();
        fs.crash_at_op(at);
        match work(&fs) {
            Ok(()) => {
                return Err(format!(
                    "crash at op {at}/{ops}: work reported success through a power cut"
                ))
            }
            Err(e) if is_power_cut(&e) => {}
            Err(e) => {
                // The cut surfaced through a wrapping layer; fine, as
                // long as the work stopped. A non-cut error before the
                // scheduled op would mean non-determinism.
                if !fs.crashed() {
                    return Err(format!(
                        "crash at op {at}/{ops}: work failed before the cut: {e}"
                    ));
                }
            }
        }
        if !fs.crashed() {
            return Err(format!(
                "crash at op {at}/{ops}: the cut never fired (work issued fewer ops than baseline)"
            ));
        }
        fs.restart();
        check(&fs).map_err(|e| format!("crash at op {at}/{ops}: {e}"))?;
    }

    // The final crash point: power cut immediately AFTER the work
    // reported success. This is the acked-then-lost probe — whatever
    // `work` claims to have made durable must actually survive.
    let fs = SimFs::new();
    work(&fs).map_err(|e| format!("fault-free rerun failed: {e}"))?;
    fs.power_cut_now(false, 0);
    fs.restart();
    check(&fs).map_err(|e| format!("cut after success (op {ops}): {e}"))?;

    Ok(CrashReport {
        ops,
        crashes: ops + 1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{atomic_publish, Fs};
    use std::path::Path;

    #[test]
    fn atomic_publish_passes_every_crash_point() {
        // Oracle: after any crash, the final name holds either nothing
        // or exactly the published bytes — never a torn file.
        let report = explore_crashes(
            |fs| {
                fs.create_dir_all(Path::new("d"))?;
                atomic_publish(fs, Path::new("d/meta.json"), b"{\"v\":1}")
            },
            |fs| {
                if !fs.exists(Path::new("d/meta.json")) {
                    return Ok(()); // not yet published: old state, fine
                }
                let bytes = fs
                    .read(Path::new("d/meta.json"))
                    .map_err(|e| e.to_string())?;
                if bytes == b"{\"v\":1}" {
                    Ok(())
                } else {
                    Err(format!(
                        "torn publish visible under the final name: {:?}",
                        String::from_utf8_lossy(&bytes)
                    ))
                }
            },
        )
        .unwrap();
        assert!(
            report.ops >= 5,
            "mkdir, create, write, fsync, rename, dir sync"
        );
        assert_eq!(
            report.crashes,
            report.ops + 1,
            "plus the cut-after-success probe"
        );
    }

    #[test]
    fn the_explorer_convicts_a_publish_that_skips_fsync() {
        // The pre-PR gateway bug, reproduced: write + rename with no
        // fsync at all. Power loss after the rename leaves a file
        // whose bytes vanished — acked-then-lost, caught by op index.
        let naive_publish = |fs: &SimFs| -> std::io::Result<()> {
            fs.create_dir_all(Path::new("d"))?;
            let mut f = fs.create(Path::new("d/meta.json.tmp"))?;
            use std::io::Write as _;
            f.write_all(b"{\"v\":1}")?;
            drop(f);
            fs.rename(Path::new("d/meta.json.tmp"), Path::new("d/meta.json"))?;
            fs.sync_dir(Path::new("d"))
        };
        let err = explore_crashes(naive_publish, |fs| {
            if !fs.exists(Path::new("d/meta.json")) {
                return Ok(());
            }
            let bytes = fs
                .read(Path::new("d/meta.json"))
                .map_err(|e| e.to_string())?;
            if bytes == b"{\"v\":1}" {
                Ok(())
            } else {
                Err("published entry exists with lost bytes".into())
            }
        })
        .unwrap_err();
        assert!(
            err.contains("lost bytes"),
            "the unfsynced publish must be convicted, got: {err}"
        );
    }
}
