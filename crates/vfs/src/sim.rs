//! A deterministic in-memory filesystem with an explicit page-cache
//! model and injectable disk faults.
//!
//! The durability model is adversarial POSIX:
//!
//! * A file's bytes survive power loss only up to its last successful
//!   fsync. Everything after is page cache and vanishes.
//! * A directory entry (create, rename, remove) survives power loss
//!   only if the *directory* was fsynced afterwards — an fsynced file
//!   whose parent directory was never synced simply does not exist
//!   after the cut.
//! * A failed fsync drops the file's dirty bytes and poisons the file
//!   (the fsyncgate model: the kernel reports the writeback error
//!   once, marks the pages clean, and a retried fsync happily returns
//!   success for data that is gone). [`SimFs`] counts any rename that
//!   publishes a poisoned file, and the disk-chaos oracles convict on
//!   a nonzero count.
//!
//! Faults come from a [`DiskFaultPlan`] indexed by the mutating-op
//! counter, so the same plan against the same workload fails at the
//! same byte every time.

use crate::{eio_error, enospc_error, DiskFault, DiskFaultPlan, Fs, VfsFile};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// The error every operation returns after a simulated power cut and
/// before [`SimFs::restart`].
pub fn power_cut_error() -> io::Error {
    io::Error::other("simulated power cut")
}

/// Whether an error is the simulated power cut (the driver's signal
/// to end the incarnation and restart from durable state).
pub fn is_power_cut(e: &io::Error) -> bool {
    e.get_ref()
        .map(|r| r.to_string() == "simulated power cut")
        .unwrap_or(false)
}

/// Counters the simulated disk accumulates; the disk-chaos ledger
/// copies them verbatim so the oracles can see what actually fired.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiskCounters {
    /// Mutating operations attempted (the fault-schedule index space).
    pub ops: u64,
    /// Creates/writes refused with ENOSPC.
    pub enospc_failures: u64,
    /// Writes failed with EIO (no bytes landed).
    pub eio_write_failures: u64,
    /// Fsyncs failed with EIO (dirty bytes dropped, file poisoned).
    pub eio_fsync_failures: u64,
    /// Writes that landed short.
    pub short_writes: u64,
    /// Renames that failed.
    pub rename_failures: u64,
    /// Power cuts applied.
    pub power_losses: u64,
    /// Renames that published a poisoned file — post-failed-fsync
    /// trust, always an oracle violation.
    pub poisoned_publishes: u64,
    /// Bytes that were in page cache and vanished at power cuts.
    pub unsynced_bytes_lost: u64,
}

/// One dirty (unsynced) extent beyond the synced prefix.
#[derive(Debug, Clone, Copy)]
struct Seg {
    len: usize,
}

#[derive(Debug, Default)]
struct Node {
    data: Vec<u8>,
    /// Durable prefix length (bytes covered by the last fsync).
    synced: usize,
    /// Dirty extents beyond `synced`, in write order.
    segs: Vec<Seg>,
    /// A fsync on this file failed at some point: its content has a
    /// silent gap and must never be published.
    poisoned: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpKind {
    Create,
    Write,
    Sync,
    Rename,
    Remove,
    SyncDir,
    Mkdir,
}

struct State {
    nodes: HashMap<u64, Node>,
    next_id: u64,
    /// The live namespace: what open/read/rename see.
    ns: BTreeMap<PathBuf, u64>,
    /// The durable namespace: entries whose parent directory was
    /// fsynced after the last change. Power loss reverts `ns` to this.
    durable_ns: BTreeMap<PathBuf, u64>,
    dirs: BTreeSet<PathBuf>,
    faults: Vec<(DiskFault, bool)>,
    enospc_persistent: bool,
    enospc_until: Option<u64>,
    crashed: bool,
    counters: DiskCounters,
}

impl State {
    fn new(plan: &DiskFaultPlan) -> Self {
        State {
            nodes: HashMap::new(),
            next_id: 1,
            ns: BTreeMap::new(),
            durable_ns: BTreeMap::new(),
            dirs: BTreeSet::new(),
            faults: plan.faults.iter().map(|f| (*f, false)).collect(),
            enospc_persistent: false,
            enospc_until: None,
            crashed: false,
            counters: DiskCounters::default(),
        }
    }

    fn enospc_active(&self) -> bool {
        self.enospc_persistent
            || self
                .enospc_until
                .is_some_and(|until| self.counters.ops < until)
    }

    /// Advances the op counter, arms/fires state-level faults, and
    /// gates on power-off and ENOSPC. Called at the top of every
    /// mutating operation.
    fn begin_op(&mut self, kind: OpKind) -> io::Result<()> {
        if self.crashed {
            return Err(power_cut_error());
        }
        self.counters.ops += 1;
        let now = self.counters.ops;
        // Arm ENOSPC states due at or before this op.
        for i in 0..self.faults.len() {
            let (fault, fired) = self.faults[i];
            if fired || fault.at() > now {
                continue;
            }
            match fault {
                DiskFault::EnospcTransient { ops, .. } => {
                    self.enospc_until = Some(now + ops);
                    self.faults[i].1 = true;
                }
                DiskFault::EnospcPersistent { .. } => {
                    self.enospc_persistent = true;
                    self.faults[i].1 = true;
                }
                _ => {}
            }
        }
        // Power loss fires on any op kind.
        if let Some(i) = self.faults.iter().position(|(f, fired)| {
            !fired && f.at() <= now && matches!(f, DiskFault::PowerLoss { .. })
        }) {
            let fault = self.faults[i].0;
            self.faults[i].1 = true;
            if let DiskFault::PowerLoss {
                reorder, keep_seed, ..
            } = fault
            {
                self.power_cut(reorder, keep_seed);
            }
            return Err(power_cut_error());
        }
        if self.enospc_active() && matches!(kind, OpKind::Create | OpKind::Write | OpKind::Mkdir) {
            self.counters.enospc_failures += 1;
            return Err(enospc_error());
        }
        Ok(())
    }

    /// Consumes the first unfired fault due now for which `pick`
    /// returns true.
    fn take_fault(&mut self, pick: impl Fn(&DiskFault) -> bool) -> Option<DiskFault> {
        let now = self.counters.ops;
        let i = self
            .faults
            .iter()
            .position(|(f, fired)| !fired && f.at() <= now && pick(f))?;
        self.faults[i].1 = true;
        Some(self.faults[i].0)
    }

    /// Cuts power: reverts the namespace to the durable one and drops
    /// unsynced bytes (with `reorder`, each file independently keeps a
    /// deterministic prefix of its dirty extents, possibly torn).
    fn power_cut(&mut self, reorder: bool, keep_seed: u64) {
        self.counters.power_losses += 1;
        self.crashed = true;
        self.ns = self.durable_ns.clone();
        let live: BTreeSet<u64> = self.ns.values().copied().collect();
        self.nodes.retain(|id, _| live.contains(id));
        for (path, id) in self.ns.clone() {
            let Some(node) = self.nodes.get_mut(&id) else {
                continue;
            };
            let mut keep = 0usize;
            if reorder && !node.segs.is_empty() {
                let mut rng = splitmix(keep_seed ^ fnv1a64(path.to_string_lossy().as_bytes()));
                let k = (next(&mut rng) % (node.segs.len() as u64 + 1)) as usize;
                keep = node.segs[..k].iter().map(|s| s.len).sum();
                if k < node.segs.len() && next(&mut rng).is_multiple_of(2) {
                    // A torn extent: part of the next write landed.
                    keep += (next(&mut rng) % (node.segs[k].len as u64 + 1)) as usize;
                }
                keep = keep.min(node.data.len().saturating_sub(node.synced));
            }
            let survives = node.synced + keep;
            self.counters.unsynced_bytes_lost += (node.data.len() - survives) as u64;
            node.data.truncate(survives);
            // After reboot, what is on the platter is the new baseline.
            node.synced = node.data.len();
            node.segs.clear();
            node.poisoned = false;
        }
    }

    fn parent_exists(&self, path: &Path) -> bool {
        match path.parent() {
            None => true,
            Some(p) if p.as_os_str().is_empty() => true,
            Some(p) => self.dirs.contains(p),
        }
    }
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn splitmix(seed: u64) -> u64 {
    seed
}

fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The deterministic simulated filesystem. Cloning shares the same
/// disk (it is an `Arc` around the state), which is how a "process
/// restart" sees the surviving bytes.
#[derive(Clone)]
pub struct SimFs {
    state: Arc<Mutex<State>>,
}

impl Default for SimFs {
    fn default() -> Self {
        Self::new()
    }
}

impl SimFs {
    /// An empty, fault-free disk.
    pub fn new() -> Self {
        Self::with_plan(&DiskFaultPlan::none())
    }

    /// An empty disk executing `plan`.
    pub fn with_plan(plan: &DiskFaultPlan) -> Self {
        SimFs {
            state: Arc::new(Mutex::new(State::new(plan))),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.state.lock().expect("simfs state lock")
    }

    /// Mutating operations attempted so far.
    pub fn op_count(&self) -> u64 {
        self.lock().counters.ops
    }

    /// Counter snapshot.
    pub fn counters(&self) -> DiskCounters {
        self.lock().counters
    }

    /// Whether power is currently cut (every op fails until
    /// [`SimFs::restart`]).
    pub fn crashed(&self) -> bool {
        self.lock().crashed
    }

    /// Whether the ENOSPC gate is currently refusing writes.
    pub fn enospc_active(&self) -> bool {
        self.lock().enospc_active()
    }

    /// Boots after a power cut: the surviving (durable) image becomes
    /// the live filesystem. Handles from before the cut are dead.
    pub fn restart(&self) {
        self.lock().crashed = false;
    }

    /// Frees the disk: lifts persistent *and* transient ENOSPC.
    pub fn lift_enospc(&self) {
        let mut st = self.lock();
        st.enospc_persistent = false;
        st.enospc_until = None;
    }

    /// Manually fills (or frees) the disk — the test/driver analogue
    /// of the sampled persistent fault.
    pub fn set_enospc(&self, full: bool) {
        let mut st = self.lock();
        st.enospc_persistent = full;
        if !full {
            st.enospc_until = None;
        }
    }

    /// Schedules an additional power cut at op `at` (1-based; the op
    /// with that index fails). The crash-point explorer's primitive.
    pub fn crash_at_op(&self, at: u64) {
        self.lock().faults.push((
            DiskFault::PowerLoss {
                at,
                reorder: false,
                keep_seed: 0,
            },
            false,
        ));
    }

    /// Cuts power immediately.
    pub fn power_cut_now(&self, reorder: bool, keep_seed: u64) {
        self.lock().power_cut(reorder, keep_seed);
    }

    /// Every file currently visible, with its content — sorted by
    /// path, for deterministic digests and audits.
    pub fn files(&self) -> Vec<(PathBuf, Vec<u8>)> {
        let st = self.lock();
        st.ns
            .iter()
            .map(|(p, id)| {
                (
                    p.clone(),
                    st.nodes.get(id).map(|n| n.data.clone()).unwrap_or_default(),
                )
            })
            .collect()
    }
}

struct SimHandle {
    state: Arc<Mutex<State>>,
    id: u64,
    offset: usize,
}

impl Write for SimHandle {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let mut st = self.state.lock().expect("simfs state lock");
        st.begin_op(OpKind::Write)?;
        if st
            .take_fault(|f| matches!(f, DiskFault::EioWrite { .. }))
            .is_some()
        {
            st.counters.eio_write_failures += 1;
            return Err(eio_error());
        }
        let mut n = buf.len();
        if let Some(DiskFault::ShortWrite { keep_frac, .. }) =
            st.take_fault(|f| matches!(f, DiskFault::ShortWrite { .. }))
        {
            n = ((buf.len() as f64 * keep_frac) as usize).clamp(1, buf.len());
            st.counters.short_writes += 1;
        }
        let id = self.id;
        let offset = self.offset;
        let Some(node) = st.nodes.get_mut(&id) else {
            // The node died (power cut + reboot): a stale handle.
            return Err(eio_error());
        };
        if offset < node.data.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "in-place overwrite is outside the crash-safe model",
            ));
        }
        // A gap (the handle's offset survived a fsyncgate truncation)
        // fills with zeros — exactly the silent corruption a poisoned
        // file carries in real life.
        let start = node.data.len();
        let gap = offset - start;
        node.data.resize(offset, 0);
        node.data.extend_from_slice(&buf[..n]);
        node.segs.push(Seg { len: gap + n });
        self.offset += n;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl VfsFile for SimHandle {
    fn sync(&mut self) -> io::Result<()> {
        let mut st = self.state.lock().expect("simfs state lock");
        st.begin_op(OpKind::Sync)?;
        let fired = st
            .take_fault(|f| matches!(f, DiskFault::EioFsync { .. }))
            .is_some();
        let id = self.id;
        let Some(node) = st.nodes.get_mut(&id) else {
            return Err(eio_error());
        };
        if fired {
            // Fsyncgate: the dirty pages are dropped and marked clean.
            // The handle's offset does NOT rewind — continued use of
            // this file leaves a zero gap where the lost bytes were.
            node.data.truncate(node.synced);
            node.segs.clear();
            node.poisoned = true;
            st.counters.eio_fsync_failures += 1;
            return Err(eio_error());
        }
        node.synced = node.data.len();
        node.segs.clear();
        Ok(())
    }
}

impl Fs for SimFs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let mut st = self.lock();
        st.begin_op(OpKind::Create)?;
        if !st.parent_exists(path) {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no parent directory for {}", path.display()),
            ));
        }
        let id = st.next_id;
        st.next_id += 1;
        st.nodes.insert(id, Node::default());
        st.ns.insert(path.to_path_buf(), id);
        Ok(Box::new(SimHandle {
            state: Arc::clone(&self.state),
            id,
            offset: 0,
        }))
    }

    fn append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        {
            let st = self.lock();
            if st.crashed {
                return Err(power_cut_error());
            }
            if let Some(&id) = st.ns.get(path) {
                let offset = st.nodes.get(&id).map(|n| n.data.len()).unwrap_or(0);
                return Ok(Box::new(SimHandle {
                    state: Arc::clone(&self.state),
                    id,
                    offset,
                }));
            }
        }
        self.create(path)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let st = self.lock();
        if st.crashed {
            return Err(power_cut_error());
        }
        let id = st.ns.get(path).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::NotFound,
                format!("{} not found", path.display()),
            )
        })?;
        Ok(st.nodes.get(id).map(|n| n.data.clone()).unwrap_or_default())
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut st = self.lock();
        st.begin_op(OpKind::Rename)?;
        if st
            .take_fault(|f| matches!(f, DiskFault::RenameFail { .. }))
            .is_some()
        {
            st.counters.rename_failures += 1;
            return Err(eio_error());
        }
        let id = st.ns.remove(from).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::NotFound,
                format!("{} not found", from.display()),
            )
        })?;
        if st.nodes.get(&id).is_some_and(|n| n.poisoned) {
            st.counters.poisoned_publishes += 1;
        }
        st.ns.insert(to.to_path_buf(), id);
        Ok(())
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        let mut st = self.lock();
        st.begin_op(OpKind::SyncDir)?;
        if st
            .take_fault(|f| matches!(f, DiskFault::EioFsync { .. }))
            .is_some()
        {
            st.counters.eio_fsync_failures += 1;
            return Err(eio_error());
        }
        let under = |p: &Path| -> bool {
            match p.parent() {
                None => dir.as_os_str().is_empty(),
                Some(parent) => {
                    parent == dir || (parent.as_os_str().is_empty() && dir.as_os_str().is_empty())
                }
            }
        };
        let fresh: Vec<(PathBuf, u64)> = st
            .ns
            .iter()
            .filter(|(p, _)| under(p))
            .map(|(p, id)| (p.clone(), *id))
            .collect();
        st.durable_ns.retain(|p, _| !under(p));
        st.durable_ns.extend(fresh);
        Ok(())
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        let mut st = self.lock();
        st.begin_op(OpKind::Remove)?;
        st.ns.remove(path).map(|_| ()).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::NotFound,
                format!("{} not found", path.display()),
            )
        })
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        let mut st = self.lock();
        st.begin_op(OpKind::Mkdir)?;
        let mut p = PathBuf::new();
        for comp in dir.components() {
            p.push(comp);
            st.dirs.insert(p.clone());
        }
        Ok(())
    }

    fn read_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let st = self.lock();
        if st.crashed {
            return Err(power_cut_error());
        }
        if !dir.as_os_str().is_empty() && !st.dirs.contains(dir) {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("{} not found", dir.display()),
            ));
        }
        let mut out: Vec<PathBuf> = st
            .ns
            .keys()
            .filter(|p| p.parent() == Some(dir))
            .cloned()
            .collect();
        out.extend(st.dirs.iter().filter(|p| p.parent() == Some(dir)).cloned());
        out.sort();
        out.dedup();
        Ok(out)
    }

    fn exists(&self, path: &Path) -> bool {
        let st = self.lock();
        st.ns.contains_key(path) || st.dirs.contains(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atomic_publish;

    fn fresh(plan: DiskFaultPlan) -> SimFs {
        let fs = SimFs::with_plan(&plan);
        fs.create_dir_all(Path::new("d")).unwrap();
        fs
    }

    fn write_file(fs: &SimFs, path: &str, bytes: &[u8], sync: bool) -> io::Result<()> {
        let mut f = fs.create(Path::new(path))?;
        f.write_all(bytes)?;
        if sync {
            f.sync()?;
        }
        Ok(())
    }

    #[test]
    fn unsynced_bytes_vanish_at_power_cut_synced_survive() {
        let fs = fresh(DiskFaultPlan::none());
        let mut f = fs.create(Path::new("d/a")).unwrap();
        f.write_all(b"durable").unwrap();
        f.sync().unwrap();
        f.write_all(b" volatile").unwrap();
        drop(f);
        fs.sync_dir(Path::new("d")).unwrap();
        fs.power_cut_now(false, 0);
        fs.restart();
        assert_eq!(fs.read(Path::new("d/a")).unwrap(), b"durable");
        assert_eq!(fs.counters().unsynced_bytes_lost, 9);
    }

    #[test]
    fn a_created_file_without_dir_sync_does_not_survive() {
        let fs = fresh(DiskFaultPlan::none());
        write_file(&fs, "d/a", b"fsynced but unlinked-on-crash", true).unwrap();
        fs.power_cut_now(false, 0);
        fs.restart();
        assert!(
            !fs.exists(Path::new("d/a")),
            "entry never made durable: the parent directory was not synced"
        );
    }

    #[test]
    fn an_unsynced_rename_reverts_at_power_cut() {
        let fs = fresh(DiskFaultPlan::none());
        write_file(&fs, "d/x.tmp", b"v1", true).unwrap();
        fs.sync_dir(Path::new("d")).unwrap();
        fs.rename(Path::new("d/x.tmp"), Path::new("d/x")).unwrap();
        // No dir sync: the rename is only in the directory's cache.
        fs.power_cut_now(false, 0);
        fs.restart();
        assert!(!fs.exists(Path::new("d/x")), "rename reverted");
        assert_eq!(fs.read(Path::new("d/x.tmp")).unwrap(), b"v1");
    }

    #[test]
    fn atomic_publish_is_durable_once_it_returns() {
        let fs = fresh(DiskFaultPlan::none());
        atomic_publish(&fs, Path::new("d/meta.json"), b"{}").unwrap();
        fs.power_cut_now(false, 0);
        fs.restart();
        assert_eq!(fs.read(Path::new("d/meta.json")).unwrap(), b"{}");
    }

    #[test]
    fn enospc_transient_window_closes_on_its_own() {
        let plan = DiskFaultPlan::none().with(DiskFault::EnospcTransient { at: 1, ops: 3 });
        let fs = SimFs::with_plan(&plan);
        let e = fs.create_dir_all(Path::new("d")).unwrap_err();
        assert!(crate::is_enospc(&e));
        assert!(fs.enospc_active());
        let _ = fs.create_dir_all(Path::new("d"));
        let _ = fs.create_dir_all(Path::new("d"));
        // Window covered ops 2..4; the counter is past it now.
        fs.create_dir_all(Path::new("d")).unwrap();
        assert!(!fs.enospc_active());
        assert_eq!(fs.counters().enospc_failures, 3);
    }

    #[test]
    fn enospc_persistent_holds_until_lifted() {
        let plan = DiskFaultPlan::none().with(DiskFault::EnospcPersistent { at: 1 });
        let fs = SimFs::with_plan(&plan);
        for _ in 0..5 {
            assert!(crate::is_enospc(
                &fs.create_dir_all(Path::new("d")).unwrap_err()
            ));
        }
        fs.lift_enospc();
        fs.create_dir_all(Path::new("d")).unwrap();
        write_file(&fs, "d/a", b"after space returned", true).unwrap();
    }

    #[test]
    fn fsyncgate_poisons_and_a_poisoned_publish_is_counted() {
        // Ops: mkdir (1), create (2), write (3), sync (4) — the fault
        // fires on the fsync.
        let plan = DiskFaultPlan::none().with(DiskFault::EioFsync { at: 4 });
        let fs = SimFs::with_plan(&plan);
        fs.create_dir_all(Path::new("d")).unwrap();
        let mut f = fs.create(Path::new("d/x.tmp")).unwrap();
        f.write_all(b"doomed").unwrap();
        let e = f.sync().unwrap_err();
        assert!(crate::is_eio(&e));
        // Retrying fsync "succeeds" — for a file whose bytes are gone.
        f.sync().unwrap();
        assert_eq!(fs.read(Path::new("d/x.tmp")).unwrap(), b"");
        // Publishing it anyway is the fsyncgate sin the oracle convicts.
        fs.rename(Path::new("d/x.tmp"), Path::new("d/x")).unwrap();
        assert_eq!(fs.counters().poisoned_publishes, 1);
        assert_eq!(fs.counters().eio_fsync_failures, 1);
    }

    #[test]
    fn continued_use_of_a_poisoned_file_leaves_a_zero_gap() {
        let plan = DiskFaultPlan::none().with(DiskFault::EioFsync { at: 4 });
        let fs = SimFs::with_plan(&plan);
        fs.create_dir_all(Path::new("d")).unwrap();
        let mut f = fs.create(Path::new("d/j")).unwrap();
        f.write_all(b"AAAA").unwrap();
        let _ = f.sync().unwrap_err(); // drops AAAA, offset stays at 4
        f.write_all(b"BBBB").unwrap();
        f.sync().unwrap();
        assert_eq!(
            fs.read(Path::new("d/j")).unwrap(),
            b"\0\0\0\0BBBB",
            "the lost bytes became a silent zero gap"
        );
    }

    #[test]
    fn short_write_lands_a_prefix_and_reports_the_short_count() {
        let plan = DiskFaultPlan::none().with(DiskFault::ShortWrite {
            at: 3,
            keep_frac: 0.5,
        });
        let fs = SimFs::with_plan(&plan);
        fs.create_dir_all(Path::new("d")).unwrap();
        let mut f = fs.create(Path::new("d/a")).unwrap();
        let n = f.write(b"12345678").unwrap();
        assert_eq!(n, 4);
        // write_all-style retry completes the buffer in a second extent.
        f.write_all(b"5678").unwrap();
        f.sync().unwrap();
        assert_eq!(fs.read(Path::new("d/a")).unwrap(), b"12345678");
        assert_eq!(fs.counters().short_writes, 1);
    }

    #[test]
    fn rename_failure_leaves_the_namespace_unchanged() {
        let plan = DiskFaultPlan::none().with(DiskFault::RenameFail { at: 5 });
        let fs = SimFs::with_plan(&plan);
        fs.create_dir_all(Path::new("d")).unwrap();
        write_file(&fs, "d/x.tmp", b"v", true).unwrap();
        let e = fs
            .rename(Path::new("d/x.tmp"), Path::new("d/x"))
            .unwrap_err();
        assert!(crate::is_eio(&e));
        assert!(fs.exists(Path::new("d/x.tmp")));
        assert!(!fs.exists(Path::new("d/x")));
        fs.rename(Path::new("d/x.tmp"), Path::new("d/x")).unwrap();
        assert_eq!(fs.read(Path::new("d/x")).unwrap(), b"v");
    }

    #[test]
    fn scheduled_power_loss_fires_once_and_ops_fail_until_restart() {
        let plan = DiskFaultPlan::none().with(DiskFault::PowerLoss {
            at: 6,
            reorder: false,
            keep_seed: 0,
        });
        let fs = SimFs::with_plan(&plan);
        fs.create_dir_all(Path::new("d")).unwrap(); // op 1
        write_file(&fs, "d/a", b"one", true).unwrap(); // ops 2..4
        fs.sync_dir(Path::new("d")).unwrap(); // op 5
        let e = write_file(&fs, "d/b", b"two", true).unwrap_err(); // op 6: cut
        assert!(is_power_cut(&e));
        assert!(fs.crashed());
        assert!(is_power_cut(&fs.read(Path::new("d/a")).unwrap_err()));
        fs.restart();
        assert_eq!(fs.read(Path::new("d/a")).unwrap(), b"one");
        assert!(!fs.exists(Path::new("d/b")));
        write_file(&fs, "d/b", b"two", true).unwrap();
    }

    #[test]
    fn reorder_power_cut_keeps_a_deterministic_per_file_prefix() {
        let run = |seed: u64| -> Vec<(PathBuf, Vec<u8>)> {
            let fs = fresh(DiskFaultPlan::none());
            for name in ["d/a", "d/b"] {
                let mut f = fs.create(Path::new(name)).unwrap();
                f.write_all(b"S").unwrap();
                f.sync().unwrap();
                f.write_all(b"111").unwrap();
                f.write_all(b"222").unwrap();
                f.write_all(b"333").unwrap();
            }
            fs.sync_dir(Path::new("d")).unwrap();
            fs.power_cut_now(true, seed);
            fs.restart();
            fs.files()
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(a, b, "same seed, same surviving image");
        for (path, bytes) in &a {
            assert!(
                bytes.starts_with(b"S"),
                "{}: synced prefix survives",
                path.display()
            );
            assert!(bytes.len() <= 10);
        }
        // Some seed in a small scan keeps differing amounts per file —
        // the cross-file reorder the model exists to exercise.
        let differs = (0..64u64).any(|s| {
            let img = run(s);
            img[0].1.len() != img[1].1.len()
        });
        assert!(differs, "reorder must be able to treat files unequally");
    }

    #[test]
    fn remove_without_dir_sync_resurrects_at_power_cut() {
        let fs = fresh(DiskFaultPlan::none());
        write_file(&fs, "d/a", b"v", true).unwrap();
        fs.sync_dir(Path::new("d")).unwrap();
        fs.remove_file(Path::new("d/a")).unwrap();
        assert!(!fs.exists(Path::new("d/a")));
        fs.power_cut_now(false, 0);
        fs.restart();
        assert_eq!(
            fs.read(Path::new("d/a")).unwrap(),
            b"v",
            "an un-dir-synced remove is not durable"
        );
    }
}
