//! Disk fault schedules: the data model [`SimFs`](crate::SimFs)
//! interprets. The sampler that draws these deterministically lives
//! with its siblings in `cpc-cluster` (`DiskFaultSpace`); the types
//! live here so the filesystem can interpret a plan without a
//! dependency cycle.

use serde::{Deserialize, Serialize};

/// One scheduled disk fault. `at` is an index into the filesystem's
/// mutating-operation stream (creates, writes, fsyncs, renames,
/// removes, dir-syncs, counted in order): the fault arms immediately
/// and fires at the first *matching* operation whose index is `>= at`,
/// then disarms. Indexing by op rather than by wall time keeps
/// schedules deterministic across refactors of everything above the
/// filesystem.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DiskFault {
    /// The disk fills at op `at` and frees itself `ops` operations
    /// later: every create/write attempt in the window fails ENOSPC
    /// (failed attempts advance the op counter, so the window always
    /// closes).
    EnospcTransient { at: u64, ops: u64 },
    /// The disk fills at op `at` and stays full until the driver lifts
    /// it (`SimFs::lift_enospc`) — the schedule under which services
    /// must quiesce and gateways must shed, then resume byte-identical
    /// once space returns.
    EnospcPersistent { at: u64 },
    /// The next write at/after op `at` fails EIO; no bytes land.
    EioWrite { at: u64 },
    /// The next file fsync at/after op `at` fails EIO — the fsyncgate
    /// case: the file's dirty bytes are dropped (marked clean by the
    /// kernel) and the file is poisoned; a later fsync would report
    /// success for data that is gone.
    EioFsync { at: u64 },
    /// The next write at/after op `at` writes only a `keep_frac`
    /// prefix of the buffer and returns the short count.
    ShortWrite { at: u64, keep_frac: f64 },
    /// The next rename at/after op `at` fails; the namespace is
    /// unchanged.
    RenameFail { at: u64 },
    /// Power is cut at op `at` (the op itself fails and every
    /// operation after it until `SimFs::restart`): all unsynced bytes
    /// vanish and un-dir-synced creates/renames revert. With `reorder`
    /// set, each file independently keeps a prefix of its unsynced
    /// writes (chosen from `keep_seed`) and possibly a torn partial
    /// write — modeling writeback reordering across files, which is
    /// exactly the case "my last fsync covered file A, surely file B
    /// landed too" gets wrong.
    PowerLoss {
        at: u64,
        reorder: bool,
        keep_seed: u64,
    },
}

impl DiskFault {
    /// The op index at/after which the fault fires.
    pub fn at(&self) -> u64 {
        match *self {
            DiskFault::EnospcTransient { at, .. }
            | DiskFault::EnospcPersistent { at }
            | DiskFault::EioWrite { at }
            | DiskFault::EioFsync { at }
            | DiskFault::ShortWrite { at, .. }
            | DiskFault::RenameFail { at }
            | DiskFault::PowerLoss { at, .. } => at,
        }
    }
}

/// A deterministic disk fault schedule, interpreted by [`SimFs`](crate::SimFs).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DiskFaultPlan {
    /// The scheduled faults. Order is irrelevant (each arms on its own
    /// op index); multiple faults may be armed at once.
    pub faults: Vec<DiskFault>,
}

impl DiskFaultPlan {
    /// The empty schedule.
    pub fn none() -> Self {
        DiskFaultPlan::default()
    }

    /// Adds a fault.
    pub fn with(mut self, fault: DiskFault) -> Self {
        self.faults.push(fault);
        self
    }

    /// Whether the plan schedules a persistent ENOSPC (the driver must
    /// plan to lift it).
    pub fn has_persistent_enospc(&self) -> bool {
        self.faults
            .iter()
            .any(|f| matches!(f, DiskFault::EnospcPersistent { .. }))
    }

    /// Validates bounds: fractions in [0, 1], transient windows
    /// non-empty.
    pub fn validate(&self) -> Result<(), String> {
        for f in &self.faults {
            match *f {
                DiskFault::ShortWrite { keep_frac, .. } if !(0.0..=1.0).contains(&keep_frac) => {
                    return Err(format!("short-write keep_frac {keep_frac} outside [0, 1]"));
                }
                DiskFault::EnospcTransient { ops: 0, .. } => {
                    return Err("transient ENOSPC window must cover at least one op".into());
                }
                _ => {}
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_roundtrips_through_json() {
        let plan = DiskFaultPlan::none()
            .with(DiskFault::EnospcTransient { at: 3, ops: 5 })
            .with(DiskFault::EioFsync { at: 9 })
            .with(DiskFault::PowerLoss {
                at: 20,
                reorder: true,
                keep_seed: 0xBEEF,
            });
        let json = serde_json::to_string(&plan).unwrap();
        let back: DiskFaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
        assert!(!plan.has_persistent_enospc());
        assert!(plan.validate().is_ok());
    }

    #[test]
    fn validate_rejects_bad_bounds() {
        assert!(DiskFaultPlan::none()
            .with(DiskFault::ShortWrite {
                at: 1,
                keep_frac: 1.5
            })
            .validate()
            .is_err());
        assert!(DiskFaultPlan::none()
            .with(DiskFault::EnospcTransient { at: 1, ops: 0 })
            .validate()
            .is_err());
    }
}
