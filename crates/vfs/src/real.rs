//! The production filesystem: a passthrough to `std::fs` that issues
//! every fsync the durability contract requires (file *and* directory
//! syncs — the latter is what the pre-VFS implementations variously
//! skipped or discarded).

use crate::{Fs, VfsFile};
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Passthrough to the host filesystem.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealFs;

struct RealFile(File);

impl Write for RealFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.0.flush()
    }
}

impl VfsFile for RealFile {
    fn sync(&mut self) -> io::Result<()> {
        self.0.sync_all()
    }
}

impl Fs for RealFs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(RealFile(File::create(path)?)))
    }

    fn append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let f = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Box::new(RealFile(f)))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        // Opening the directory read-only and fsyncing it is the POSIX
        // way to make its entries durable. Errors propagate: a failed
        // directory sync means a rename that may not survive power
        // loss, which the caller must treat as a failed publish.
        let dir = if dir.as_os_str().is_empty() {
            Path::new(".")
        } else {
            dir
        };
        File::open(dir)?.sync_all()
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)
    }

    fn read_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let mut v: Vec<PathBuf> = std::fs::read_dir(dir)?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .collect();
        v.sort();
        Ok(v)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("cpc-vfs-real-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn create_write_sync_read_roundtrip() {
        let d = scratch("rw");
        let fs = RealFs;
        let p = d.join("f.txt");
        let mut f = fs.create(&p).unwrap();
        f.write_all(b"hello").unwrap();
        f.sync().unwrap();
        drop(f);
        assert_eq!(fs.read(&p).unwrap(), b"hello");
        let mut f = fs.append(&p).unwrap();
        f.write_all(b" world").unwrap();
        f.sync().unwrap();
        drop(f);
        assert_eq!(fs.read_to_string(&p).unwrap(), "hello world");
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn read_dir_is_sorted_and_sync_dir_succeeds() {
        let d = scratch("dir");
        let fs = RealFs;
        for name in ["b", "a", "c"] {
            fs.create(&d.join(name)).unwrap();
        }
        fs.sync_dir(&d).unwrap();
        let names: Vec<String> = fs
            .read_dir(&d)
            .unwrap()
            .iter()
            .map(|p| p.file_name().unwrap().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["a", "b", "c"]);
        let _ = std::fs::remove_dir_all(&d);
    }
}
