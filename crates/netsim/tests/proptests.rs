//! Property-based tests of the virtual cluster: model monotonicity and
//! determinism over arbitrary parameters.

use cpc_cluster::{ClusterConfig, MsgClass, NetworkKind, OpShape, Phase, SplitMix64, TransferCtx};
use proptest::prelude::*;

fn ctx(shape: OpShape) -> TransferCtx {
    TransferCtx {
        shape,
        src_ranks_per_node: 1,
        dst_ranks_per_node: 1,
        same_node: false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn wire_time_monotone_in_bytes(
        bytes in 1usize..2_000_000,
        extra in 1usize..1_000_000,
        counter in 0u64..500,
        kind_idx in 0usize..NetworkKind::ALL.len(),
    ) {
        // Same RNG stream for both sizes: deterministic comparison.
        let p = NetworkKind::ALL[kind_idx].params();
        let c = ctx(OpShape::p2p());
        let mut r1 = SplitMix64::for_message(1, 0, 1, counter);
        let mut r2 = SplitMix64::for_message(1, 0, 1, counter);
        let small = p.transfer(bytes, &c, &mut r1).wire;
        let big = p.transfer(bytes + extra, &c, &mut r2).wire;
        prop_assert!(big >= small, "{small} vs {big}");
    }

    #[test]
    fn effective_bandwidth_monotone_in_flows(
        flows in 1usize..16,
        kind_idx in 0usize..NetworkKind::ALL.len(),
    ) {
        let p = NetworkKind::ALL[kind_idx].params();
        let a = p.effective_bandwidth(flows, false);
        let b = p.effective_bandwidth(flows + 1, false);
        prop_assert!(b <= a + 1e-9);
        prop_assert!(b > 0.0);
    }

    #[test]
    fn transfer_time_is_always_positive_and_finite(
        bytes in 1usize..10_000_000,
        endpoint in 1usize..16,
        participants in 2usize..17,
        counter in 0u64..1000,
        kind_idx in 0usize..NetworkKind::ALL.len(),
    ) {
        let p = NetworkKind::ALL[kind_idx].params();
        let c = ctx(OpShape::new(endpoint, participants));
        let mut rng = SplitMix64::for_message(7, 0, 1, counter);
        let t = p.transfer(bytes, &c, &mut rng);
        prop_assert!(t.wire > 0.0 && t.wire.is_finite());
        prop_assert!(t.send_overhead >= 0.0 && t.recv_overhead >= 0.0);
    }

    #[test]
    fn rank_node_mapping_consistent(ranks in 1usize..33, dual in proptest::bool::ANY) {
        let cfg = if dual {
            ClusterConfig::dual(ranks, NetworkKind::TcpGigE)
        } else {
            ClusterConfig::uni(ranks, NetworkKind::TcpGigE)
        };
        cfg.validate().unwrap();
        let mut per_node = std::collections::HashMap::new();
        for r in 0..ranks {
            *per_node.entry(cfg.node_of(r)).or_insert(0usize) += 1;
        }
        prop_assert_eq!(per_node.len(), cfg.nodes());
        for (&node, &count) in &per_node {
            prop_assert!(count <= cfg.cpus_per_node);
            prop_assert!(node < cfg.nodes());
        }
        // compute_scale reflects sharing.
        for r in 0..ranks {
            let scale = cfg.compute_scale(r);
            if cfg.ranks_on_node_of(r) > 1 {
                prop_assert!(scale > 1.0);
            } else {
                prop_assert!((scale - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn cost_model_scaling_is_linear(speedup in 0.1f64..8.0) {
        let base = cpc_cluster::PIII_1GHZ;
        let scaled = base.scaled(speedup);
        prop_assert!((scaled.pair_eval * speedup - base.pair_eval).abs() < 1e-15);
        prop_assert!((scaled.fft_flop * speedup - base.fft_flop).abs() < 1e-15);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn cluster_runs_are_deterministic_for_any_config(
        ranks in 1usize..9,
        seed in 0u64..100,
        kind_idx in 0usize..NetworkKind::ALL.len(),
        dual in proptest::bool::ANY,
    ) {
        let mut cfg = if dual {
            ClusterConfig::dual(ranks, NetworkKind::ALL[kind_idx])
        } else {
            ClusterConfig::uni(ranks, NetworkKind::ALL[kind_idx])
        };
        cfg.seed = seed;
        let run = || {
            cpc_cluster::run_cluster(cfg, |ctx| {
                ctx.set_phase(Phase::Classic);
                ctx.charge_compute(1e-3 * (ctx.rank() + 1) as f64);
                let p = ctx.size();
                if p > 1 {
                    let next = (ctx.rank() + 1) % p;
                    let prev = (ctx.rank() + p - 1) % p;
                    ctx.send(next, 1, vec![ctx.rank() as f64; 100], MsgClass::Payload,
                             OpShape::new(1, p));
                    ctx.recv(prev, 1);
                }
                ctx.now()
            })
            .iter()
            .map(|o| o.finish_time)
            .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }
}
