//! Computation cost model, calibrated to the paper's 1 GHz Pentium III
//! cluster nodes.
//!
//! The MD kernels report *operation counts* (pairs evaluated, spline
//! points spread, FFT flops, ...); this model converts counts to
//! virtual seconds. The constants are calibrated so that the sequential
//! myoglobin workload reproduces Figure 3's one-processor phase times:
//! ~0.34 s/step for the classic energy calculation and ~0.29 s/step for
//! the PME energy calculation.

use serde::{Deserialize, Serialize};

/// Per-operation costs in seconds on a 1 GHz Pentium III.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Nonbonded pair inside the cutoff (LJ + electrostatics, table
    /// lookups, cache misses): ~500 cycles.
    pub pair_eval: f64,
    /// Pair visited in the list but outside the cutoff (distance check).
    pub list_pair: f64,
    /// One bonded term (bond/angle/dihedral/improper average).
    pub bonded_term: f64,
    /// One excluded-pair Ewald correction.
    pub excl_pair: f64,
    /// One B-spline mesh write during charge spreading.
    pub spread_point: f64,
    /// One FFT flop (PIII sustains ~120 Mflop/s on FFTs).
    pub fft_flop: f64,
    /// One mesh point in the influence-function multiply.
    pub conv_point: f64,
    /// One mesh read during force interpolation.
    pub interp_point: f64,
    /// One atom integrated (velocity Verlet update).
    pub integrate_atom: f64,
    /// One pair visited during a neighbour-list rebuild.
    pub list_build_pair: f64,
}

/// Calibrated Pentium III / 1 GHz model (the paper's nodes).
pub const PIII_1GHZ: CostModel = CostModel {
    pair_eval: 670e-9,
    list_pair: 80e-9,
    bonded_term: 400e-9,
    excl_pair: 150e-9,
    spread_point: 140e-9,
    fft_flop: 7.8e-9,
    conv_point: 20e-9,
    interp_point: 140e-9,
    integrate_atom: 60e-9,
    list_build_pair: 70e-9,
};

impl Default for CostModel {
    fn default() -> Self {
        PIII_1GHZ
    }
}

impl CostModel {
    /// Scales every cost by `1/speedup` (e.g. `speedup = 2.0` models a
    /// 2 GHz part).
    pub fn scaled(&self, speedup: f64) -> CostModel {
        assert!(speedup > 0.0);
        let s = 1.0 / speedup;
        CostModel {
            pair_eval: self.pair_eval * s,
            list_pair: self.list_pair * s,
            bonded_term: self.bonded_term * s,
            excl_pair: self.excl_pair * s,
            spread_point: self.spread_point * s,
            fft_flop: self.fft_flop * s,
            conv_point: self.conv_point * s,
            interp_point: self.interp_point * s,
            integrate_atom: self.integrate_atom * s,
            list_build_pair: self.list_build_pair * s,
        }
    }
}

/// CPU/node configuration (the paper's third factor).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuConfig {
    /// Clock in GHz relative to the 1 GHz calibration point.
    pub ghz: f64,
    /// Compute slowdown multiplier when two ranks share a node's memory
    /// system.
    pub smp_memory_contention: f64,
}

impl Default for CpuConfig {
    fn default() -> Self {
        CpuConfig {
            ghz: 1.0,
            smp_memory_contention: 1.12,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_step_calibration() {
        // The myoglobin workload evaluates ~600-700k pairs per step;
        // the classic phase must land near 0.34 s (Fig. 3, 1 CPU).
        let m = PIII_1GHZ;
        let pairs = 640_000.0;
        let bonded = 13_000.0;
        let t = pairs * m.pair_eval + 150_000.0 * m.list_pair + bonded * m.bonded_term;
        assert!((0.25..0.45).contains(&t), "classic step estimate {t}");
    }

    #[test]
    fn pme_step_calibration() {
        // PME phase: 2 x 3D FFT on 80x36x48 + spread/interp of
        // 3552 atoms * 4^3 points, target ~0.29 s (Fig. 3, 1 CPU).
        let m = PIII_1GHZ;
        let grid: f64 = 80.0 * 36.0 * 48.0;
        let fft_flops = 2.0 * 5.0 * grid * grid.log2(); // both directions, 3D
        let spread = 3552.0 * 64.0;
        let t = fft_flops * m.fft_flop
            + spread * (m.spread_point + m.interp_point)
            + grid * m.conv_point
            + 12_000.0 * m.excl_pair;
        assert!((0.2..0.42).contains(&t), "pme step estimate {t}");
    }

    #[test]
    fn scaling_halves_costs() {
        let m = PIII_1GHZ.scaled(2.0);
        assert!((m.pair_eval - PIII_1GHZ.pair_eval / 2.0).abs() < 1e-18);
    }

    #[test]
    fn default_cpu_is_one_ghz() {
        let c = CpuConfig::default();
        assert_eq!(c.ghz, 1.0);
        assert!(c.smp_memory_contention >= 1.0);
    }
}
