//! Cluster configuration: the three platform factors of the paper's
//! experimental design (network, middleware lives in `cpc-mpi`, CPUs
//! per node) plus the cost model.

use crate::cost::{CostModel, CpuConfig};
use crate::netmodel::NetworkKind;
use serde::{Deserialize, Serialize};

/// Configuration of a virtual cluster run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of MPI ranks (the paper's "number of processors").
    pub ranks: usize,
    /// CPUs per node: 1 (uni-processor) or 2 (dual-processor).
    pub cpus_per_node: usize,
    /// Network technology + communication software.
    pub network: NetworkKind,
    /// Node CPU configuration.
    pub cpu: CpuConfig,
    /// Operation cost model.
    pub cost: CostModel,
    /// Seed for deterministic jitter.
    pub seed: u64,
    /// Record a per-message trace in each rank's statistics.
    pub record_trace: bool,
    /// Heterogeneous clusters: the first `slow_nodes` nodes run at
    /// `slow_factor` times the configured clock (e.g. 0.5 = half
    /// speed). Models mixing old and new hardware in one machine.
    pub slow_nodes: usize,
    /// Clock multiplier for the slow nodes (1.0 = homogeneous).
    pub slow_factor: f64,
    /// Stall watchdog: *real* (wall-clock) seconds a blocked receive
    /// may wait with no matching message before the engine declares the
    /// run stalled and unwinds with
    /// [`SimError::Stalled`](crate::engine::SimError::Stalled). Virtual
    /// time is untouched — a healthy run never waits anywhere near this
    /// long in real time, so the default is generous; chaos harnesses
    /// lower it to fail fast on schedules that deadlock the collectives.
    pub stall_timeout: f64,
}

impl ClusterConfig {
    /// Uni-processor cluster on the given network (the common case).
    pub fn uni(ranks: usize, network: NetworkKind) -> Self {
        ClusterConfig {
            ranks,
            cpus_per_node: 1,
            network,
            cpu: CpuConfig::default(),
            cost: CostModel::default(),
            seed: 2002,
            record_trace: false,
            slow_nodes: 0,
            slow_factor: 1.0,
            stall_timeout: 60.0,
        }
    }

    /// Overrides the real-time stall-watchdog timeout (seconds).
    pub fn with_stall_timeout(mut self, seconds: f64) -> Self {
        self.stall_timeout = seconds;
        self
    }

    /// Marks the first `slow_nodes` nodes as running at `slow_factor`
    /// times the base clock.
    pub fn with_slow_nodes(mut self, slow_nodes: usize, slow_factor: f64) -> Self {
        assert!(slow_factor > 0.0);
        self.slow_nodes = slow_nodes;
        self.slow_factor = slow_factor;
        self
    }

    /// Dual-processor cluster: ranks are packed two per node.
    pub fn dual(ranks: usize, network: NetworkKind) -> Self {
        ClusterConfig {
            cpus_per_node: 2,
            ..Self::uni(ranks, network)
        }
    }

    /// Node hosting a rank (ranks are packed densely).
    pub fn node_of(&self, rank: usize) -> usize {
        rank / self.cpus_per_node
    }

    /// Number of nodes in use.
    pub fn nodes(&self) -> usize {
        self.ranks.div_ceil(self.cpus_per_node)
    }

    /// Ranks sharing the node of `rank` (1 or 2).
    pub fn ranks_on_node_of(&self, rank: usize) -> usize {
        let node = self.node_of(rank);
        let first = node * self.cpus_per_node;
        let last = ((node + 1) * self.cpus_per_node).min(self.ranks);
        last - first
    }

    /// Compute-time multiplier for a rank: clock scaling (including the
    /// heterogeneous slow-node factor) plus memory contention when the
    /// node is shared.
    pub fn compute_scale(&self, rank: usize) -> f64 {
        let node_clock = if self.node_of(rank) < self.slow_nodes {
            self.cpu.ghz * self.slow_factor
        } else {
            self.cpu.ghz
        };
        let base = 1.0 / node_clock;
        if self.ranks_on_node_of(rank) > 1 {
            base * self.cpu.smp_memory_contention
        } else {
            base
        }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.ranks == 0 {
            return Err("at least one rank required".into());
        }
        if !(1..=2).contains(&self.cpus_per_node) {
            return Err(format!(
                "cpus_per_node must be 1 or 2, got {}",
                self.cpus_per_node
            ));
        }
        if self.cpu.ghz <= 0.0 {
            return Err("cpu clock must be positive".into());
        }
        if self.slow_factor <= 0.0 {
            return Err("slow_factor must be positive".into());
        }
        if !(self.stall_timeout.is_finite() && self.stall_timeout > 0.0) {
            return Err(format!(
                "stall_timeout {} must be finite and positive",
                self.stall_timeout
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uni_mapping() {
        let c = ClusterConfig::uni(8, NetworkKind::TcpGigE);
        assert_eq!(c.nodes(), 8);
        assert_eq!(c.node_of(5), 5);
        assert_eq!(c.ranks_on_node_of(5), 1);
        assert_eq!(c.compute_scale(0), 1.0);
        c.validate().unwrap();
    }

    #[test]
    fn dual_mapping() {
        let c = ClusterConfig::dual(8, NetworkKind::MyrinetGm);
        assert_eq!(c.nodes(), 4);
        assert_eq!(c.node_of(0), 0);
        assert_eq!(c.node_of(1), 0);
        assert_eq!(c.node_of(2), 1);
        assert_eq!(c.ranks_on_node_of(3), 2);
        assert!(c.compute_scale(0) > 1.0, "memory contention applies");
    }

    #[test]
    fn dual_with_odd_rank_count() {
        let c = ClusterConfig::dual(5, NetworkKind::ScoreGigE);
        assert_eq!(c.nodes(), 3);
        // Rank 4 is alone on node 2: no contention.
        assert_eq!(c.ranks_on_node_of(4), 1);
        assert_eq!(c.compute_scale(4), 1.0);
        assert!(c.compute_scale(0) > 1.0);
    }

    #[test]
    fn heterogeneous_nodes_scale_differently() {
        let c = ClusterConfig::uni(4, NetworkKind::MyrinetGm).with_slow_nodes(2, 0.5);
        // First two nodes at half speed: compute takes twice as long.
        assert_eq!(c.compute_scale(0), 2.0);
        assert_eq!(c.compute_scale(1), 2.0);
        assert_eq!(c.compute_scale(2), 1.0);
        assert_eq!(c.compute_scale(3), 1.0);
        c.validate().unwrap();
    }

    #[test]
    fn validation_catches_errors() {
        let mut c = ClusterConfig::uni(0, NetworkKind::TcpGigE);
        assert!(c.validate().is_err());
        c.ranks = 4;
        c.cpus_per_node = 3;
        assert!(c.validate().is_err());
    }
}
