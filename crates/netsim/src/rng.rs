//! Deterministic SplitMix64 generator used for network jitter.
//!
//! Jitter must be reproducible *regardless of thread interleaving*, so
//! every (source, destination) channel derives an independent stream
//! keyed by a per-channel message counter — the sequence seen by a
//! message depends only on program order on its own channel.

/// SplitMix64 PRNG state.
#[derive(Debug, Clone, Copy)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Derives a generator for one message on one channel.
    pub fn for_message(seed: u64, src: usize, dst: usize, counter: u64) -> Self {
        let mut h = seed ^ 0x9E3779B97F4A7C15;
        h = h.wrapping_mul(0xBF58476D1CE4E5B9) ^ (src as u64).wrapping_mul(0x94D049BB133111EB);
        h = h.wrapping_mul(0xBF58476D1CE4E5B9) ^ (dst as u64).wrapping_add(0xD6E8FEB86659FD93);
        h = h.wrapping_mul(0xBF58476D1CE4E5B9) ^ counter;
        SplitMix64 { state: h }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Symmetric triangular variate in `(-1, 1)` (sum of two uniforms).
    pub fn next_triangular(&mut self) -> f64 {
        self.next_f64() + self.next_f64() - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_message() {
        let mut a = SplitMix64::for_message(7, 1, 2, 10);
        let mut b = SplitMix64::for_message(7, 1, 2, 10);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_channels_differ() {
        let a = SplitMix64::for_message(7, 1, 2, 0).next_u64();
        let b = SplitMix64::for_message(7, 2, 1, 0).next_u64();
        let c = SplitMix64::for_message(7, 1, 2, 1).next_u64();
        let d = SplitMix64::for_message(8, 1, 2, 0).next_u64();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut rng = SplitMix64::new(3);
        let mut sum = 0.0;
        for _ in 0..4000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        assert!((sum / 4000.0 - 0.5).abs() < 0.03);
    }

    #[test]
    fn triangular_is_centered() {
        let mut rng = SplitMix64::new(11);
        let mut sum = 0.0;
        for _ in 0..4000 {
            let v = rng.next_triangular();
            assert!((-1.0..1.0).contains(&v));
            sum += v;
        }
        assert!(sum.abs() / 4000.0 < 0.03);
    }
}
