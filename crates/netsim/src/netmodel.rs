//! Network models for the three interconnect/software stacks the paper
//! compares, plus the Fast Ethernet configuration referenced from the
//! companion technical report.
//!
//! Each model is a LogGP-style cost function with three paper-motivated
//! pathologies layered on top:
//!
//! * **congestion collapse** — MPI over TCP interacts badly with TCP
//!   flow control once several flows are active (paper section 4.1:
//!   "the high variability of MPI transfers over TCP/IP starts abruptly
//!   with four processors"),
//! * **small-message penalty** — 1-byte synchronization exchanges over
//!   TCP occasionally stall on delayed-ACK-style timers, which is what
//!   sinks the CMPI middleware (section 4.2),
//! * **SMP interrupt serialization** — with two ranks per node only one
//!   CPU services NIC interrupts over TCP (section 4.3, citing \[18\]);
//!   SCore and Myrinet use shared-memory/coprocessor drivers instead.

use crate::faults::LinkFault;
use crate::rng::SplitMix64;
use serde::{Deserialize, Serialize};

/// The interconnect + communication-software level of the paper's
/// "Networking" factor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NetworkKind {
    /// MPICH over TCP/IP on Gigabit Ethernet — the reference (focal)
    /// configuration.
    TcpGigE,
    /// SCore communication system on the same Gigabit Ethernet.
    ScoreGigE,
    /// MPICH-GM on Myrinet (lanai coprocessor NICs).
    MyrinetGm,
    /// MPICH over TCP/IP on Fast (100 Mbit) Ethernet, from \[17\].
    FastEthernet,
    /// Wide-area ("grid") links between sites, for the paper's closing
    /// question about moving CHARMM to widely distributed computing.
    WideArea,
}

impl NetworkKind {
    /// All levels of the networking factor in presentation order.
    pub const ALL: [NetworkKind; 5] = [
        NetworkKind::TcpGigE,
        NetworkKind::ScoreGigE,
        NetworkKind::MyrinetGm,
        NetworkKind::FastEthernet,
        NetworkKind::WideArea,
    ];

    /// Human-readable label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            NetworkKind::TcpGigE => "TCP/IP on Ethernet",
            NetworkKind::ScoreGigE => "SCore on Ethernet",
            NetworkKind::MyrinetGm => "Myrinet",
            NetworkKind::FastEthernet => "TCP/IP on Fast Ethernet",
            NetworkKind::WideArea => "wide-area grid links",
        }
    }

    /// The calibrated parameter set for this network.
    pub fn params(self) -> NetworkParams {
        match self {
            NetworkKind::TcpGigE => NetworkParams {
                kind: self,
                latency: 65e-6,
                bandwidth: 26e6,
                pkt_size: 1460,
                per_pkt_overhead: 12e-6,
                send_overhead: 8e-6,
                recv_overhead: 8e-6,
                congestion_threshold: 1,
                congestion_factor: 0.85,
                jitter_base: 0.08,
                jitter_per_flow: 0.10,
                small_msg_penalty_prob_per_flow: 0.040,
                small_msg_flow_floor: 4,
                small_msg_penalty: 25e-3,
                rto_backoff: 2.0,
                rto_max: 3.0,
                smp_pkt_factor: 3.0,
                smp_jitter_boost: 0.4,
                intra_latency: 45e-6,
                intra_bandwidth: 90e6,
                intra_uses_nic_path: true,
            },
            NetworkKind::ScoreGigE => NetworkParams {
                kind: self,
                latency: 20e-6,
                bandwidth: 95e6,
                pkt_size: 1460,
                per_pkt_overhead: 1.5e-6,
                send_overhead: 3e-6,
                recv_overhead: 3e-6,
                congestion_threshold: 2,
                congestion_factor: 0.06,
                jitter_base: 0.03,
                jitter_per_flow: 0.0,
                small_msg_penalty_prob_per_flow: 0.0,
                small_msg_flow_floor: 4,
                small_msg_penalty: 0.0,
                rto_backoff: 2.0,
                rto_max: 0.05,
                smp_pkt_factor: 1.15,
                smp_jitter_boost: 0.02,
                intra_latency: 4e-6,
                intra_bandwidth: 280e6,
                intra_uses_nic_path: false,
            },
            NetworkKind::MyrinetGm => NetworkParams {
                kind: self,
                latency: 12e-6,
                bandwidth: 135e6,
                pkt_size: 4096,
                per_pkt_overhead: 0.5e-6,
                send_overhead: 2e-6,
                recv_overhead: 2e-6,
                congestion_threshold: 2,
                congestion_factor: 0.04,
                jitter_base: 0.04,
                jitter_per_flow: 0.0,
                small_msg_penalty_prob_per_flow: 0.0,
                small_msg_flow_floor: 4,
                small_msg_penalty: 0.0,
                rto_backoff: 2.0,
                rto_max: 0.05,
                smp_pkt_factor: 1.05,
                smp_jitter_boost: 0.02,
                intra_latency: 3e-6,
                intra_bandwidth: 300e6,
                intra_uses_nic_path: false,
            },
            NetworkKind::FastEthernet => NetworkParams {
                kind: self,
                latency: 70e-6,
                bandwidth: 9e6,
                pkt_size: 1460,
                per_pkt_overhead: 14e-6,
                send_overhead: 9e-6,
                recv_overhead: 9e-6,
                congestion_threshold: 1,
                congestion_factor: 0.85,
                jitter_base: 0.08,
                jitter_per_flow: 0.10,
                small_msg_penalty_prob_per_flow: 0.040,
                small_msg_flow_floor: 4,
                small_msg_penalty: 25e-3,
                rto_backoff: 2.0,
                rto_max: 3.0,
                smp_pkt_factor: 3.0,
                smp_jitter_boost: 0.4,
                intra_latency: 45e-6,
                intra_bandwidth: 90e6,
                intra_uses_nic_path: true,
            },
            NetworkKind::WideArea => NetworkParams {
                kind: self,
                latency: 5e-3,
                bandwidth: 1.25e6,
                pkt_size: 1460,
                per_pkt_overhead: 20e-6,
                send_overhead: 10e-6,
                recv_overhead: 10e-6,
                congestion_threshold: 1,
                congestion_factor: 1.0,
                jitter_base: 0.30,
                jitter_per_flow: 0.15,
                small_msg_penalty_prob_per_flow: 0.040,
                small_msg_flow_floor: 2,
                small_msg_penalty: 40e-3,
                rto_backoff: 2.0,
                rto_max: 10.0,
                smp_pkt_factor: 3.0,
                smp_jitter_boost: 0.4,
                intra_latency: 45e-6,
                intra_bandwidth: 90e6,
                intra_uses_nic_path: true,
            },
        }
    }
}

/// Calibrated timing parameters for one network level.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkParams {
    /// Which network these parameters describe.
    pub kind: NetworkKind,
    /// One-way base latency, seconds.
    pub latency: f64,
    /// Sustained point-to-point bandwidth, bytes/second.
    pub bandwidth: f64,
    /// Packet payload size (bytes) for per-packet host costs.
    pub pkt_size: usize,
    /// Host cost per packet, seconds.
    pub per_pkt_overhead: f64,
    /// Sender CPU overhead per message, seconds.
    pub send_overhead: f64,
    /// Receiver CPU overhead per message, seconds.
    pub recv_overhead: f64,
    /// Endpoint flow count the stack tolerates before incast collapse.
    pub congestion_threshold: usize,
    /// Bandwidth divisor growth per endpoint flow above the threshold.
    pub congestion_factor: f64,
    /// Relative jitter (log scale) at low concurrency.
    pub jitter_base: f64,
    /// Additional jitter per participating rank above three.
    pub jitter_per_flow: f64,
    /// Probability per flow (above [`Self::small_msg_flow_floor`]) that
    /// a tiny message hits the delayed-ACK style penalty.
    pub small_msg_penalty_prob_per_flow: f64,
    /// Concurrent-flow count below which tiny messages never hit the
    /// penalty (tree barriers at p <= 8 stay clean; the CMPI ring at
    /// p = 8 does not — reproducing the paper's 4 -> 8 collapse).
    pub small_msg_flow_floor: usize,
    /// Penalty magnitude, seconds. This is the stack's minimum
    /// retransmission/delayed-ACK timer: a tiny-message stall costs
    /// exactly one such timer period, and the retransmission model of
    /// [`transfer_faulty`](Self::transfer_faulty) uses it as the RTO
    /// floor (see [`rto_floor`](Self::rto_floor)), so the fault-free
    /// figures are unchanged by the explicit model.
    pub small_msg_penalty: f64,
    /// RTO growth factor per retransmission round (TCP doubles).
    pub rto_backoff: f64,
    /// Upper bound on the retransmission timeout, seconds.
    pub rto_max: f64,
    /// Per-packet cost multiplier when a dual-CPU node's interrupt path
    /// is shared (TCP); near 1 for shared-memory drivers.
    pub smp_pkt_factor: f64,
    /// Extra jitter under SMP interrupt contention.
    pub smp_jitter_boost: f64,
    /// Latency for messages between ranks on the same node.
    pub intra_latency: f64,
    /// Bandwidth for same-node messages.
    pub intra_bandwidth: f64,
    /// Whether same-node traffic still traverses the interrupt-driven
    /// stack (true for TCP loopback, false for shared-memory drivers).
    pub intra_uses_nic_path: bool,
}

/// Shape of the communication operation a message belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpShape {
    /// Same-direction flows contending at the busiest endpoint (1 for
    /// point-to-point, ring and pairwise exchanges; `p - 1` for flat
    /// gathers/incast and for split send groups).
    pub endpoint_flows: usize,
    /// Ranks participating in the operation (drives the stochastic
    /// variability and the tiny-message pathology, both of which grow
    /// with the amount of traffic in the stack/switch).
    pub participants: usize,
    /// True for rapid back-to-back streams of tiny messages (the CMPI
    /// synchronization pattern). Nagle / delayed-ACK interactions only
    /// trigger on such streams — an isolated barrier hop is safe.
    pub repeated_small: bool,
}

impl OpShape {
    /// Plain point-to-point message.
    pub fn p2p() -> Self {
        OpShape {
            endpoint_flows: 1,
            participants: 2,
            repeated_small: false,
        }
    }

    /// Explicit shape.
    pub fn new(endpoint_flows: usize, participants: usize) -> Self {
        OpShape {
            endpoint_flows: endpoint_flows.max(1),
            participants: participants.max(2),
            repeated_small: false,
        }
    }

    /// Shape for repeated tiny-message streams (CMPI synchronization).
    pub fn repeated(endpoint_flows: usize, participants: usize) -> Self {
        OpShape {
            repeated_small: true,
            ..Self::new(endpoint_flows, participants)
        }
    }
}

/// Context of a single message transfer.
#[derive(Debug, Clone, Copy)]
pub struct TransferCtx {
    /// Shape of the enclosing operation.
    pub shape: OpShape,
    /// Ranks per node on the sending side.
    pub src_ranks_per_node: usize,
    /// Ranks per node on the receiving side.
    pub dst_ranks_per_node: usize,
    /// Whether source and destination share a node.
    pub same_node: bool,
}

/// Outcome of the transfer model.
#[derive(Debug, Clone, Copy)]
pub struct TransferTime {
    /// Wire time from departure to arrival, seconds.
    pub wire: f64,
    /// Sender-side CPU overhead, seconds.
    pub send_overhead: f64,
    /// Receiver-side CPU overhead, seconds.
    pub recv_overhead: f64,
}

/// Outcome of the transfer model on a (possibly) faulty link.
#[derive(Debug, Clone, Copy)]
pub struct FaultyTransfer {
    /// Timing; `time.wire` includes all retransmission stalls.
    pub time: TransferTime,
    /// Retransmission rounds the transport went through.
    pub retransmits: u32,
    /// False when the transport gave up: the message never arrives and
    /// the engine delivers a tombstone in its place.
    pub delivered: bool,
}

impl NetworkParams {
    /// Number of packets for a message of `bytes`.
    pub fn packets(&self, bytes: usize) -> usize {
        bytes.div_ceil(self.pkt_size).max(1)
    }

    /// Effective bandwidth under `flows` concurrent same-direction
    /// flows at the busiest endpoint (incast/outcast sharing).
    pub fn effective_bandwidth(&self, flows: usize, intra: bool) -> f64 {
        let base = if intra {
            self.intra_bandwidth
        } else {
            self.bandwidth
        };
        let over = flows.saturating_sub(self.congestion_threshold) as f64;
        base / (1.0 + self.congestion_factor * over)
    }

    /// Jitter sigma (log scale): grows with the number of ranks
    /// participating in the operation (the paper: "the high variability
    /// of MPI transfers over TCP/IP starts abruptly with four
    /// processors").
    pub fn jitter_sigma(&self, ctx: &TransferCtx) -> f64 {
        let mut sigma = self.jitter_base
            + self.jitter_per_flow * ctx.shape.participants.saturating_sub(3) as f64;
        if ctx.src_ranks_per_node > 1 || ctx.dst_ranks_per_node > 1 {
            sigma += self.smp_jitter_boost;
        }
        sigma
    }

    /// The retransmission-timeout floor: the stack's delayed-ACK /
    /// minimum-RTO timer. For TCP-family stacks this *is* the
    /// calibrated `small_msg_penalty` (the tiny-message stall of
    /// section 4.2 is one such timer period), so the explicit
    /// retransmission model reproduces the fault-free figures
    /// bit-identically. Stacks without the pathology (SCore, Myrinet
    /// GM) use a floor derived from their wire latency.
    pub fn rto_floor(&self) -> f64 {
        if self.small_msg_penalty > 0.0 {
            self.small_msg_penalty
        } else {
            20.0 * self.latency
        }
    }

    /// Retransmission timeout of round `k` (0-based): exponential
    /// backoff from [`rto_floor`](Self::rto_floor), capped at
    /// [`rto_max`](Self::rto_max).
    pub fn rto(&self, round: u32) -> f64 {
        (self.rto_floor() * self.rto_backoff.powi(round.min(1000) as i32)).min(self.rto_max)
    }

    /// Models one message of `bytes` bytes on a fault-free link.
    ///
    /// Deterministic given the RNG (which the engine derives from the
    /// per-channel message counter). Exactly equivalent to
    /// [`transfer_faulty`](Self::transfer_faulty) with
    /// [`LinkFault::clean`] — same result, same number of draws.
    pub fn transfer(&self, bytes: usize, ctx: &TransferCtx, rng: &mut SplitMix64) -> TransferTime {
        self.transfer_faulty(bytes, ctx, rng, &LinkFault::clean())
            .time
    }

    /// Models one message of `bytes` bytes on a link in fault state
    /// `fault`.
    ///
    /// The clean portion of the cost (latency, per-packet host costs,
    /// bandwidth sharing, jitter, tiny-message stall) is computed first
    /// with exactly the draws of the fault-free model; fault costs are
    /// layered on top and consume extra draws only when `fault.loss >
    /// 0`. Each lossy round waits out one RTO (exponential backoff)
    /// and resends the lost packets; after `fault.max_retransmits`
    /// rounds the transport either gives up (`fault.give_up`, the
    /// message becomes a tombstone) or delivers late (reliable mode).
    pub fn transfer_faulty(
        &self,
        bytes: usize,
        ctx: &TransferCtx,
        rng: &mut SplitMix64,
        fault: &LinkFault,
    ) -> FaultyTransfer {
        let intra = ctx.same_node;
        let latency = if intra && !self.intra_uses_nic_path {
            self.intra_latency
        } else if intra {
            self.intra_latency.max(self.latency * 0.7)
        } else {
            self.latency
        };

        // Per-packet host costs; serialized interrupt handling on
        // dual-CPU nodes multiplies them (only for NIC-path traffic).
        let mut per_pkt = self.per_pkt_overhead;
        let smp_affected = (ctx.src_ranks_per_node > 1 || ctx.dst_ranks_per_node > 1)
            && (!intra || self.intra_uses_nic_path);
        if smp_affected {
            per_pkt *= self.smp_pkt_factor;
        }
        let pkts = self.packets(bytes) as f64;

        let bw =
            self.effective_bandwidth(ctx.shape.endpoint_flows, intra && !self.intra_uses_nic_path);
        let mut wire = latency + pkts * per_pkt + bytes as f64 / bw;

        // Multiplicative jitter, log-triangular, clamped.
        let sigma = self.jitter_sigma(ctx);
        let z = rng.next_triangular();
        let factor = (sigma * z).exp().clamp(0.5, 6.0);
        wire *= factor;

        // Tiny-message pathology (delayed ACK / Nagle interactions):
        // only repeated small-packet streams trigger the timers. The
        // stall is one minimum-RTO period, which for the TCP family is
        // the calibrated small_msg_penalty.
        if bytes <= 64 && ctx.shape.repeated_small && self.small_msg_penalty > 0.0 {
            let excess = ctx
                .shape
                .participants
                .saturating_sub(self.small_msg_flow_floor) as f64;
            let prob = (self.small_msg_penalty_prob_per_flow * excess).min(0.5);
            if rng.next_f64() < prob {
                wire += self.rto_floor();
            }
        }

        if fault.wire_factor != 1.0 {
            wire *= fault.wire_factor;
        }

        // Explicit packet-loss retransmission: each round loses a
        // packet with probability derived from the per-packet loss
        // rate, waits out the (backed-off) retransmission timer, and
        // resends what was lost.
        let mut retransmits = 0u32;
        let mut delivered = true;
        if fault.loss > 0.0 {
            let mut pkts_left = pkts;
            loop {
                let p_round = 1.0 - (1.0 - fault.loss).powf(pkts_left);
                if rng.next_f64() >= p_round {
                    break;
                }
                if retransmits >= fault.max_retransmits {
                    delivered = !fault.give_up;
                    break;
                }
                wire += self.rto(retransmits);
                pkts_left = (pkts_left * fault.loss).max(1.0);
                wire += latency + pkts_left * per_pkt + pkts_left * self.pkt_size as f64 / bw;
                retransmits += 1;
            }
        }

        FaultyTransfer {
            time: TransferTime {
                wire,
                send_overhead: self.send_overhead,
                recv_overhead: self.recv_overhead,
            },
            retransmits,
            delivered,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx1() -> TransferCtx {
        TransferCtx {
            shape: OpShape::p2p(),
            src_ranks_per_node: 1,
            dst_ranks_per_node: 1,
            same_node: false,
        }
    }

    fn mean_wire(p: &NetworkParams, bytes: usize, ctx: &TransferCtx) -> f64 {
        let mut sum = 0.0;
        let n = 400;
        for i in 0..n {
            let mut rng = SplitMix64::for_message(1, 0, 1, i);
            sum += p.transfer(bytes, ctx, &mut rng).wire;
        }
        sum / n as f64
    }

    #[test]
    fn more_bytes_never_faster() {
        for kind in NetworkKind::ALL {
            let p = kind.params();
            let mut rng_a = SplitMix64::for_message(1, 0, 1, 7);
            let mut rng_b = SplitMix64::for_message(1, 0, 1, 7);
            let small = p.transfer(1_000, &ctx1(), &mut rng_a).wire;
            let big = p.transfer(1_000_000, &ctx1(), &mut rng_b).wire;
            assert!(big > small, "{kind:?}");
        }
    }

    #[test]
    fn bandwidth_asymptote_is_close_to_nominal() {
        for kind in [NetworkKind::ScoreGigE, NetworkKind::MyrinetGm] {
            let p = kind.params();
            let bytes = 8_000_000;
            let t = mean_wire(&p, bytes, &ctx1());
            let achieved = bytes as f64 / t;
            assert!(
                achieved > 0.6 * p.bandwidth && achieved < 1.2 * p.bandwidth,
                "{kind:?}: achieved {achieved:.3e} vs nominal {:.3e}",
                p.bandwidth
            );
        }
    }

    #[test]
    fn latency_dominates_small_messages() {
        for kind in NetworkKind::ALL {
            let p = kind.params();
            let mut rng = SplitMix64::for_message(1, 0, 1, 3);
            let t = p.transfer(8, &ctx1(), &mut rng).wire;
            assert!(t >= 0.5 * p.latency, "{kind:?}");
            assert!(t < 40.0 * p.latency + p.small_msg_penalty, "{kind:?}: {t}");
        }
    }

    #[test]
    fn tcp_incast_collapse_at_high_endpoint_flows() {
        let p = NetworkKind::TcpGigE.params();
        let bw1 = p.effective_bandwidth(1, false);
        let bw7 = p.effective_bandwidth(7, false);
        assert!(bw7 < bw1 / 3.0, "bw1 {bw1:.3e} bw7 {bw7:.3e}");
        // SCore on the same wire barely degrades.
        let s = NetworkKind::ScoreGigE.params();
        assert!(s.effective_bandwidth(7, false) > 0.7 * s.effective_bandwidth(1, false));
    }

    #[test]
    fn tcp_variability_grows_with_participants() {
        let p = NetworkKind::TcpGigE.params();
        let spread = |participants: usize| {
            let ctx = TransferCtx {
                shape: OpShape::new(1, participants),
                ..ctx1()
            };
            let mut lo = f64::INFINITY;
            let mut hi = 0.0f64;
            for i in 0..300 {
                let mut rng = SplitMix64::for_message(5, 0, 1, i);
                let t = p.transfer(100_000, &ctx, &mut rng).wire;
                lo = lo.min(t);
                hi = hi.max(t);
            }
            hi / lo
        };
        assert!(
            spread(8) > 2.0 * spread(2),
            "{} vs {}",
            spread(8),
            spread(2)
        );
    }

    #[test]
    fn smp_hurts_tcp_but_not_myrinet() {
        let ctx_smp = TransferCtx {
            shape: OpShape::p2p(),
            src_ranks_per_node: 2,
            dst_ranks_per_node: 2,
            same_node: false,
        };
        let tcp = NetworkKind::TcpGigE.params();
        let myri = NetworkKind::MyrinetGm.params();
        let t_tcp_uni = mean_wire(&tcp, 200_000, &ctx1());
        let t_tcp_smp = mean_wire(&tcp, 200_000, &ctx_smp);
        let t_my_uni = mean_wire(&myri, 200_000, &ctx1());
        let t_my_smp = mean_wire(&myri, 200_000, &ctx_smp);
        assert!(
            t_tcp_smp > 1.3 * t_tcp_uni,
            "tcp {t_tcp_uni} -> {t_tcp_smp}"
        );
        assert!(
            t_my_smp < 1.2 * t_my_uni,
            "myrinet {t_my_uni} -> {t_my_smp}"
        );
    }

    #[test]
    fn small_message_penalty_only_on_tcp_family() {
        let ctx = TransferCtx {
            shape: OpShape::repeated(1, 8),
            ..ctx1()
        };
        let hit_rate = |kind: NetworkKind| {
            let p = kind.params();
            let mut hits = 0;
            for i in 0..2000 {
                let mut rng = SplitMix64::for_message(9, 0, 1, i);
                if p.transfer(1, &ctx, &mut rng).wire > p.small_msg_penalty.max(1e-3) {
                    hits += 1;
                }
            }
            hits
        };
        assert!(hit_rate(NetworkKind::TcpGigE) > 50);
        assert_eq!(hit_rate(NetworkKind::MyrinetGm), 0);
        assert_eq!(hit_rate(NetworkKind::ScoreGigE), 0);
    }

    #[test]
    fn isolated_tiny_messages_escape_the_penalty() {
        // Barrier-style control hops (not repeated streams) never hit
        // the delayed-ACK pathology, even at scale.
        let p = NetworkKind::TcpGigE.params();
        let ctx = TransferCtx {
            shape: OpShape::new(1, 8),
            ..ctx1()
        };
        for i in 0..2000 {
            let mut rng = SplitMix64::for_message(9, 0, 1, i);
            let t = p.transfer(1, &ctx, &mut rng).wire;
            assert!(t < p.small_msg_penalty, "hit at i={i}: {t}");
        }
    }

    #[test]
    fn intra_node_shared_memory_is_fast_for_san() {
        let p = NetworkKind::MyrinetGm.params();
        let ctx_intra = TransferCtx {
            shape: OpShape::p2p(),
            src_ranks_per_node: 2,
            dst_ranks_per_node: 2,
            same_node: true,
        };
        let t_intra = mean_wire(&p, 100_000, &ctx_intra);
        let t_inter = mean_wire(&p, 100_000, &ctx1());
        assert!(t_intra < t_inter, "{t_intra} vs {t_inter}");
    }

    #[test]
    fn fast_ethernet_slower_than_gige_for_bulk() {
        let fe = NetworkKind::FastEthernet.params();
        let ge = NetworkKind::TcpGigE.params();
        assert!(mean_wire(&fe, 1_000_000, &ctx1()) > mean_wire(&ge, 1_000_000, &ctx1()));
    }

    #[test]
    fn wide_area_is_orders_of_magnitude_slower() {
        let wan = NetworkKind::WideArea.params();
        let lan = NetworkKind::TcpGigE.params();
        assert!(wan.latency > 50.0 * lan.latency);
        assert!(mean_wire(&wan, 1_000_000, &ctx1()) > 10.0 * mean_wire(&lan, 1_000_000, &ctx1()));
    }

    #[test]
    fn packets_round_up() {
        let p = NetworkKind::TcpGigE.params();
        assert_eq!(p.packets(1), 1);
        assert_eq!(p.packets(1460), 1);
        assert_eq!(p.packets(1461), 2);
        assert_eq!(p.packets(0), 1);
    }

    #[test]
    fn clean_fault_is_bit_identical_to_transfer() {
        for kind in NetworkKind::ALL {
            let p = kind.params();
            for bytes in [1usize, 64, 1460, 100_000] {
                for i in 0..50 {
                    let mut rng_a = SplitMix64::for_message(11, 0, 1, i);
                    let mut rng_b = SplitMix64::for_message(11, 0, 1, i);
                    let plain = p.transfer(bytes, &ctx1(), &mut rng_a);
                    let faulty = p.transfer_faulty(bytes, &ctx1(), &mut rng_b, &LinkFault::clean());
                    assert_eq!(plain.wire.to_bits(), faulty.time.wire.to_bits(), "{kind:?}");
                    assert_eq!(faulty.retransmits, 0);
                    assert!(faulty.delivered);
                    // Both must leave the RNG in the same state.
                    assert_eq!(rng_a.next_u64(), rng_b.next_u64());
                }
            }
        }
    }

    #[test]
    fn loss_adds_retransmission_cost() {
        let p = NetworkKind::TcpGigE.params();
        let lossy = LinkFault {
            loss: 0.3,
            wire_factor: 1.0,
            max_retransmits: crate::faults::MAX_RETRANSMIT_ROUNDS,
            give_up: false,
        };
        let mut clean_sum = 0.0;
        let mut lossy_sum = 0.0;
        let mut any_retransmit = false;
        for i in 0..400 {
            let mut rng_a = SplitMix64::for_message(13, 0, 1, i);
            let mut rng_b = SplitMix64::for_message(13, 0, 1, i);
            let clean = p.transfer(100_000, &ctx1(), &mut rng_a).wire;
            let f = p.transfer_faulty(100_000, &ctx1(), &mut rng_b, &lossy);
            assert!(f.delivered);
            assert!(f.time.wire >= clean);
            any_retransmit |= f.retransmits > 0;
            clean_sum += clean;
            lossy_sum += f.time.wire;
        }
        assert!(any_retransmit);
        assert!(
            lossy_sum > clean_sum + 400.0 * 0.1 * p.rto_floor(),
            "{lossy_sum} vs {clean_sum}"
        );
    }

    #[test]
    fn rto_backs_off_exponentially_and_caps() {
        for kind in NetworkKind::ALL {
            let p = kind.params();
            assert!(p.rto_floor() > 0.0, "{kind:?}");
            assert_eq!(p.rto(0), p.rto_floor().min(p.rto_max));
            assert!(p.rto(1) >= p.rto(0));
            assert!((p.rto(1) - (p.rto_floor() * p.rto_backoff).min(p.rto_max)).abs() < 1e-12);
            assert_eq!(p.rto(60), p.rto_max);
        }
        // TCP family: the floor is exactly the calibrated delayed-ACK
        // penalty, which is what keeps baselines bit-identical.
        let tcp = NetworkKind::TcpGigE.params();
        assert_eq!(tcp.rto_floor(), tcp.small_msg_penalty);
    }

    #[test]
    fn opaque_link_gives_up_after_max_retransmits() {
        let p = NetworkKind::TcpGigE.params();
        let fault = LinkFault {
            loss: 1.0,
            wire_factor: 1.0,
            max_retransmits: 3,
            give_up: true,
        };
        let mut rng = SplitMix64::for_message(17, 0, 1, 0);
        let f = p.transfer_faulty(10_000, &ctx1(), &mut rng, &fault);
        assert!(!f.delivered);
        assert_eq!(f.retransmits, 3);
    }

    #[test]
    fn reliable_mode_always_delivers_with_bounded_stall() {
        let p = NetworkKind::TcpGigE.params();
        let fault = LinkFault {
            loss: 1.0,
            wire_factor: 1.0,
            max_retransmits: crate::faults::MAX_RETRANSMIT_ROUNDS,
            give_up: false,
        };
        let mut rng = SplitMix64::for_message(17, 0, 1, 1);
        let f = p.transfer_faulty(10_000, &ctx1(), &mut rng, &fault);
        assert!(f.delivered);
        assert_eq!(f.retransmits, crate::faults::MAX_RETRANSMIT_ROUNDS);
        assert!(f.time.wire.is_finite());
    }

    #[test]
    fn degraded_wire_factor_scales_wire_time() {
        let p = NetworkKind::ScoreGigE.params();
        let mut rng_a = SplitMix64::for_message(19, 0, 1, 0);
        let mut rng_b = SplitMix64::for_message(19, 0, 1, 0);
        let clean = p.transfer(50_000, &ctx1(), &mut rng_a).wire;
        let fault = LinkFault {
            wire_factor: 2.5,
            ..LinkFault::clean()
        };
        let degraded = p
            .transfer_faulty(50_000, &ctx1(), &mut rng_b, &fault)
            .time
            .wire;
        assert!((degraded - 2.5 * clean).abs() < 1e-12 * degraded.abs().max(1.0));
    }
}
