//! The virtual-time execution engine.
//!
//! Ranks run as real OS threads executing the *real* parallel algorithm
//! with real data exchange; only time is virtual. Each rank owns a
//! virtual clock:
//!
//! * computation advances the clock by modeled cost (from operation
//!   counts and the [`crate::cost::CostModel`]),
//! * a message's arrival time is computed **at send time** from the
//!   network model and a per-channel deterministic RNG, so results are
//!   bit-identical regardless of OS scheduling,
//! * a blocking receive completes at `max(local clock, arrival)` plus
//!   the receive overhead; the elapsed virtual time is booked as
//!   communication (payload) or synchronization (control), matching the
//!   paper's time classification.

use crate::cluster::ClusterConfig;
use crate::netmodel::{NetworkParams, OpShape, TransferCtx};
use crate::rng::SplitMix64;
use crate::stats::{MsgClass, Phase, RankStats, ThroughputSample};
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::Arc;

/// A message in flight (or delivered).
#[derive(Debug, Clone)]
pub struct Msg {
    /// Sending rank.
    pub src: usize,
    /// User tag.
    pub tag: u64,
    /// Payload (possibly empty for control messages).
    pub data: Vec<f64>,
    /// Modeled size in bytes (may exceed `data` size, e.g. headers).
    pub bytes: usize,
    /// Classification for the comm/sync split.
    pub class: MsgClass,
    /// Virtual time the message left the sender.
    pub departure: f64,
    /// Virtual time the message reaches the receiver.
    pub arrival: f64,
}

struct Mailbox {
    queue: Mutex<VecDeque<Msg>>,
    cv: Condvar,
}

struct Shared {
    config: ClusterConfig,
    net: NetworkParams,
    mailboxes: Vec<Mailbox>,
}

/// Per-rank execution context handed to the rank body.
pub struct RankCtx {
    rank: usize,
    shared: Arc<Shared>,
    clock: f64,
    phase: Phase,
    /// Per-destination message counters (seed the jitter RNG).
    counters: Vec<u64>,
    /// Collected statistics.
    pub stats: RankStats,
}

impl RankCtx {
    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total number of ranks.
    pub fn size(&self) -> usize {
        self.shared.config.ranks
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.shared.config
    }

    /// Current virtual time in seconds.
    pub fn now(&self) -> f64 {
        self.clock
    }

    /// Sets the phase subsequent time is charged to.
    pub fn set_phase(&mut self, phase: Phase) {
        self.phase = phase;
    }

    /// Current phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Charges `seconds` of computation (expressed at the calibration
    /// clock; node clock scaling and SMP memory contention are applied
    /// here).
    pub fn charge_compute(&mut self, seconds: f64) {
        debug_assert!(seconds >= 0.0);
        let t = seconds * self.shared.config.compute_scale(self.rank);
        self.clock += t;
        self.stats.bucket_mut(self.phase).comp += t;
    }

    /// Sends a message. Eager/buffered semantics: the sender only pays
    /// its CPU overhead; the wire time determines the arrival stamp.
    ///
    /// `shape` describes the enclosing operation (endpoint flow
    /// contention and participant count), driving the TCP congestion,
    /// jitter and tiny-message models.
    pub fn send(&mut self, dst: usize, tag: u64, data: Vec<f64>, class: MsgClass, shape: OpShape) {
        assert!(dst < self.size(), "invalid destination {dst}");
        assert_ne!(dst, self.rank, "self-send not supported");
        let cfg = &self.shared.config;
        let bytes = match class {
            MsgClass::Payload => (data.len() * 8).max(1),
            MsgClass::Control => 1,
        };
        let ctx = TransferCtx {
            shape,
            src_ranks_per_node: cfg.ranks_on_node_of(self.rank),
            dst_ranks_per_node: cfg.ranks_on_node_of(dst),
            same_node: cfg.node_of(self.rank) == cfg.node_of(dst),
        };
        let counter = {
            let c = &mut self.counters[dst];
            let v = *c;
            *c += 1;
            v
        };
        let mut rng = SplitMix64::for_message(cfg.seed, self.rank, dst, counter);
        let t = self.shared.net.transfer(bytes, &ctx, &mut rng);

        // Sender overhead is CPU time on the sending rank.
        self.clock += t.send_overhead;
        match class {
            MsgClass::Payload => self.stats.bucket_mut(self.phase).comm += t.send_overhead,
            MsgClass::Control => self.stats.bucket_mut(self.phase).sync += t.send_overhead,
        }
        let departure = self.clock;
        let arrival = departure + t.wire;
        self.stats.msgs_sent += 1;
        if class == MsgClass::Payload {
            self.stats.bytes_sent += bytes as u64;
        }

        if cfg.record_trace {
            self.stats.trace.push(crate::trace::TraceEvent::new(
                self.rank, dst, bytes, class, departure, arrival,
            ));
        }
        let msg = Msg {
            src: self.rank,
            tag,
            data,
            bytes,
            class,
            departure,
            arrival,
        };
        let mb = &self.shared.mailboxes[dst];
        mb.queue.lock().push_back(msg);
        mb.cv.notify_all();
    }

    /// Blocking receive of the next message from `src` with `tag`
    /// (FIFO per channel). Advances the virtual clock to the completion
    /// time and books the elapsed time by message class.
    pub fn recv(&mut self, src: usize, tag: u64) -> Msg {
        assert!(src < self.size(), "invalid source {src}");
        assert_ne!(src, self.rank, "self-receive not supported");
        let msg = {
            let mb = &self.shared.mailboxes[self.rank];
            let mut q = mb.queue.lock();
            loop {
                if let Some(pos) = q.iter().position(|m| m.src == src && m.tag == tag) {
                    break q.remove(pos).expect("position valid");
                }
                mb.cv.wait(&mut q);
            }
        };

        let net = &self.shared.net;
        let completion = self.clock.max(msg.arrival) + net.recv_overhead;
        let elapsed = completion - self.clock;
        self.clock = completion;
        match msg.class {
            MsgClass::Payload => {
                self.stats.bucket_mut(self.phase).comm += elapsed;
                let wire = (msg.arrival - msg.departure).max(1e-12);
                self.stats.throughput.push(ThroughputSample {
                    node: self.shared.config.node_of(self.rank),
                    bytes: msg.bytes,
                    rate: msg.bytes as f64 / wire,
                });
            }
            MsgClass::Control => self.stats.bucket_mut(self.phase).sync += elapsed,
        }
        msg
    }

    /// Non-blocking probe: is a message from `src` with `tag` already
    /// queued? (Does not advance time.)
    pub fn probe(&self, src: usize, tag: u64) -> bool {
        let mb = &self.shared.mailboxes[self.rank];
        mb.queue.lock().iter().any(|m| m.src == src && m.tag == tag)
    }
}

/// Result of one rank's execution.
#[derive(Debug, Clone)]
pub struct RankOutcome<T> {
    /// Rank id.
    pub rank: usize,
    /// Value returned by the rank body.
    pub result: T,
    /// Timing statistics.
    pub stats: RankStats,
    /// Final virtual clock (the rank's elapsed virtual time).
    pub finish_time: f64,
}

/// Runs `body` on every rank of the configured virtual cluster and
/// returns the outcomes ordered by rank.
///
/// The body executes on real threads with real shared-nothing message
/// passing; virtual time is deterministic for a fixed configuration.
pub fn run_cluster<T, F>(config: ClusterConfig, body: F) -> Vec<RankOutcome<T>>
where
    T: Send,
    F: Fn(&mut RankCtx) -> T + Sync,
{
    config.validate().expect("valid cluster configuration");
    let shared = Arc::new(Shared {
        config,
        net: config.network.params(),
        mailboxes: (0..config.ranks)
            .map(|_| Mailbox {
                queue: Mutex::new(VecDeque::new()),
                cv: Condvar::new(),
            })
            .collect(),
    });

    let mut outcomes: Vec<Option<RankOutcome<T>>> = (0..config.ranks).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(config.ranks);
        for rank in 0..config.ranks {
            let shared = Arc::clone(&shared);
            let body = &body;
            handles.push(scope.spawn(move || {
                let mut ctx = RankCtx {
                    rank,
                    shared,
                    clock: 0.0,
                    phase: Phase::Other,
                    counters: vec![0; config.ranks],
                    stats: RankStats::default(),
                };
                let result = body(&mut ctx);
                RankOutcome {
                    rank,
                    result,
                    stats: ctx.stats,
                    finish_time: ctx.clock,
                }
            }));
        }
        for (rank, h) in handles.into_iter().enumerate() {
            outcomes[rank] = Some(h.join().expect("rank thread panicked"));
        }
    });
    outcomes
        .into_iter()
        .map(|o| o.expect("all ranks joined"))
        .collect()
}

/// Wall-clock time of a run: the maximum finish time over ranks.
pub fn elapsed_time<T>(outcomes: &[RankOutcome<T>]) -> f64 {
    outcomes.iter().map(|o| o.finish_time).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netmodel::NetworkKind;

    #[test]
    fn single_rank_compute_only() {
        let cfg = ClusterConfig::uni(1, NetworkKind::TcpGigE);
        let out = run_cluster(cfg, |ctx| {
            ctx.set_phase(Phase::Classic);
            ctx.charge_compute(0.5);
            ctx.now()
        });
        assert_eq!(out.len(), 1);
        assert!((out[0].finish_time - 0.5).abs() < 1e-12);
        assert!((out[0].stats.bucket(Phase::Classic).comp - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ping_pong_advances_both_clocks() {
        let cfg = ClusterConfig::uni(2, NetworkKind::MyrinetGm);
        let out = run_cluster(cfg, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 1, vec![1.0, 2.0], MsgClass::Payload, OpShape::new(1, 1));
                let m = ctx.recv(1, 2);
                assert_eq!(m.data, vec![3.0]);
            } else {
                let m = ctx.recv(0, 1);
                assert_eq!(m.data, vec![1.0, 2.0]);
                ctx.send(0, 2, vec![3.0], MsgClass::Payload, OpShape::new(1, 1));
            }
            ctx.now()
        });
        // Round trip took at least two latencies.
        let lat = NetworkKind::MyrinetGm.params().latency;
        assert!(out[0].finish_time > 2.0 * lat * 0.5);
        assert!(out[1].finish_time > lat * 0.5);
        // Receiver recorded a throughput sample.
        assert_eq!(out[1].stats.throughput.len(), 1);
        assert_eq!(out[0].stats.throughput.len(), 1);
    }

    #[test]
    fn virtual_time_is_deterministic_across_runs() {
        let cfg = ClusterConfig::uni(4, NetworkKind::TcpGigE);
        let run = || {
            run_cluster(cfg, |ctx| {
                let p = ctx.size();
                ctx.set_phase(Phase::Pme);
                ctx.charge_compute(0.001 * (ctx.rank() + 1) as f64);
                // All-to-all-ish exchange.
                for other in 0..p {
                    if other == ctx.rank() {
                        continue;
                    }
                    ctx.send(
                        other,
                        7,
                        vec![ctx.rank() as f64; 1000],
                        MsgClass::Payload,
                        OpShape::new(p - 1, p),
                    );
                }
                for other in 0..p {
                    if other == ctx.rank() {
                        continue;
                    }
                    ctx.recv(other, 7);
                }
                ctx.now()
            })
        };
        let a = run();
        let b = run();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.finish_time, y.finish_time, "rank {}", x.rank);
            assert_eq!(x.stats.total().comm, y.stats.total().comm);
        }
    }

    #[test]
    fn seed_changes_jitter() {
        let mut cfg = ClusterConfig::uni(2, NetworkKind::TcpGigE);
        let run = |cfg: ClusterConfig| {
            run_cluster(cfg, |ctx| {
                if ctx.rank() == 0 {
                    ctx.send(
                        1,
                        1,
                        vec![0.0; 50_000],
                        MsgClass::Payload,
                        OpShape::new(1, 1),
                    );
                } else {
                    ctx.recv(0, 1);
                }
                ctx.now()
            })[1]
                .finish_time
        };
        let t1 = run(cfg);
        cfg.seed = 999;
        let t2 = run(cfg);
        assert_ne!(t1, t2);
    }

    #[test]
    fn control_messages_book_sync_time() {
        let cfg = ClusterConfig::uni(2, NetworkKind::TcpGigE);
        let out = run_cluster(cfg, |ctx| {
            ctx.set_phase(Phase::Classic);
            if ctx.rank() == 0 {
                ctx.send(1, 1, Vec::new(), MsgClass::Control, OpShape::new(1, 1));
            } else {
                ctx.recv(0, 1);
            }
        });
        let receiver = &out[1].stats;
        assert!(receiver.bucket(Phase::Classic).sync > 0.0);
        assert_eq!(receiver.bucket(Phase::Classic).comm, 0.0);
        assert!(
            receiver.throughput.is_empty(),
            "control messages are not throughput samples"
        );
    }

    #[test]
    fn fifo_order_per_channel() {
        let cfg = ClusterConfig::uni(2, NetworkKind::ScoreGigE);
        let out = run_cluster(cfg, |ctx| {
            if ctx.rank() == 0 {
                for i in 0..10 {
                    ctx.send(1, 42, vec![i as f64], MsgClass::Payload, OpShape::new(1, 1));
                }
                Vec::new()
            } else {
                (0..10)
                    .map(|_| ctx.recv(0, 42).data[0])
                    .collect::<Vec<f64>>()
            }
        });
        assert_eq!(
            out[1].result,
            (0..10).map(|i| i as f64).collect::<Vec<f64>>()
        );
    }

    #[test]
    fn receiver_waits_for_late_sender() {
        let cfg = ClusterConfig::uni(2, NetworkKind::MyrinetGm);
        let out = run_cluster(cfg, |ctx| {
            if ctx.rank() == 0 {
                ctx.charge_compute(1.0); // sender is busy for 1 s
                ctx.send(1, 1, vec![1.0], MsgClass::Payload, OpShape::new(1, 1));
            } else {
                ctx.recv(0, 1); // receiver posts immediately
            }
            ctx.now()
        });
        // Receiver's clock must include the 1 s wait.
        assert!(out[1].finish_time > 1.0);
        assert!(out[1].stats.total().comm > 1.0);
    }

    #[test]
    fn trace_recording_captures_messages() {
        let mut cfg = ClusterConfig::uni(2, NetworkKind::ScoreGigE);
        cfg.record_trace = true;
        let out = run_cluster(cfg, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 1, vec![1.0; 100], MsgClass::Payload, OpShape::p2p());
                ctx.send(1, 2, Vec::new(), MsgClass::Control, OpShape::p2p());
            } else {
                ctx.recv(0, 1);
                ctx.recv(0, 2);
            }
        });
        let trace = &out[0].stats.trace;
        assert_eq!(trace.len(), 2);
        assert!(trace[0].payload);
        assert!(!trace[1].payload);
        assert!(trace[0].arrival > trace[0].departure);
        assert_eq!(trace[0].bytes, 800);
        // Disabled by default.
        let cfg2 = ClusterConfig::uni(2, NetworkKind::ScoreGigE);
        let out2 = run_cluster(cfg2, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 1, vec![1.0], MsgClass::Payload, OpShape::p2p());
            } else {
                ctx.recv(0, 1);
            }
        });
        assert!(out2[0].stats.trace.is_empty());
    }

    #[test]
    fn probe_does_not_advance_time() {
        let cfg = ClusterConfig::uni(2, NetworkKind::ScoreGigE);
        let out = run_cluster(cfg, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 5, vec![1.0], MsgClass::Payload, OpShape::new(1, 1));
                0.0
            } else {
                // Spin (real time) until the message is queued; virtual
                // clock must not move.
                while !ctx.probe(0, 5) {
                    std::thread::yield_now();
                }
                let before = ctx.now();
                assert_eq!(before, 0.0);
                ctx.recv(0, 5);
                ctx.now()
            }
        });
        assert!(out[1].result > 0.0);
    }
}
