//! The virtual-time execution engine.
//!
//! Ranks run as real OS threads executing the *real* parallel algorithm
//! with real data exchange; only time is virtual. Each rank owns a
//! virtual clock:
//!
//! * computation advances the clock by modeled cost (from operation
//!   counts and the [`crate::cost::CostModel`]),
//! * a message's arrival time is computed **at send time** from the
//!   network model and a per-channel deterministic RNG, so results are
//!   bit-identical regardless of OS scheduling,
//! * a blocking receive completes at `max(local clock, arrival)` plus
//!   the receive overhead; the elapsed virtual time is booked as
//!   communication (payload) or synchronization (control), matching the
//!   paper's time classification.
//!
//! Fault injection (see [`crate::faults`]) preserves all of the above:
//! lost messages are re-costed through the retransmission model *at
//! send time*, a given-up message is delivered as a tombstone (so the
//! receiver unblocks deterministically and gets a typed
//! [`CommError::Timeout`]), and a crashing rank enqueues crash notices
//! into every mailbox before unwinding, so any later receive from it
//! surfaces [`CommError::PeerDead`] instead of blocking forever.

use crate::cluster::ClusterConfig;
use crate::faults::{FaultPlan, LinkFault};
use crate::netmodel::{NetworkParams, OpShape, TransferCtx};
use crate::rng::SplitMix64;
use crate::stats::{MsgClass, Phase, RankStats, ThroughputSample};
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::Arc;

/// Reserved tag carried by crash notices. User code must not send with
/// this tag.
pub const CRASH_TAG: u64 = u64::MAX;

/// A message in flight (or delivered).
#[derive(Debug, Clone)]
pub struct Msg {
    /// Sending rank.
    pub src: usize,
    /// User tag.
    pub tag: u64,
    /// Payload (possibly empty for control messages).
    pub data: Vec<f64>,
    /// Modeled size in bytes (may exceed `data` size, e.g. headers).
    pub bytes: usize,
    /// Classification for the comm/sync split.
    pub class: MsgClass,
    /// Virtual time the message left the sender.
    pub departure: f64,
    /// Virtual time the message reaches the receiver (for a tombstone:
    /// the time the sending transport gave up).
    pub arrival: f64,
    /// True for a tombstone: the transport gave up retransmitting and
    /// the payload never arrives. Only
    /// [`recv_result`](RankCtx::recv_result) consumes tombstones.
    pub lost: bool,
}

/// Typed communication failure surfaced by the fault-aware receive
/// paths instead of blocking forever.
#[derive(Debug, Clone, PartialEq)]
pub enum CommError {
    /// The peer's transport gave up delivering the awaited message (or
    /// the receive-side watchdog fired on a lost message).
    Timeout {
        /// The peer rank the message was expected from.
        peer: usize,
        /// The awaited tag.
        tag: u64,
        /// Virtual time the error surfaced on the receiver.
        at: f64,
    },
    /// The peer rank crashed and will never send again.
    PeerDead {
        /// The crashed rank.
        peer: usize,
        /// Virtual time the error surfaced on the receiver.
        at: f64,
    },
    /// A collective was invoked inconsistently (programming error),
    /// named after the offending rank.
    Protocol {
        /// The rank that broke the protocol.
        rank: usize,
        /// What went wrong.
        what: String,
    },
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::Timeout { peer, tag, at } => {
                write!(
                    f,
                    "timeout waiting for rank {peer} (tag {tag:#x}) at t={at:.6}s"
                )
            }
            CommError::PeerDead { peer, at } => {
                write!(f, "rank {peer} is dead (detected at t={at:.6}s)")
            }
            CommError::Protocol { rank, what } => {
                write!(f, "protocol error on rank {rank}: {what}")
            }
        }
    }
}

impl std::error::Error for CommError {}

/// Typed simulation-level failure from the cluster entry points.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The cluster configuration failed validation.
    InvalidConfig(String),
    /// The fault plan failed validation against the configuration.
    InvalidFaultPlan(String),
    /// A rank body panicked (a genuine bug, not a simulated crash).
    RankPanicked {
        /// The rank whose body panicked.
        rank: usize,
        /// The panic payload, when it was a string.
        message: String,
    },
    /// A blocked receive made no progress for the configured
    /// [`stall_timeout`](ClusterConfig::stall_timeout) of *real* time:
    /// the awaited peers never arrived (e.g. a collective entered with
    /// inconsistent membership, or an infallible receive on a message
    /// the transport gave up on). This is the termination oracle's
    /// evidence that a run would otherwise hang forever.
    Stalled {
        /// The rank whose receive stalled.
        rank: usize,
        /// High bits (`tag >> 8`) of the awaited tag; for `cpc-mpi`
        /// collectives this is the collective epoch, so it locates the
        /// stuck operation.
        step: u64,
        /// Real seconds the receive waited before giving up.
        waited: f64,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::InvalidConfig(why) => write!(f, "invalid cluster configuration: {why}"),
            SimError::InvalidFaultPlan(why) => write!(f, "invalid fault plan: {why}"),
            SimError::RankPanicked { rank, message } => {
                write!(f, "rank {rank} panicked: {message}")
            }
            SimError::Stalled { rank, step, waited } => {
                write!(
                    f,
                    "rank {rank} stalled in epoch {step} after {waited:.1}s of real time"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Outcome of a send on the modeled transport.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SendOutcome {
    /// False when the transport gave up and delivered a tombstone.
    pub delivered: bool,
    /// Retransmission rounds the transfer went through.
    pub retransmits: u32,
    /// Modeled wire time of the transfer (arrival minus departure),
    /// seconds — the sender-side RTT sample for adaptive
    /// retransmission timers.
    pub wire: f64,
}

/// Unwind payload of a simulated crash (distinguished from genuine
/// panics by `catch_unwind` downcasting).
struct CrashUnwind {
    #[allow(dead_code)]
    rank: usize,
}

/// Unwind payload of a stalled receive (see [`SimError::Stalled`]).
struct StallUnwind {
    rank: usize,
    step: u64,
    waited: f64,
}

/// Unwinds the calling rank because a blocked receive exceeded the
/// configured real-time stall budget. Uses `resume_unwind` so the
/// panic hook stays silent: a stall is a diagnosed outcome, not a bug
/// in the harness.
fn stall_unwind(rank: usize, tag: u64, waited: f64) -> ! {
    std::panic::resume_unwind(Box::new(StallUnwind {
        rank,
        step: tag >> 8,
        waited,
    }));
}

struct Mailbox {
    queue: Mutex<VecDeque<Msg>>,
    cv: Condvar,
}

struct Shared {
    config: ClusterConfig,
    net: NetworkParams,
    plan: FaultPlan,
    /// Per-rank scheduled crash time, if any.
    crash_at: Vec<Option<f64>>,
    mailboxes: Vec<Mailbox>,
}

/// Per-rank execution context handed to the rank body.
pub struct RankCtx {
    rank: usize,
    shared: Arc<Shared>,
    clock: f64,
    phase: Phase,
    /// Per-destination message counters (seed the jitter RNG).
    counters: Vec<u64>,
    /// Collected statistics.
    pub stats: RankStats,
}

impl RankCtx {
    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total number of ranks.
    pub fn size(&self) -> usize {
        self.shared.config.ranks
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.shared.config
    }

    /// The network parameters of this cluster.
    pub fn net(&self) -> &NetworkParams {
        &self.shared.net
    }

    /// The fault plan of this run ([`FaultPlan::none`] for the plain
    /// entry points).
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.shared.plan
    }

    /// Current virtual time in seconds.
    pub fn now(&self) -> f64 {
        self.clock
    }

    /// Sets the phase subsequent time is charged to.
    pub fn set_phase(&mut self, phase: Phase) {
        self.phase = phase;
    }

    /// Current phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Charges `seconds` of computation (expressed at the calibration
    /// clock; node clock scaling, SMP memory contention, and straggler
    /// slowdown are applied here). Straggler windows are judged at the
    /// clock value when the charge begins, mirroring how link
    /// degradations are judged at message departure.
    pub fn charge_compute(&mut self, seconds: f64) {
        debug_assert!(seconds >= 0.0);
        let straggle = if self.shared.plan.stragglers.is_empty() {
            1.0
        } else {
            self.shared
                .plan
                .straggle_factor_at(self.shared.config.node_of(self.rank), self.clock)
        };
        let t = seconds * self.shared.config.compute_scale(self.rank) * straggle;
        self.clock += t;
        self.stats.bucket_mut(self.phase).book_comp(t);
    }

    /// Advances the clock by a pure waiting period (timer/backoff
    /// sleep), booked as synchronization. Straggler slowdown does not
    /// apply: timers tick in wall time.
    pub fn charge_wait(&mut self, seconds: f64) {
        self.clock += seconds;
        self.stats.bucket_mut(self.phase).book_sync(seconds);
    }

    /// If this rank is scheduled to crash and its clock has reached the
    /// crash time, deliver crash notices to every peer and unwind.
    ///
    /// Fault-tolerant drivers call this at safe points (step/epoch
    /// boundaries) so a rank never dies mid-collective. The unwind is
    /// caught by [`run_cluster_faulty`] and reported as a crashed
    /// outcome, not a panic.
    pub fn poll_crash(&mut self) {
        if let Some(t) = self.shared.crash_at[self.rank] {
            if self.clock >= t {
                self.crash_now();
            }
        }
    }

    fn crash_now(&mut self) -> ! {
        for dst in 0..self.size() {
            if dst == self.rank {
                continue;
            }
            let mb = &self.shared.mailboxes[dst];
            mb.queue.lock().push_back(Msg {
                src: self.rank,
                tag: CRASH_TAG,
                data: Vec::new(),
                bytes: 0,
                class: MsgClass::Control,
                departure: self.clock,
                arrival: self.clock,
                lost: false,
            });
            mb.cv.notify_all();
        }
        // resume_unwind skips the panic hook: a simulated crash is not
        // a bug and must not spam stderr with backtraces.
        std::panic::resume_unwind(Box::new(CrashUnwind { rank: self.rank }));
    }

    /// Sends a message. Eager/buffered semantics: the sender only pays
    /// its CPU overhead; the wire time determines the arrival stamp.
    ///
    /// `shape` describes the enclosing operation (endpoint flow
    /// contention and participant count), driving the TCP congestion,
    /// jitter and tiny-message models. Under a lossy [`FaultPlan`] the
    /// transfer is re-costed through the retransmission model; when the
    /// transport gives up, a tombstone is enqueued instead (the
    /// receiver surfaces it as [`CommError::Timeout`] via
    /// [`recv_result`](Self::recv_result)).
    pub fn send(
        &mut self,
        dst: usize,
        tag: u64,
        data: Vec<f64>,
        class: MsgClass,
        shape: OpShape,
    ) -> SendOutcome {
        assert!(dst < self.size(), "invalid destination {dst}");
        assert_ne!(dst, self.rank, "self-send not supported");
        debug_assert_ne!(tag, CRASH_TAG, "CRASH_TAG is reserved");
        let cfg = &self.shared.config;
        let bytes = match class {
            MsgClass::Payload => (data.len() * 8).max(1),
            MsgClass::Control => 1,
        };
        let ctx = TransferCtx {
            shape,
            src_ranks_per_node: cfg.ranks_on_node_of(self.rank),
            dst_ranks_per_node: cfg.ranks_on_node_of(dst),
            same_node: cfg.node_of(self.rank) == cfg.node_of(dst),
        };
        let counter = {
            let c = &mut self.counters[dst];
            let v = *c;
            *c += 1;
            v
        };
        let mut rng = SplitMix64::for_message(cfg.seed, self.rank, dst, counter);
        let mut fault = if self.shared.plan.is_zero() {
            LinkFault::clean()
        } else {
            self.shared
                .plan
                .link_fault(self.rank, dst, self.clock, ctx.same_node)
        };
        if class == MsgClass::Control {
            // Control traffic (barrier hops, heartbeats) rides a
            // reliable channel: it may stall, it never disappears.
            // This keeps failure detection consistent across ranks.
            fault.give_up = false;
        }
        let t = self
            .shared
            .net
            .transfer_faulty(bytes, &ctx, &mut rng, &fault);

        // Sender overhead is CPU time on the sending rank.
        self.clock += t.time.send_overhead;
        match class {
            MsgClass::Payload => self
                .stats
                .bucket_mut(self.phase)
                .book_comm(t.time.send_overhead),
            MsgClass::Control => self
                .stats
                .bucket_mut(self.phase)
                .book_sync(t.time.send_overhead),
        }
        let departure = self.clock;
        let arrival = departure + t.time.wire;
        self.stats.msgs_sent += 1;
        self.stats.retransmits += t.retransmits as u64;
        if !t.delivered {
            self.stats.msgs_lost += 1;
        }
        if class == MsgClass::Payload {
            self.stats.bytes_sent += bytes as u64;
        }

        if cfg.record_trace {
            self.stats.trace.push(crate::trace::TraceEvent::new(
                self.rank, dst, bytes, class, departure, arrival,
            ));
        }
        let msg = Msg {
            src: self.rank,
            tag,
            data,
            bytes,
            class,
            departure,
            arrival,
            lost: !t.delivered,
        };
        let mb = &self.shared.mailboxes[dst];
        mb.queue.lock().push_back(msg);
        mb.cv.notify_all();
        SendOutcome {
            delivered: t.delivered,
            retransmits: t.retransmits,
            wire: t.time.wire,
        }
    }

    /// Blocking receive of the next message from `src` with `tag`
    /// (FIFO per channel). Advances the virtual clock to the completion
    /// time and books the elapsed time by message class.
    ///
    /// This path is infallible and ignores tombstones and crash
    /// notices; fault-aware code must use
    /// [`recv_result`](Self::recv_result) instead, or it will block
    /// forever on a lost message or dead peer.
    pub fn recv(&mut self, src: usize, tag: u64) -> Msg {
        assert!(src < self.size(), "invalid source {src}");
        assert_ne!(src, self.rank, "self-receive not supported");
        let msg = {
            // Real-time stall watchdog: measures *wall* time only, so
            // virtual results stay deterministic (a run either
            // completes with bit-identical state or stalls).
            let stall_limit = std::time::Duration::from_secs_f64(self.shared.config.stall_timeout);
            let started = std::time::Instant::now();
            let mb = &self.shared.mailboxes[self.rank];
            let mut q = mb.queue.lock();
            loop {
                if let Some(pos) = q
                    .iter()
                    .position(|m| m.src == src && m.tag == tag && !m.lost)
                {
                    break q.remove(pos).expect("position valid");
                }
                let waited = started.elapsed();
                if waited >= stall_limit {
                    stall_unwind(self.rank, tag, waited.as_secs_f64());
                }
                mb.cv.wait_for(&mut q, stall_limit - waited);
            }
        };
        self.complete_recv(msg)
    }

    /// Fault-aware blocking receive: like [`recv`](Self::recv), but a
    /// tombstone (the sender's transport gave up) surfaces as
    /// [`CommError::Timeout`] and a crashed peer surfaces as
    /// [`CommError::PeerDead`], after the receiver's watchdog period.
    pub fn recv_result(&mut self, src: usize, tag: u64) -> Result<Msg, CommError> {
        assert!(src < self.size(), "invalid source {src}");
        assert_ne!(src, self.rank, "self-receive not supported");
        enum Got {
            Delivered(Msg),
            Tombstone(Msg),
            Dead(f64),
        }
        let got = {
            let stall_limit = std::time::Duration::from_secs_f64(self.shared.config.stall_timeout);
            let started = std::time::Instant::now();
            let mb = &self.shared.mailboxes[self.rank];
            let mut q = mb.queue.lock();
            loop {
                // FIFO per channel: take the first matching message,
                // delivered or tombstone, in arrival order.
                if let Some(pos) = q.iter().position(|m| m.src == src && m.tag == tag) {
                    let m = q.remove(pos).expect("position valid");
                    break if m.lost {
                        Got::Tombstone(m)
                    } else {
                        Got::Delivered(m)
                    };
                }
                // No matching message: a crash notice from the peer
                // means none will ever come. The notice is *not*
                // consumed — every later receive must see it too.
                if let Some(at) = q
                    .iter()
                    .find(|m| m.src == src && m.tag == CRASH_TAG)
                    .map(|m| m.arrival)
                {
                    break Got::Dead(at);
                }
                let waited = started.elapsed();
                if waited >= stall_limit {
                    stall_unwind(self.rank, tag, waited.as_secs_f64());
                }
                mb.cv.wait_for(&mut q, stall_limit - waited);
            }
        };
        let watchdog = self.shared.plan.watchdog_timeout;
        match got {
            Got::Delivered(msg) => Ok(self.complete_recv(msg)),
            Got::Tombstone(msg) => {
                // The receiver learns of the loss one watchdog period
                // after the point the message could last have arrived.
                let completion = self.clock.max(msg.arrival) + watchdog;
                let elapsed = completion - self.clock;
                self.clock = completion;
                self.stats.bucket_mut(self.phase).book_sync(elapsed);
                Err(CommError::Timeout {
                    peer: src,
                    tag,
                    at: completion,
                })
            }
            Got::Dead(at) => {
                let completion = self.clock.max(at) + watchdog;
                let elapsed = completion - self.clock;
                self.clock = completion;
                self.stats.bucket_mut(self.phase).book_sync(elapsed);
                Err(CommError::PeerDead {
                    peer: src,
                    at: completion,
                })
            }
        }
    }

    fn complete_recv(&mut self, msg: Msg) -> Msg {
        let net = &self.shared.net;
        let completion = self.clock.max(msg.arrival) + net.recv_overhead;
        let elapsed = completion - self.clock;
        self.clock = completion;
        match msg.class {
            MsgClass::Payload => {
                self.stats.bucket_mut(self.phase).book_comm(elapsed);
                let wire = (msg.arrival - msg.departure).max(1e-12);
                self.stats.throughput.push(ThroughputSample {
                    node: self.shared.config.node_of(self.rank),
                    bytes: msg.bytes,
                    rate: msg.bytes as f64 / wire,
                });
            }
            MsgClass::Control => self.stats.bucket_mut(self.phase).book_sync(elapsed),
        }
        msg
    }

    /// Non-blocking probe: is a (delivered) message from `src` with
    /// `tag` already queued? (Does not advance time.)
    pub fn probe(&self, src: usize, tag: u64) -> bool {
        let mb = &self.shared.mailboxes[self.rank];
        mb.queue
            .lock()
            .iter()
            .any(|m| m.src == src && m.tag == tag && !m.lost)
    }
}

/// Result of one rank's execution.
#[derive(Debug, Clone)]
pub struct RankOutcome<T> {
    /// Rank id.
    pub rank: usize,
    /// Value returned by the rank body.
    pub result: T,
    /// Timing statistics.
    pub stats: RankStats,
    /// Final virtual clock (the rank's elapsed virtual time).
    pub finish_time: f64,
}

/// Result of one rank's execution under fault injection.
#[derive(Debug, Clone)]
pub struct FaultyOutcome<T> {
    /// Rank id.
    pub rank: usize,
    /// Value returned by the rank body; `None` when the rank crashed.
    pub result: Option<T>,
    /// True when the rank died through a scheduled [`FaultPlan`] crash.
    pub crashed: bool,
    /// Timing statistics up to completion or crash.
    pub stats: RankStats,
    /// Final virtual clock (at completion or crash).
    pub finish_time: f64,
}

impl<T> FaultyOutcome<T> {
    /// True when the rank ran to completion.
    pub fn survived(&self) -> bool {
        !self.crashed
    }
}

/// Per-rank failure channel of the join loop: a stalled receive is a
/// diagnosed outcome, a panic is a bug. Kept separate so a genuine
/// panic is reported in preference to the stalls it causes on peers.
enum StallOrPanic {
    Stalled(StallUnwind),
    Panic(String),
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `body` on every rank of the configured virtual cluster and
/// returns the outcomes ordered by rank.
///
/// The body executes on real threads with real shared-nothing message
/// passing; virtual time is deterministic for a fixed configuration.
///
/// Panics on an invalid configuration or a panicking rank body (with
/// the typed [`SimError`] message naming the offending rank); use
/// [`try_run_cluster`] to handle those as values.
pub fn run_cluster<T, F>(config: ClusterConfig, body: F) -> Vec<RankOutcome<T>>
where
    T: Send,
    F: Fn(&mut RankCtx) -> T + Sync,
{
    match try_run_cluster(config, body) {
        Ok(outcomes) => outcomes,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible variant of [`run_cluster`]: configuration problems and
/// panicking rank bodies come back as typed [`SimError`]s naming the
/// offending rank instead of panics.
pub fn try_run_cluster<T, F>(
    config: ClusterConfig,
    body: F,
) -> Result<Vec<RankOutcome<T>>, SimError>
where
    T: Send,
    F: Fn(&mut RankCtx) -> T + Sync,
{
    let outcomes = run_cluster_faulty(config, FaultPlan::none(), body)?;
    Ok(outcomes
        .into_iter()
        .map(|o| RankOutcome {
            rank: o.rank,
            result: o.result.expect("no crashes under an empty fault plan"),
            stats: o.stats,
            finish_time: o.finish_time,
        })
        .collect())
}

/// Runs `body` on every rank under a [`FaultPlan`].
///
/// Ranks scheduled to crash unwind at their next
/// [`poll_crash`](RankCtx::poll_crash) point and are reported as
/// crashed outcomes (with the statistics collected up to the crash);
/// a *genuine* panic in the body is reported as
/// [`SimError::RankPanicked`] naming the rank.
///
/// With [`FaultPlan::none`] this is exactly [`run_cluster`]: same
/// random draws, bit-identical virtual times.
pub fn run_cluster_faulty<T, F>(
    config: ClusterConfig,
    plan: FaultPlan,
    body: F,
) -> Result<Vec<FaultyOutcome<T>>, SimError>
where
    T: Send,
    F: Fn(&mut RankCtx) -> T + Sync,
{
    config.validate().map_err(SimError::InvalidConfig)?;
    plan.validate(config.ranks, config.nodes())
        .map_err(SimError::InvalidFaultPlan)?;
    let crash_at = (0..config.ranks).map(|r| plan.crash_time(r)).collect();
    let shared = Arc::new(Shared {
        config,
        net: config.network.params(),
        plan,
        crash_at,
        mailboxes: (0..config.ranks)
            .map(|_| Mailbox {
                queue: Mutex::new(VecDeque::new()),
                cv: Condvar::new(),
            })
            .collect(),
    });

    let mut outcomes: Vec<Option<FaultyOutcome<T>>> = (0..config.ranks).map(|_| None).collect();
    let mut panic_error: Option<SimError> = None;
    let mut stall_error: Option<SimError> = None;
    // Per-rank stepping goes through the instrumented cpc-pool scope:
    // same structured concurrency as std::thread::scope, but spawns
    // are counted so harnesses can assert the parallel path ran.
    cpc_pool::scope(|scope| {
        let mut handles = Vec::with_capacity(config.ranks);
        for rank in 0..config.ranks {
            let shared = Arc::clone(&shared);
            let body = &body;
            handles.push(scope.spawn(move || {
                let mut ctx = RankCtx {
                    rank,
                    shared,
                    clock: 0.0,
                    phase: Phase::Other,
                    counters: vec![0; config.ranks],
                    stats: RankStats::default(),
                };
                let result =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut ctx)));
                match result {
                    Ok(value) => Ok(FaultyOutcome {
                        rank,
                        result: Some(value),
                        crashed: false,
                        stats: ctx.stats,
                        finish_time: ctx.clock,
                    }),
                    Err(payload) if payload.is::<CrashUnwind>() => Ok(FaultyOutcome {
                        rank,
                        result: None,
                        crashed: true,
                        stats: ctx.stats,
                        finish_time: ctx.clock,
                    }),
                    Err(payload) => match payload.downcast::<StallUnwind>() {
                        Ok(stall) => Err(StallOrPanic::Stalled(*stall)),
                        Err(payload) => Err(StallOrPanic::Panic(panic_message(payload.as_ref()))),
                    },
                }
            }));
        }
        for (rank, h) in handles.into_iter().enumerate() {
            match h.join() {
                Ok(Ok(outcome)) => outcomes[rank] = Some(outcome),
                Ok(Err(StallOrPanic::Stalled(s))) => {
                    stall_error.get_or_insert(SimError::Stalled {
                        rank: s.rank,
                        step: s.step,
                        waited: s.waited,
                    });
                }
                Ok(Err(StallOrPanic::Panic(message))) => {
                    panic_error.get_or_insert(SimError::RankPanicked { rank, message });
                }
                Err(payload) => {
                    panic_error.get_or_insert(SimError::RankPanicked {
                        rank,
                        message: panic_message(payload.as_ref()),
                    });
                }
            }
        }
    });
    // A genuine panic outranks the stalls it strands peers in.
    if let Some(e) = panic_error.or(stall_error) {
        return Err(e);
    }
    Ok(outcomes
        .into_iter()
        .map(|o| o.expect("all ranks joined"))
        .collect())
}

/// Wall-clock time of a run: the maximum finish time over ranks.
pub fn elapsed_time<T>(outcomes: &[RankOutcome<T>]) -> f64 {
    outcomes.iter().map(|o| o.finish_time).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netmodel::NetworkKind;

    #[test]
    fn single_rank_compute_only() {
        let cfg = ClusterConfig::uni(1, NetworkKind::TcpGigE);
        let out = run_cluster(cfg, |ctx| {
            ctx.set_phase(Phase::Classic);
            ctx.charge_compute(0.5);
            ctx.now()
        });
        assert_eq!(out.len(), 1);
        assert!((out[0].finish_time - 0.5).abs() < 1e-12);
        assert!((out[0].stats.bucket(Phase::Classic).comp - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ping_pong_advances_both_clocks() {
        let cfg = ClusterConfig::uni(2, NetworkKind::MyrinetGm);
        let out = run_cluster(cfg, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 1, vec![1.0, 2.0], MsgClass::Payload, OpShape::new(1, 1));
                let m = ctx.recv(1, 2);
                assert_eq!(m.data, vec![3.0]);
            } else {
                let m = ctx.recv(0, 1);
                assert_eq!(m.data, vec![1.0, 2.0]);
                ctx.send(0, 2, vec![3.0], MsgClass::Payload, OpShape::new(1, 1));
            }
            ctx.now()
        });
        // Round trip took at least two latencies.
        let lat = NetworkKind::MyrinetGm.params().latency;
        assert!(out[0].finish_time > 2.0 * lat * 0.5);
        assert!(out[1].finish_time > lat * 0.5);
        // Receiver recorded a throughput sample.
        assert_eq!(out[1].stats.throughput.len(), 1);
        assert_eq!(out[0].stats.throughput.len(), 1);
    }

    #[test]
    fn virtual_time_is_deterministic_across_runs() {
        let cfg = ClusterConfig::uni(4, NetworkKind::TcpGigE);
        let run = || {
            run_cluster(cfg, |ctx| {
                let p = ctx.size();
                ctx.set_phase(Phase::Pme);
                ctx.charge_compute(0.001 * (ctx.rank() + 1) as f64);
                // All-to-all-ish exchange.
                for other in 0..p {
                    if other == ctx.rank() {
                        continue;
                    }
                    ctx.send(
                        other,
                        7,
                        vec![ctx.rank() as f64; 1000],
                        MsgClass::Payload,
                        OpShape::new(p - 1, p),
                    );
                }
                for other in 0..p {
                    if other == ctx.rank() {
                        continue;
                    }
                    ctx.recv(other, 7);
                }
                ctx.now()
            })
        };
        let a = run();
        let b = run();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.finish_time, y.finish_time, "rank {}", x.rank);
            assert_eq!(x.stats.total().comm, y.stats.total().comm);
        }
    }

    #[test]
    fn zero_plan_faulty_run_is_bit_identical_to_run_cluster() {
        let cfg = ClusterConfig::uni(4, NetworkKind::TcpGigE);
        let workload = |ctx: &mut RankCtx| {
            let p = ctx.size();
            ctx.set_phase(Phase::Pme);
            ctx.charge_compute(0.001 * (ctx.rank() + 1) as f64);
            for other in 0..p {
                if other == ctx.rank() {
                    continue;
                }
                ctx.send(
                    other,
                    7,
                    vec![ctx.rank() as f64; 1000],
                    MsgClass::Payload,
                    OpShape::new(p - 1, p),
                );
            }
            for other in 0..p {
                if other == ctx.rank() {
                    continue;
                }
                ctx.recv(other, 7);
            }
            ctx.now()
        };
        let plain = run_cluster(cfg, workload);
        let faulty = run_cluster_faulty(cfg, FaultPlan::none(), workload).unwrap();
        for (a, b) in plain.iter().zip(&faulty) {
            assert!(b.survived());
            assert_eq!(a.finish_time.to_bits(), b.finish_time.to_bits());
            assert_eq!(a.stats.total(), b.stats.total());
            assert_eq!(b.stats.retransmits, 0);
            assert_eq!(b.stats.msgs_lost, 0);
        }
    }

    #[test]
    fn seed_changes_jitter() {
        let mut cfg = ClusterConfig::uni(2, NetworkKind::TcpGigE);
        let run = |cfg: ClusterConfig| {
            run_cluster(cfg, |ctx| {
                if ctx.rank() == 0 {
                    ctx.send(
                        1,
                        1,
                        vec![0.0; 50_000],
                        MsgClass::Payload,
                        OpShape::new(1, 1),
                    );
                } else {
                    ctx.recv(0, 1);
                }
                ctx.now()
            })[1]
                .finish_time
        };
        let t1 = run(cfg);
        cfg.seed = 999;
        let t2 = run(cfg);
        assert_ne!(t1, t2);
    }

    #[test]
    fn control_messages_book_sync_time() {
        let cfg = ClusterConfig::uni(2, NetworkKind::TcpGigE);
        let out = run_cluster(cfg, |ctx| {
            ctx.set_phase(Phase::Classic);
            if ctx.rank() == 0 {
                ctx.send(1, 1, Vec::new(), MsgClass::Control, OpShape::new(1, 1));
            } else {
                ctx.recv(0, 1);
            }
        });
        let receiver = &out[1].stats;
        assert!(receiver.bucket(Phase::Classic).sync > 0.0);
        assert_eq!(receiver.bucket(Phase::Classic).comm, 0.0);
        assert!(
            receiver.throughput.is_empty(),
            "control messages are not throughput samples"
        );
    }

    #[test]
    fn fifo_order_per_channel() {
        let cfg = ClusterConfig::uni(2, NetworkKind::ScoreGigE);
        let out = run_cluster(cfg, |ctx| {
            if ctx.rank() == 0 {
                for i in 0..10 {
                    ctx.send(1, 42, vec![i as f64], MsgClass::Payload, OpShape::new(1, 1));
                }
                Vec::new()
            } else {
                (0..10)
                    .map(|_| ctx.recv(0, 42).data[0])
                    .collect::<Vec<f64>>()
            }
        });
        assert_eq!(
            out[1].result,
            (0..10).map(|i| i as f64).collect::<Vec<f64>>()
        );
    }

    #[test]
    fn receiver_waits_for_late_sender() {
        let cfg = ClusterConfig::uni(2, NetworkKind::MyrinetGm);
        let out = run_cluster(cfg, |ctx| {
            if ctx.rank() == 0 {
                ctx.charge_compute(1.0); // sender is busy for 1 s
                ctx.send(1, 1, vec![1.0], MsgClass::Payload, OpShape::new(1, 1));
            } else {
                ctx.recv(0, 1); // receiver posts immediately
            }
            ctx.now()
        });
        // Receiver's clock must include the 1 s wait.
        assert!(out[1].finish_time > 1.0);
        assert!(out[1].stats.total().comm > 1.0);
    }

    #[test]
    fn trace_recording_captures_messages() {
        let mut cfg = ClusterConfig::uni(2, NetworkKind::ScoreGigE);
        cfg.record_trace = true;
        let out = run_cluster(cfg, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 1, vec![1.0; 100], MsgClass::Payload, OpShape::p2p());
                ctx.send(1, 2, Vec::new(), MsgClass::Control, OpShape::p2p());
            } else {
                ctx.recv(0, 1);
                ctx.recv(0, 2);
            }
        });
        let trace = &out[0].stats.trace;
        assert_eq!(trace.len(), 2);
        assert!(trace[0].payload);
        assert!(!trace[1].payload);
        assert!(trace[0].arrival > trace[0].departure);
        assert_eq!(trace[0].bytes, 800);
        // Disabled by default.
        let cfg2 = ClusterConfig::uni(2, NetworkKind::ScoreGigE);
        let out2 = run_cluster(cfg2, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 1, vec![1.0], MsgClass::Payload, OpShape::p2p());
            } else {
                ctx.recv(0, 1);
            }
        });
        assert!(out2[0].stats.trace.is_empty());
    }

    #[test]
    fn probe_does_not_advance_time() {
        let cfg = ClusterConfig::uni(2, NetworkKind::ScoreGigE);
        let out = run_cluster(cfg, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 5, vec![1.0], MsgClass::Payload, OpShape::new(1, 1));
                0.0
            } else {
                // Spin (real time) until the message is queued; virtual
                // clock must not move.
                while !ctx.probe(0, 5) {
                    std::thread::yield_now();
                }
                let before = ctx.now();
                assert_eq!(before, 0.0);
                ctx.recv(0, 5);
                ctx.now()
            }
        });
        assert!(out[1].result > 0.0);
    }

    #[test]
    fn invalid_config_is_a_typed_error() {
        let cfg = ClusterConfig::uni(0, NetworkKind::TcpGigE);
        match try_run_cluster(cfg, |_ctx| ()) {
            Err(SimError::InvalidConfig(_)) => {}
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn invalid_fault_plan_is_a_typed_error() {
        let cfg = ClusterConfig::uni(2, NetworkKind::TcpGigE);
        let plan = FaultPlan::none().with_crash(7, 1.0);
        match run_cluster_faulty(cfg, plan, |_ctx| ()) {
            Err(SimError::InvalidFaultPlan(_)) => {}
            other => panic!("expected InvalidFaultPlan, got {other:?}"),
        }
    }

    #[test]
    fn rank_panic_is_a_typed_error_naming_the_rank() {
        let cfg = ClusterConfig::uni(2, NetworkKind::TcpGigE);
        let result = run_cluster_faulty(cfg, FaultPlan::none(), |ctx| {
            if ctx.rank() == 1 {
                panic!("deliberate test panic");
            }
        });
        match result {
            Err(SimError::RankPanicked { rank, message }) => {
                assert_eq!(rank, 1);
                assert!(message.contains("deliberate test panic"));
            }
            other => panic!("expected RankPanicked, got {other:?}"),
        }
    }

    #[test]
    fn stalled_receive_surfaces_typed_error() {
        let cfg = ClusterConfig::uni(2, NetworkKind::ScoreGigE).with_stall_timeout(0.2);
        // Nobody ever sends tag 9<<8: the real-time watchdog must fire
        // instead of hanging the test forever.
        let result = run_cluster_faulty(cfg, FaultPlan::none(), |ctx| {
            if ctx.rank() == 1 {
                let _ = ctx.recv(0, 9 << 8);
            }
        });
        match result {
            Err(SimError::Stalled { rank, step, waited }) => {
                assert_eq!(rank, 1);
                assert_eq!(step, 9);
                assert!(waited >= 0.2);
            }
            other => panic!("expected Stalled, got {other:?}"),
        }
    }

    #[test]
    fn straggler_slows_only_its_node() {
        let cfg = ClusterConfig::uni(2, NetworkKind::ScoreGigE);
        let plan = FaultPlan::none().with_straggler(1, 3.0);
        let out = run_cluster_faulty(cfg, plan, |ctx| {
            ctx.charge_compute(1.0);
            ctx.now()
        })
        .unwrap();
        let t0 = out[0].finish_time;
        let t1 = out[1].finish_time;
        assert!((t1 / t0 - 3.0).abs() < 1e-9, "{t0} vs {t1}");
    }

    #[test]
    fn transient_straggler_slows_only_inside_its_window() {
        let cfg = ClusterConfig::uni(1, NetworkKind::ScoreGigE);
        let plan = FaultPlan::none().with_straggler_window(0, 4.0, 0.5, 1.0);
        let out = run_cluster_faulty(cfg, plan, |ctx| {
            ctx.charge_compute(0.25); // judged at t=0.00: nominal
            ctx.charge_compute(0.25); // judged at t=0.25: nominal
            ctx.charge_compute(0.10); // judged at t=0.50: 4x -> 0.4
            ctx.charge_compute(0.05); // judged at t=0.90: 4x -> 0.2
            ctx.charge_compute(0.10); // judged at t=1.10: nominal again
            ctx.now()
        })
        .unwrap();
        assert!(
            (out[0].finish_time - 1.2).abs() < 1e-12,
            "{}",
            out[0].finish_time
        );
    }

    #[test]
    fn crash_surfaces_peer_dead_and_crashed_outcome() {
        let cfg = ClusterConfig::uni(2, NetworkKind::ScoreGigE);
        let plan = FaultPlan::none().with_crash(1, 0.5);
        let out = run_cluster_faulty(cfg, plan, |ctx| {
            ctx.charge_compute(1.0);
            ctx.poll_crash(); // rank 1 dies here (clock 1.0 >= 0.5)
            if ctx.rank() == 0 {
                match ctx.recv_result(1, 9) {
                    Err(CommError::PeerDead { peer, at }) => {
                        assert_eq!(peer, 1);
                        assert!(at >= 1.0);
                    }
                    other => panic!("expected PeerDead, got {other:?}"),
                }
            }
            ctx.now()
        })
        .unwrap();
        assert!(out[0].survived());
        assert!(out[1].crashed);
        assert!(out[1].result.is_none());
        assert!((out[1].finish_time - 1.0).abs() < 1e-12);
        // A second receive from the dead peer fails too (the notice is
        // not consumed).
        assert!(out[0].finish_time > 1.0);
    }

    #[test]
    fn lost_payload_surfaces_timeout() {
        let cfg = ClusterConfig::uni(2, NetworkKind::ScoreGigE);
        let plan = FaultPlan::none().with_loss(1.0).with_max_retransmits(2);
        let out = run_cluster_faulty(cfg, plan, |ctx| {
            if ctx.rank() == 0 {
                let s = ctx.send(1, 4, vec![1.0; 64], MsgClass::Payload, OpShape::p2p());
                assert!(!s.delivered);
                assert_eq!(s.retransmits, 2);
            } else {
                match ctx.recv_result(0, 4) {
                    Err(CommError::Timeout { peer, tag, .. }) => {
                        assert_eq!((peer, tag), (0, 4));
                    }
                    other => panic!("expected Timeout, got {other:?}"),
                }
            }
            ctx.now()
        })
        .unwrap();
        assert_eq!(out[0].stats.msgs_lost, 1);
        assert_eq!(out[0].stats.retransmits, 2);
        // The receiver booked the watchdog wait as synchronization.
        assert!(out[1].stats.total().sync > 0.0);
    }

    #[test]
    fn control_messages_survive_total_loss() {
        let cfg = ClusterConfig::uni(2, NetworkKind::ScoreGigE);
        let plan = FaultPlan::none().with_loss(1.0).with_max_retransmits(2);
        let out = run_cluster_faulty(cfg, plan, |ctx| {
            if ctx.rank() == 0 {
                let s = ctx.send(1, 4, Vec::new(), MsgClass::Control, OpShape::p2p());
                assert!(s.delivered, "control never gives up");
            } else {
                ctx.recv_result(0, 4).expect("control message arrives");
            }
            ctx.now()
        })
        .unwrap();
        assert_eq!(out[0].stats.msgs_lost, 0);
        assert!(out[0].stats.retransmits > 0);
    }

    #[test]
    fn faulty_runs_are_deterministic() {
        let cfg = ClusterConfig::uni(4, NetworkKind::TcpGigE);
        let plan = FaultPlan::none()
            .with_loss(0.2)
            .with_straggler(2, 2.0)
            .with_crash(3, 0.001);
        let run = || {
            run_cluster_faulty(cfg, plan.clone(), |ctx| {
                ctx.set_phase(Phase::Classic);
                ctx.charge_compute(0.002);
                ctx.poll_crash();
                let p = ctx.size();
                for other in 0..3usize {
                    if other == ctx.rank() {
                        continue;
                    }
                    ctx.send(
                        other,
                        11,
                        vec![0.5; 500],
                        MsgClass::Payload,
                        OpShape::new(1, p),
                    );
                }
                for other in 0..3usize {
                    if other == ctx.rank() {
                        continue;
                    }
                    let _ = ctx.recv_result(other, 11);
                }
                ctx.now()
            })
            .unwrap()
        };
        let a = run();
        let b = run();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.crashed, y.crashed, "rank {}", x.rank);
            assert_eq!(x.finish_time.to_bits(), y.finish_time.to_bits());
            assert_eq!(x.stats.retransmits, y.stats.retransmits);
            assert_eq!(x.stats.msgs_lost, y.stats.msgs_lost);
            assert_eq!(x.stats.total(), y.stats.total());
        }
        assert!(a[3].crashed);
    }
}
