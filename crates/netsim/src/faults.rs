//! Deterministic fault injection: lossy links, transient link
//! degradation, straggler nodes, and permanent rank crashes.
//!
//! A [`FaultPlan`] is pure data attached to a cluster run. All
//! randomness used to realize the plan comes from the existing
//! per-channel [`SplitMix64`](crate::SplitMix64) message streams, so a
//! given `(seed, FaultPlan)` pair replays bit-identically regardless of
//! OS thread scheduling. An all-zero plan ([`FaultPlan::none`])
//! consumes exactly the same random draws as a run without any fault
//! machinery, keeping the fault-free figures bit-identical.
//!
//! Semantics at a glance:
//!
//! * **Loss** applies to inter-node payload traffic. Lost packets are
//!   re-costed through the retransmission model of
//!   [`NetworkParams::transfer_faulty`](crate::NetworkParams::transfer_faulty)
//!   (RTO with exponential backoff above a delayed-ACK floor).
//! * **Degradations** are virtual-time windows during which a link (or
//!   every link) suffers extra loss and/or a wire-time multiplier.
//! * **Stragglers** scale the CPU time of every rank on a node.
//! * **Crashes** are fail-stop: the rank unwinds at its next
//!   [`poll_crash`](crate::RankCtx::poll_crash) point after the crash
//!   time and never communicates again.

use serde::{Deserialize, Serialize};

/// A transient degradation window on one link (or all links).
///
/// While `start <= t < end` (virtual seconds, judged at message
/// departure), matching transfers suffer `extra_loss` additional packet
/// loss and have their wire time multiplied by `wire_factor`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkDegradation {
    /// Window start, virtual seconds.
    pub start: f64,
    /// Window end, virtual seconds.
    pub end: f64,
    /// Additional packet-loss probability while the window is active.
    pub extra_loss: f64,
    /// Multiplier applied to the wire time while the window is active.
    pub wire_factor: f64,
    /// Source rank the window applies to (`None` = any source).
    pub src: Option<usize>,
    /// Destination rank the window applies to (`None` = any
    /// destination).
    pub dst: Option<usize>,
}

impl LinkDegradation {
    /// A degradation of every link during `[start, end)`.
    pub fn global(start: f64, end: f64, extra_loss: f64, wire_factor: f64) -> Self {
        LinkDegradation {
            start,
            end,
            extra_loss,
            wire_factor,
            src: None,
            dst: None,
        }
    }

    fn matches(&self, src: usize, dst: usize, t: f64) -> bool {
        t >= self.start
            && t < self.end
            && self.src.is_none_or(|s| s == src)
            && self.dst.is_none_or(|d| d == dst)
    }
}

/// A node whose CPUs run slower than nominal (e.g. thermal throttling
/// or background load) during a virtual-time window.
///
/// A *persistent* straggler covers the whole run (`start == 0`,
/// `end == f64::MAX`); a *transient* one covers `start <= t < end`
/// only, judged against the rank's virtual clock as compute time is
/// charged.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Straggler {
    /// Node index (see [`ClusterConfig::node_of`](crate::ClusterConfig::node_of)).
    pub node: usize,
    /// CPU-time multiplier (`>= 1.0`; `2.0` = half speed).
    pub slowdown: f64,
    /// Window start, virtual seconds.
    pub start: f64,
    /// Window end, virtual seconds (half-open; `f64::MAX` = forever).
    pub end: f64,
}

/// A permanent fail-stop crash of one rank at a virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RankCrash {
    /// The rank that crashes.
    pub rank: usize,
    /// Virtual time at (or after) which the rank crashes. The crash
    /// manifests at the rank's next `poll_crash` call with
    /// `clock >= at`.
    pub at: f64,
}

/// How a scheduled storage fault corrupts a durable checkpoint write.
///
/// Storage faults are deterministic — no RNG draw is consumed — so a
/// plan replays bit-identically and, because durable writes charge no
/// virtual time beyond the existing checkpoint cost, they can never
/// perturb the simulation's timing figures.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum StorageFaultKind {
    /// The write is torn: only the leading `keep_frac` of the file's
    /// bytes reach the disk (a crash between `write` and `fsync`).
    TornWrite {
        /// Fraction of the file retained, in `[0, 1)`.
        keep_frac: f64,
    },
    /// A single bit of the stored file flips (media corruption).
    BitFlip {
        /// Byte offset of the flip (taken modulo the file length).
        byte: usize,
        /// Bit index within the byte, `0..8`.
        bit: u8,
    },
    /// The file vanishes entirely (lost inode, deleted by an
    /// operator, wrong volume).
    Missing,
}

/// One scheduled corruption of a durable checkpoint write.
///
/// The fault fires on the first durable write that happens at virtual
/// time `>= at`; each fault fires exactly once, in `at` order.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StorageFault {
    /// Virtual time at (or after) which the next durable write is hit.
    pub at: f64,
    /// What happens to that write.
    pub kind: StorageFaultKind,
}

/// Which replicated MD array a silent-data-corruption event targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SdcTarget {
    /// The post-exchange position array.
    Positions,
    /// The freshly evaluated force array.
    Forces,
}

/// One silent bit flip in a replicated MD array (the cosmic-ray /
/// bad-DIMM fault model).
///
/// SDC events are triggered by *MD step index*, not virtual time:
/// per-rank virtual clocks differ, but the step counter is replicated,
/// so every rank applies the identical corruption and the replicated
/// state stays consistent — the fault is silent by construction, and
/// only the numerical watchdog (or an oracle diff against the golden
/// run) can expose it. Each event fires exactly once; a
/// watchdog-driven rollback does not re-fire it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SdcFault {
    /// 1-based MD step being computed when the flip lands. An event at
    /// step `s` corrupts the arrays produced while computing step `s`.
    pub step: u64,
    /// Which array is corrupted.
    pub target: SdcTarget,
    /// Atom index (taken modulo the system's atom count).
    pub atom: usize,
    /// Coordinate axis, `0..3` (x, y, z).
    pub axis: u8,
    /// Bit of the f64 to flip, `0..64` (0 = least-significant mantissa
    /// bit, 52..63 = exponent, 63 = sign).
    pub bit: u8,
}

/// Per-message fault parameters of one link at one instant, resolved
/// from a [`FaultPlan`] by the engine at send time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFault {
    /// Effective packet-loss probability in `[0, 1]`.
    pub loss: f64,
    /// Wire-time multiplier (`1.0` = nominal).
    pub wire_factor: f64,
    /// Retransmission rounds before the transport gives up. Ignored
    /// unless `give_up` is set; rounds are always capped at
    /// [`MAX_RETRANSMIT_ROUNDS`].
    pub max_retransmits: u32,
    /// Whether the transport may give up (drop the message) after
    /// `max_retransmits` rounds. When `false` the message always
    /// arrives, only later (reliable, TCP-like transport).
    pub give_up: bool,
}

/// Hard cap on retransmission rounds per message, so that a fully
/// opaque link (`loss == 1.0`) stalls for a bounded, deterministic
/// number of backoffs instead of looping forever.
pub const MAX_RETRANSMIT_ROUNDS: u32 = 64;

impl LinkFault {
    /// A fault-free link: the transfer model takes exactly the clean
    /// path and consumes exactly the clean number of random draws.
    pub fn clean() -> Self {
        LinkFault {
            loss: 0.0,
            wire_factor: 1.0,
            max_retransmits: 0,
            give_up: false,
        }
    }

    /// True when this fault cannot alter the transfer at all.
    pub fn is_clean(&self) -> bool {
        self.loss <= 0.0 && self.wire_factor == 1.0
    }
}

/// Default receiver-side watchdog timeout, seconds: how long a blocked
/// receive waits past the evidence of failure (a tombstone or crash
/// notice) before surfacing a typed error.
pub const DEFAULT_WATCHDOG_TIMEOUT: f64 = 0.25;

/// A deterministic fault-injection plan for one cluster run.
///
/// The default ([`FaultPlan::none`]) injects nothing and is guaranteed
/// not to perturb a single random draw of the fault-free simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Baseline packet-loss probability on every inter-node link.
    pub loss: f64,
    /// Transient degradation windows.
    pub degradations: Vec<LinkDegradation>,
    /// Straggler nodes.
    pub stragglers: Vec<Straggler>,
    /// Permanent rank crashes.
    pub crashes: Vec<RankCrash>,
    /// Scheduled corruptions of durable checkpoint writes. These
    /// exercise the checkpoint store's verify-and-fall-back path and
    /// never perturb simulation timing (see [`StorageFaultKind`]).
    pub storage: Vec<StorageFault>,
    /// Scheduled silent-data-corruption bit flips in the replicated MD
    /// arrays (see [`SdcFault`]). Applied by the MD driver, not the
    /// engine: they perturb physics, never timing or RNG draws.
    pub sdc: Vec<SdcFault>,
    /// Retransmission rounds before a *payload* message is dropped and
    /// replaced by a tombstone. `None` (the default) models a reliable
    /// TCP-like transport: payloads always arrive, arbitrarily late.
    /// Control messages never give up regardless of this setting.
    pub max_retransmits: Option<u32>,
    /// Receiver-side watchdog timeout, seconds (see
    /// [`DEFAULT_WATCHDOG_TIMEOUT`]).
    pub watchdog_timeout: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The empty plan: no loss, no degradation, no stragglers, no
    /// crashes. Bit-identical to running without fault machinery.
    pub fn none() -> Self {
        FaultPlan {
            loss: 0.0,
            degradations: Vec::new(),
            stragglers: Vec::new(),
            crashes: Vec::new(),
            storage: Vec::new(),
            sdc: Vec::new(),
            max_retransmits: None,
            watchdog_timeout: DEFAULT_WATCHDOG_TIMEOUT,
        }
    }

    /// Sets the baseline inter-node packet-loss probability.
    pub fn with_loss(mut self, loss: f64) -> Self {
        self.loss = loss;
        self
    }

    /// Adds a degradation window.
    pub fn with_degradation(mut self, d: LinkDegradation) -> Self {
        self.degradations.push(d);
        self
    }

    /// Marks `node` as a *persistent* straggler with the given CPU
    /// slowdown factor (slow from the first instruction to the last).
    pub fn with_straggler(mut self, node: usize, slowdown: f64) -> Self {
        self.stragglers.push(Straggler {
            node,
            slowdown,
            start: 0.0,
            end: f64::MAX,
        });
        self
    }

    /// Marks `node` as a *transient* straggler during `[start, end)`
    /// virtual seconds.
    pub fn with_straggler_window(
        mut self,
        node: usize,
        slowdown: f64,
        start: f64,
        end: f64,
    ) -> Self {
        self.stragglers.push(Straggler {
            node,
            slowdown,
            start,
            end,
        });
        self
    }

    /// Schedules a permanent crash of `rank` at virtual time `at`.
    pub fn with_crash(mut self, rank: usize, at: f64) -> Self {
        self.crashes.push(RankCrash { rank, at });
        self
    }

    /// Bounds payload retransmissions (see
    /// [`FaultPlan::max_retransmits`]).
    pub fn with_max_retransmits(mut self, rounds: u32) -> Self {
        self.max_retransmits = Some(rounds);
        self
    }

    /// Schedules a storage fault against the next durable checkpoint
    /// write at or after virtual time `at`.
    pub fn with_storage_fault(mut self, at: f64, kind: StorageFaultKind) -> Self {
        self.storage.push(StorageFault { at, kind });
        self
    }

    /// Schedules a silent-data-corruption bit flip (see [`SdcFault`]).
    pub fn with_sdc(mut self, fault: SdcFault) -> Self {
        self.sdc.push(fault);
        self
    }

    /// True when the plan cannot perturb the simulation's *timing* at
    /// all. Storage and SDC faults are deliberately excluded: they
    /// corrupt durable artifacts or replicated state on the side but
    /// never consume an RNG draw or charge virtual time, so timing
    /// stays bit-identical either way.
    pub fn is_zero(&self) -> bool {
        self.loss <= 0.0
            && self.degradations.is_empty()
            && self.stragglers.is_empty()
            && self.crashes.is_empty()
    }

    /// The storage-fault schedule sorted by trigger time (ties keep
    /// plan order), ready for one-shot consumption by a checkpoint
    /// store.
    pub fn storage_schedule(&self) -> Vec<StorageFault> {
        let mut schedule = self.storage.clone();
        schedule.sort_by(|a, b| a.at.total_cmp(&b.at));
        schedule
    }

    /// The SDC schedule sorted by step (ties keep plan order), ready
    /// for one-shot consumption by the MD driver.
    pub fn sdc_schedule(&self) -> Vec<SdcFault> {
        let mut schedule = self.sdc.clone();
        schedule.sort_by_key(|s| s.step);
        schedule
    }

    /// Validates the plan against a cluster of `ranks` ranks and
    /// `nodes` nodes.
    pub fn validate(&self, ranks: usize, nodes: usize) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.loss) {
            return Err(format!("loss probability {} outside [0, 1]", self.loss));
        }
        if !(self.watchdog_timeout.is_finite() && self.watchdog_timeout >= 0.0) {
            return Err(format!(
                "watchdog timeout {} must be finite and >= 0",
                self.watchdog_timeout
            ));
        }
        for d in &self.degradations {
            if !(d.start.is_finite() && d.end.is_finite() && d.start <= d.end) {
                return Err(format!(
                    "degradation window [{}, {}) is not a valid interval",
                    d.start, d.end
                ));
            }
            if !(0.0..=1.0).contains(&d.extra_loss) {
                return Err(format!("extra loss {} outside [0, 1]", d.extra_loss));
            }
            if !(d.wire_factor.is_finite() && d.wire_factor > 0.0) {
                return Err(format!(
                    "wire factor {} must be finite and > 0",
                    d.wire_factor
                ));
            }
            for r in [d.src, d.dst].into_iter().flatten() {
                if r >= ranks {
                    return Err(format!(
                        "degradation names rank {r} of a {ranks}-rank cluster"
                    ));
                }
            }
        }
        for s in &self.stragglers {
            if s.node >= nodes {
                return Err(format!(
                    "straggler names node {} of a {nodes}-node cluster",
                    s.node
                ));
            }
            if !(s.slowdown.is_finite() && s.slowdown >= 1.0) {
                return Err(format!("straggler slowdown {} must be >= 1", s.slowdown));
            }
            if !(s.start.is_finite() && s.end.is_finite() && 0.0 <= s.start && s.start <= s.end) {
                return Err(format!(
                    "straggler window [{}, {}) is not a valid interval",
                    s.start, s.end
                ));
            }
        }
        for c in &self.crashes {
            if c.rank >= ranks {
                return Err(format!(
                    "crash names rank {} of a {ranks}-rank cluster",
                    c.rank
                ));
            }
            if !(c.at.is_finite() && c.at >= 0.0) {
                return Err(format!("crash time {} must be finite and >= 0", c.at));
            }
        }
        for s in &self.storage {
            if !(s.at.is_finite() && s.at >= 0.0) {
                return Err(format!(
                    "storage fault time {} must be finite and >= 0",
                    s.at
                ));
            }
            match s.kind {
                StorageFaultKind::TornWrite { keep_frac } => {
                    if !(0.0..1.0).contains(&keep_frac) {
                        return Err(format!(
                            "torn-write keep fraction {keep_frac} outside [0, 1)"
                        ));
                    }
                }
                StorageFaultKind::BitFlip { bit, .. } => {
                    if bit >= 8 {
                        return Err(format!("bit-flip bit index {bit} outside 0..8"));
                    }
                }
                StorageFaultKind::Missing => {}
            }
        }
        for s in &self.sdc {
            if s.step == 0 {
                return Err("SDC step index is 1-based; step 0 is never computed".into());
            }
            if s.axis >= 3 {
                return Err(format!("SDC axis {} outside 0..3", s.axis));
            }
            if s.bit >= 64 {
                return Err(format!("SDC bit index {} outside 0..64", s.bit));
            }
        }
        Ok(())
    }

    /// Resolves the fault state of the `src -> dst` link at departure
    /// time `t`. Loss applies only to inter-node traffic; degradation
    /// wire factors apply everywhere.
    pub fn link_fault(&self, src: usize, dst: usize, t: f64, same_node: bool) -> LinkFault {
        let mut loss = if same_node { 0.0 } else { self.loss };
        let mut wire_factor = 1.0;
        for d in &self.degradations {
            if d.matches(src, dst, t) {
                if !same_node {
                    loss += d.extra_loss;
                }
                wire_factor *= d.wire_factor;
            }
        }
        let (max_retransmits, give_up) = match self.max_retransmits {
            Some(k) => (k.min(MAX_RETRANSMIT_ROUNDS), true),
            None => (MAX_RETRANSMIT_ROUNDS, false),
        };
        LinkFault {
            loss: loss.min(1.0),
            wire_factor,
            max_retransmits,
            give_up,
        }
    }

    /// Worst-case CPU slowdown factor of `node` over the whole run
    /// (`1.0` when never a straggler). Used for overhead budgeting;
    /// the engine charges the *instantaneous* factor via
    /// [`straggle_factor_at`](FaultPlan::straggle_factor_at).
    pub fn straggle_factor(&self, node: usize) -> f64 {
        self.stragglers
            .iter()
            .filter(|s| s.node == node)
            .map(|s| s.slowdown)
            .fold(1.0, f64::max)
    }

    /// CPU slowdown factor of `node` at virtual time `t` (`1.0` when no
    /// straggler window is active). Windows are half-open, like
    /// [`LinkDegradation`]: active while `start <= t < end`.
    pub fn straggle_factor_at(&self, node: usize, t: f64) -> f64 {
        self.stragglers
            .iter()
            .filter(|s| s.node == node && s.start <= t && t < s.end)
            .map(|s| s.slowdown)
            .fold(1.0, f64::max)
    }

    /// Earliest scheduled crash time of `rank`, if any.
    pub fn crash_time(&self, rank: usize) -> Option<f64> {
        self.crashes
            .iter()
            .filter(|c| c.rank == rank)
            .map(|c| c.at)
            .fold(None, |acc, t| Some(acc.map_or(t, |a: f64| a.min(t))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_zero_and_valid() {
        let p = FaultPlan::none();
        assert!(p.is_zero());
        assert!(p.validate(8, 8).is_ok());
        let f = p.link_fault(0, 1, 10.0, false);
        assert!(f.is_clean());
        assert_eq!(p.straggle_factor(3), 1.0);
        assert_eq!(p.crash_time(3), None);
    }

    #[test]
    fn loss_is_inter_node_only() {
        let p = FaultPlan::none().with_loss(0.2);
        assert_eq!(p.link_fault(0, 1, 0.0, false).loss, 0.2);
        assert_eq!(p.link_fault(0, 1, 0.0, true).loss, 0.0);
    }

    #[test]
    fn degradation_window_is_half_open_and_scoped() {
        let p = FaultPlan::none().with_degradation(LinkDegradation {
            start: 1.0,
            end: 2.0,
            extra_loss: 0.5,
            wire_factor: 3.0,
            src: Some(0),
            dst: None,
        });
        let hit = p.link_fault(0, 1, 1.5, false);
        assert_eq!(hit.loss, 0.5);
        assert_eq!(hit.wire_factor, 3.0);
        assert!(p.link_fault(0, 1, 2.0, false).is_clean()); // past the window
        assert!(p.link_fault(1, 0, 1.5, false).is_clean()); // wrong src
    }

    #[test]
    fn straggle_factor_takes_worst_entry() {
        let p = FaultPlan::none()
            .with_straggler(1, 2.0)
            .with_straggler(1, 4.0);
        assert_eq!(p.straggle_factor(1), 4.0);
        assert_eq!(p.straggle_factor(0), 1.0);
    }

    #[test]
    fn persistent_stragglers_cover_all_of_time() {
        let p = FaultPlan::none().with_straggler(1, 3.0);
        assert_eq!(p.straggle_factor_at(1, 0.0), 3.0);
        assert_eq!(p.straggle_factor_at(1, 1e12), 3.0);
        assert_eq!(p.straggle_factor_at(0, 5.0), 1.0);
    }

    #[test]
    fn transient_straggler_window_is_half_open() {
        let p = FaultPlan::none().with_straggler_window(2, 2.5, 1.0, 3.0);
        assert_eq!(p.straggle_factor_at(2, 0.5), 1.0);
        assert_eq!(p.straggle_factor_at(2, 1.0), 2.5);
        assert_eq!(p.straggle_factor_at(2, 2.999), 2.5);
        assert_eq!(p.straggle_factor_at(2, 3.0), 1.0);
        // Whole-run worst case still sees the transient entry.
        assert_eq!(p.straggle_factor(2), 2.5);
        assert!(p.validate(4, 4).is_ok());
    }

    #[test]
    fn validate_rejects_bad_straggler_windows() {
        for bad in [
            FaultPlan::none().with_straggler_window(0, 2.0, 3.0, 1.0),
            FaultPlan::none().with_straggler_window(0, 2.0, -1.0, 1.0),
            FaultPlan::none().with_straggler_window(0, 2.0, f64::NAN, 1.0),
            FaultPlan::none().with_straggler_window(0, 2.0, 0.0, f64::INFINITY),
        ] {
            assert!(bad.validate(4, 4).is_err(), "{:?}", bad.stragglers);
        }
    }

    #[test]
    fn crash_time_takes_earliest() {
        let p = FaultPlan::none().with_crash(2, 5.0).with_crash(2, 3.0);
        assert_eq!(p.crash_time(2), Some(3.0));
    }

    #[test]
    fn validate_rejects_bad_plans() {
        assert!(FaultPlan::none().with_loss(1.5).validate(4, 4).is_err());
        assert!(FaultPlan::none().with_crash(9, 1.0).validate(4, 4).is_err());
        assert!(FaultPlan::none()
            .with_straggler(9, 2.0)
            .validate(4, 4)
            .is_err());
        assert!(FaultPlan::none()
            .with_straggler(0, 0.5)
            .validate(4, 4)
            .is_err());
        assert!(FaultPlan::none()
            .with_degradation(LinkDegradation::global(2.0, 1.0, 0.0, 1.0))
            .validate(4, 4)
            .is_err());
    }

    #[test]
    fn storage_faults_do_not_make_a_plan_nonzero() {
        let p = FaultPlan::none().with_storage_fault(1.0, StorageFaultKind::Missing);
        assert!(p.is_zero(), "storage faults never perturb timing");
        assert!(p.validate(4, 4).is_ok());
    }

    #[test]
    fn storage_schedule_is_time_sorted() {
        let p = FaultPlan::none()
            .with_storage_fault(3.0, StorageFaultKind::Missing)
            .with_storage_fault(1.0, StorageFaultKind::TornWrite { keep_frac: 0.5 })
            .with_storage_fault(2.0, StorageFaultKind::BitFlip { byte: 7, bit: 3 });
        let at: Vec<f64> = p.storage_schedule().iter().map(|s| s.at).collect();
        assert_eq!(at, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn validate_rejects_bad_storage_faults() {
        for bad in [
            FaultPlan::none().with_storage_fault(f64::NAN, StorageFaultKind::Missing),
            FaultPlan::none().with_storage_fault(-1.0, StorageFaultKind::Missing),
            FaultPlan::none()
                .with_storage_fault(0.0, StorageFaultKind::TornWrite { keep_frac: 1.0 }),
            FaultPlan::none()
                .with_storage_fault(0.0, StorageFaultKind::BitFlip { byte: 0, bit: 8 }),
        ] {
            assert!(bad.validate(4, 4).is_err(), "{:?}", bad.storage);
        }
    }

    #[test]
    fn sdc_faults_do_not_make_a_plan_nonzero() {
        let p = FaultPlan::none().with_sdc(SdcFault {
            step: 3,
            target: SdcTarget::Forces,
            atom: 17,
            axis: 1,
            bit: 52,
        });
        assert!(p.is_zero(), "SDC never perturbs timing");
        assert!(p.validate(4, 4).is_ok());
    }

    #[test]
    fn sdc_schedule_is_step_sorted_and_validated() {
        let p = FaultPlan::none()
            .with_sdc(SdcFault {
                step: 5,
                target: SdcTarget::Positions,
                atom: 0,
                axis: 0,
                bit: 0,
            })
            .with_sdc(SdcFault {
                step: 2,
                target: SdcTarget::Forces,
                atom: 1,
                axis: 2,
                bit: 63,
            });
        let steps: Vec<u64> = p.sdc_schedule().iter().map(|s| s.step).collect();
        assert_eq!(steps, vec![2, 5]);
        for bad in [
            SdcFault {
                step: 0,
                target: SdcTarget::Forces,
                atom: 0,
                axis: 0,
                bit: 0,
            },
            SdcFault {
                step: 1,
                target: SdcTarget::Forces,
                atom: 0,
                axis: 3,
                bit: 0,
            },
            SdcFault {
                step: 1,
                target: SdcTarget::Forces,
                atom: 0,
                axis: 0,
                bit: 64,
            },
        ] {
            assert!(
                FaultPlan::none().with_sdc(bad).validate(4, 4).is_err(),
                "{bad:?}"
            );
        }
    }

    #[test]
    fn bounded_retransmits_cap_at_hard_limit() {
        let p = FaultPlan::none().with_loss(0.5).with_max_retransmits(1000);
        let f = p.link_fault(0, 1, 0.0, false);
        assert_eq!(f.max_retransmits, MAX_RETRANSMIT_ROUNDS);
        assert!(f.give_up);
        let reliable = FaultPlan::none()
            .with_loss(0.5)
            .link_fault(0, 1, 0.0, false);
        assert!(!reliable.give_up);
    }
}
