//! Jacobson/Karels round-trip-time estimation (RFC 6298 weights) for
//! adaptive retransmission timeouts.
//!
//! The static transport model retries on a `rto_floor × backoff^k`
//! timer calibrated to the *fault-free* network. Under an injected
//! link degradation the real delivery time can sit well above that
//! floor, so every retry round pays a timer that has nothing to do
//! with the observed channel. An [`RttEstimator`] tracks the smoothed
//! RTT (SRTT) and its variance (RTTVAR) from delivered-message wire
//! times and yields `SRTT + 4·RTTVAR`, the classic TCP retransmission
//! timeout, which the caller clamps to the network's `[floor, max]`
//! envelope.
//!
//! Determinism: estimator state is a pure fold over the sequence of
//! observed samples, which in the simulator are themselves
//! deterministic functions of the (seed, channel, counter) RNG
//! streams — replaying a run replays the estimator exactly.

/// Smoothed RTT / RTT-variance state for one channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RttEstimator {
    srtt: f64,
    rttvar: f64,
    samples: u64,
}

impl Default for RttEstimator {
    fn default() -> Self {
        RttEstimator::new()
    }
}

impl RttEstimator {
    /// An estimator with no samples; [`rto`](Self::rto) is `None`
    /// until the first observation, so callers fall back to the static
    /// model and fault-free behaviour is unchanged.
    pub fn new() -> Self {
        RttEstimator {
            srtt: 0.0,
            rttvar: 0.0,
            samples: 0,
        }
    }

    /// Folds one delivered-message wire time into the estimate.
    /// Non-finite or negative samples are ignored.
    pub fn observe(&mut self, sample: f64) {
        if !sample.is_finite() || sample < 0.0 {
            return;
        }
        if self.samples == 0 {
            self.srtt = sample;
            self.rttvar = sample / 2.0;
        } else {
            self.rttvar = 0.75 * self.rttvar + 0.25 * (self.srtt - sample).abs();
            self.srtt = 0.875 * self.srtt + 0.125 * sample;
        }
        self.samples += 1;
    }

    /// Smoothed round-trip time, `None` before the first sample.
    pub fn srtt(&self) -> Option<f64> {
        (self.samples > 0).then_some(self.srtt)
    }

    /// RTT variance, `None` before the first sample.
    pub fn rttvar(&self) -> Option<f64> {
        (self.samples > 0).then_some(self.rttvar)
    }

    /// `SRTT + 4·RTTVAR`, `None` before the first sample.
    pub fn rto(&self) -> Option<f64> {
        (self.samples > 0).then_some(self.srtt + 4.0 * self.rttvar)
    }

    /// Number of samples folded in so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_samples_yields_no_estimate() {
        let est = RttEstimator::new();
        assert_eq!(est.rto(), None);
        assert_eq!(est.srtt(), None);
        assert_eq!(est.rttvar(), None);
        assert_eq!(est.samples(), 0);
    }

    #[test]
    fn first_sample_seeds_srtt_and_half_variance() {
        let mut est = RttEstimator::new();
        est.observe(0.1);
        assert_eq!(est.srtt(), Some(0.1));
        assert_eq!(est.rttvar(), Some(0.05));
        assert_eq!(est.rto(), Some(0.1 + 4.0 * 0.05));
    }

    #[test]
    fn steady_samples_converge_and_variance_decays() {
        let mut est = RttEstimator::new();
        for _ in 0..200 {
            est.observe(0.02);
        }
        let srtt = est.srtt().unwrap();
        let rttvar = est.rttvar().unwrap();
        assert!((srtt - 0.02).abs() < 1e-9, "srtt {srtt}");
        assert!(rttvar < 1e-9, "rttvar {rttvar}");
    }

    #[test]
    fn degraded_channel_raises_the_timeout() {
        let mut fast = RttEstimator::new();
        let mut slow = RttEstimator::new();
        for i in 0..50 {
            fast.observe(0.01);
            // 4x wire factor plus jitter.
            slow.observe(0.04 + 0.01 * f64::from(i % 3));
        }
        assert!(slow.rto().unwrap() > 3.0 * fast.rto().unwrap());
    }

    #[test]
    fn bogus_samples_are_ignored() {
        let mut est = RttEstimator::new();
        est.observe(f64::NAN);
        est.observe(f64::INFINITY);
        est.observe(-1.0);
        assert_eq!(est.samples(), 0);
        est.observe(0.5);
        assert_eq!(est.samples(), 1);
    }

    #[test]
    fn estimation_is_a_pure_fold() {
        let samples = [0.01, 0.03, 0.015, 0.09, 0.02];
        let mut a = RttEstimator::new();
        let mut b = RttEstimator::new();
        for &s in &samples {
            a.observe(s);
            b.observe(s);
        }
        assert_eq!(a, b);
    }
}
