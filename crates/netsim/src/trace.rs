//! Message tracing: an optional per-run event log of every transfer,
//! with an ASCII timeline renderer — the "detailed timings" instrument
//! behind the paper's breakdown methodology, useful for debugging new
//! decompositions.

use crate::stats::MsgClass;
use serde::{Deserialize, Serialize};

/// One recorded message transfer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Sending rank.
    pub src: usize,
    /// Receiving rank.
    pub dst: usize,
    /// Modeled size in bytes.
    pub bytes: usize,
    /// True for payload (communication), false for control (sync).
    pub payload: bool,
    /// Virtual departure time, seconds.
    pub departure: f64,
    /// Virtual arrival time, seconds.
    pub arrival: f64,
}

impl TraceEvent {
    /// Creates an event from transfer parameters.
    pub fn new(
        src: usize,
        dst: usize,
        bytes: usize,
        class: MsgClass,
        departure: f64,
        arrival: f64,
    ) -> Self {
        TraceEvent {
            src,
            dst,
            bytes,
            payload: class == MsgClass::Payload,
            departure,
            arrival,
        }
    }

    /// Wire time of the transfer.
    pub fn wire(&self) -> f64 {
        self.arrival - self.departure
    }
}

/// Summary statistics over a set of trace events.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceSummary {
    /// Number of messages.
    pub messages: usize,
    /// Total payload bytes.
    pub payload_bytes: u64,
    /// Number of control (1-byte) messages.
    pub control_messages: usize,
    /// Mean wire time of payload transfers, seconds.
    pub mean_payload_wire: f64,
    /// Time of the last arrival.
    pub end_time: f64,
}

/// Summarizes events (in any order).
pub fn summarize(events: &[TraceEvent]) -> TraceSummary {
    let mut payload_bytes = 0u64;
    let mut control = 0usize;
    let mut wire_sum = 0.0;
    let mut wire_n = 0usize;
    let mut end = 0.0f64;
    for e in events {
        end = end.max(e.arrival);
        if e.payload {
            payload_bytes += e.bytes as u64;
            wire_sum += e.wire();
            wire_n += 1;
        } else {
            control += 1;
        }
    }
    TraceSummary {
        messages: events.len(),
        payload_bytes,
        control_messages: control,
        mean_payload_wire: if wire_n > 0 {
            wire_sum / wire_n as f64
        } else {
            0.0
        },
        end_time: end,
    }
}

/// Renders an ASCII timeline: one lane per rank, `#` where the rank has
/// a payload transfer in flight (as sender), `=` for control traffic.
pub fn render_timeline(events: &[TraceEvent], ranks: usize, width: usize) -> String {
    assert!(width >= 10);
    let end = events.iter().map(|e| e.arrival).fold(0.0f64, f64::max);
    if end <= 0.0 {
        return "(no traffic)\n".to_string();
    }
    let mut lanes = vec![vec![b'.'; width]; ranks];
    for e in events {
        let lane = &mut lanes[e.src];
        let a = ((e.departure / end) * (width - 1) as f64) as usize;
        let b = ((e.arrival / end) * (width - 1) as f64) as usize;
        let glyph = if e.payload { b'#' } else { b'=' };
        for slot in lane.iter_mut().take(b.min(width - 1) + 1).skip(a) {
            // Payload overrides control in the display.
            if *slot != b'#' {
                *slot = glyph;
            }
        }
    }
    let mut out = String::new();
    out.push_str(&format!(
        "message timeline over {:.3} ms ('#' payload in flight, '=' control):\n",
        end * 1e3
    ));
    for (r, lane) in lanes.iter().enumerate() {
        out.push_str(&format!(
            "rank {r:>2} |{}|\n",
            String::from_utf8_lossy(lane)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::new(0, 1, 8000, MsgClass::Payload, 0.0, 0.002),
            TraceEvent::new(1, 0, 1, MsgClass::Control, 0.001, 0.0012),
            TraceEvent::new(0, 1, 4000, MsgClass::Payload, 0.003, 0.004),
        ]
    }

    #[test]
    fn summary_counts() {
        let s = summarize(&sample_events());
        assert_eq!(s.messages, 3);
        assert_eq!(s.payload_bytes, 12_000);
        assert_eq!(s.control_messages, 1);
        assert!((s.end_time - 0.004).abs() < 1e-12);
        assert!(s.mean_payload_wire > 0.0);
    }

    #[test]
    fn empty_summary() {
        let s = summarize(&[]);
        assert_eq!(s.messages, 0);
        assert_eq!(s.mean_payload_wire, 0.0);
    }

    #[test]
    fn timeline_renders_lanes() {
        let text = render_timeline(&sample_events(), 2, 40);
        assert!(text.contains("rank  0"));
        assert!(text.contains("rank  1"));
        assert!(text.contains('#'));
        assert!(text.contains('='));
        // Each lane is exactly `width` columns between the pipes.
        for line in text.lines().skip(1) {
            let inner = line.split('|').nth(1).unwrap();
            assert_eq!(inner.len(), 40);
        }
    }

    #[test]
    fn no_traffic_message() {
        assert_eq!(render_timeline(&[], 4, 20), "(no traffic)\n");
    }
}
