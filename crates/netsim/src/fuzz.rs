//! Seeded, fully deterministic fault-schedule generator for chaos
//! campaigns.
//!
//! A [`FaultSpace`] describes the envelope of one workload (ranks,
//! nodes, MD steps, fault-free wall-clock horizon, atom count);
//! [`FaultSpace::sample`] draws an arbitrary [`FaultPlan`] from it,
//! keyed only by `(seed, index)` through the same [`SplitMix64`]
//! streams the engine uses — schedule `i` of a campaign is the same
//! plan on every machine, every run, forever.
//!
//! The sampled subspace is **survivable by construction**, because a
//! chaos campaign asserts that every sampled schedule upholds the
//! recovery invariants (zero oracle violations over thousands of
//! schedules):
//!
//! * the transport never gives up (`max_retransmits` stays `None`), so
//!   collectives built on infallible receives cannot deadlock;
//! * crashes always leave at least one survivor;
//! * SDC bit flips are drawn from three classes — *benign* (low
//!   mantissa bits, relative error below ~1e-10), *detectable* (the
//!   top exponent bit of a position, which teleports an atom by at
//!   least 2 Å or blows the coordinate up entirely), and
//!   *undetectable* (every bit in the gray zone between them, where
//!   the perturbation is too small for the numerical watchdog yet far
//!   above round-off). The gray zone was excluded from sampling until
//!   the ABFT layer (`cpc-charmm::recover`, `AbftConfig`) existed to
//!   catch it; an armed campaign now asserts that every sampled gray
//!   flip is detected and repaired.
//!
//! Known-unsurvivable plans (the "planted bugs" that validate the
//! oracles and the minimizer) are constructed by hand or scanned out
//! of the sampled stream, not special-cased.

use crate::faults::{
    FaultPlan, LinkDegradation, SdcFault, SdcTarget, StorageFaultKind, DEFAULT_WATCHDOG_TIMEOUT,
};
use crate::rng::SplitMix64;
use cpc_pool::{SchedFault, SchedFaultPlan};
use cpc_vfs::{DiskFault, DiskFaultPlan};
use serde::{Deserialize, Serialize};

/// Highest mantissa bit the *benign* SDC class may flip: a flip at or
/// below this bit changes the value by a relative factor of at most
/// `2^(BENIGN_MAX_BIT - 52)` (~6e-11), far below any physical signal
/// in a short trajectory.
pub const BENIGN_MAX_BIT: u8 = 16;

/// The bit the *detectable* SDC class flips: the most significant
/// exponent bit (62), and only ever in a **position** array. Whichever
/// state the bit is in, the flip moves the atom by at least 2 Å:
///
/// * bit set (`|x| >= 2`): the exponent drops by 1024, collapsing the
///   coordinate to a subnormal — a displacement of `|x| >= 2` Å;
/// * bit clear (`|x| < 2`): the exponent rises by 1024, landing at
///   `>= 2` (a zero coordinate becomes exactly 2.0; anything larger
///   overflows toward `2^1007`, infinity, or NaN).
///
/// A single atom teleporting >= 2 Å inside a bonded topology stretches
/// its bonds/angles by over an ångström, a potential-energy jump of
/// hundreds of kcal/mol that the numerical watchdog's drift check (or
/// its non-finite check) classifies as a blow-up on the same step.
/// Force arrays have no such lever — a force component whose exponent
/// *collapses* perturbs one half-kick by an amount that is neither
/// detectable nor benign — so the detectable class never targets them.
///
/// Detectable flips are additionally never scheduled on step 1: the
/// drift check compares against the first recorded step's energy, so
/// it needs one clean step to establish its reference. A flip that
/// corrupts the reference itself can evade the watchdog long enough to
/// be checkpointed (the chaos campaign's first catch — exactly the
/// kind of schedule that belongs in a hand-planted reproducer, not the
/// survivable sample space).
pub const DETECTABLE_BIT: u8 = 62;

/// The three silent-data-corruption classes [`FaultSpace::sample`]
/// draws from, recovered from a sampled fault by [`sdc_class`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SdcClass {
    /// Low mantissa bits (`<=` [`BENIGN_MAX_BIT`]): relative error
    /// below ~6e-11, physically indistinguishable from round-off.
    Benign,
    /// [`DETECTABLE_BIT`] on a position: guaranteed to trip the
    /// numerical watchdog on the same step.
    Detectable,
    /// Everything in between — large enough to corrupt the physics,
    /// too small for the watchdog. Only the ABFT checksums catch it.
    Undetectable,
}

/// Classifies a fault into the class [`FaultSpace::sample`] drew it
/// from (the classification is total: hand-built faults classify too).
pub fn sdc_class(fault: &SdcFault) -> SdcClass {
    if fault.bit <= BENIGN_MAX_BIT {
        SdcClass::Benign
    } else if fault.bit == DETECTABLE_BIT && fault.target == SdcTarget::Positions {
        SdcClass::Detectable
    } else {
        SdcClass::Undetectable
    }
}

/// The envelope a chaos campaign samples fault schedules from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpace {
    /// Ranks of the cluster under test.
    pub ranks: usize,
    /// Nodes of the cluster under test.
    pub nodes: usize,
    /// MD steps of the workload (bounds SDC step indices).
    pub steps: u64,
    /// Fault-free wall-clock horizon, virtual seconds (time-triggered
    /// faults are drawn from `[0, ~1.2 * horizon]`).
    pub horizon: f64,
    /// Atom count of the workload (bounds SDC atom indices).
    pub atoms: usize,
}

impl FaultSpace {
    /// Describes the fault space of one workload.
    pub fn new(ranks: usize, nodes: usize, steps: u64, horizon: f64, atoms: usize) -> Self {
        FaultSpace {
            ranks,
            nodes,
            steps,
            horizon,
            atoms,
        }
    }

    /// Draws schedule `index` of the campaign keyed by `seed`. Pure:
    /// the same `(space, seed, index)` always yields the same plan, and
    /// the returned plan always validates against the space's cluster.
    pub fn sample(&self, seed: u64, index: u64) -> FaultPlan {
        // A dedicated channel per schedule: src/dst are fixed sentinels
        // outside any real rank pair's key space usage, the campaign
        // index is the counter.
        let mut rng = SplitMix64::for_message(seed, 0xC4A0, 0x5D0C, index);
        let mut plan = FaultPlan::none();

        // Baseline loss on roughly half the schedules, mild enough that
        // the reliable transport always delivers eventually.
        if rng.next_f64() < 0.5 {
            plan.loss = 0.01 + 0.11 * rng.next_f64();
        }

        // Up to two degradation windows inside the horizon.
        for _ in 0..self.choose(&mut rng, 3) {
            let start = self.horizon * rng.next_f64();
            let len = 0.4 * self.horizon * rng.next_f64();
            plan.degradations.push(LinkDegradation::global(
                start,
                start + len,
                0.3 * rng.next_f64(),
                1.0 + 3.0 * rng.next_f64(),
            ));
        }

        // Up to two straggler nodes, drawn from two classes so every
        // rung of the degradation ladder is exercised: *transient*
        // windows inside the horizon (absorbed by rebalancing, then
        // rebalanced back), and *persistent* whole-run slowdowns of up
        // to 4x (the severe tail crosses the eviction threshold).
        for _ in 0..self.choose(&mut rng, 3) {
            let node = (rng.next_u64() as usize) % self.nodes;
            if rng.next_f64() < 0.5 {
                let slowdown = 1.25 + 1.75 * rng.next_f64();
                let start = self.horizon * rng.next_f64();
                let len = (0.2 + 0.6 * rng.next_f64()) * self.horizon;
                plan = plan.with_straggler_window(node, slowdown, start, start + len);
            } else {
                plan = plan.with_straggler(node, 1.25 + 2.75 * rng.next_f64());
            }
        }

        // Crashes: always leave at least one survivor. Distinct ranks,
        // times spread slightly past the horizon (a crash after the
        // fault-free finish exercises the tail of the run).
        let max_crashes = self.ranks.saturating_sub(1).min(2);
        let n_crashes = self.choose(&mut rng, max_crashes as u64 + 1) as usize;
        let mut crashed: Vec<usize> = Vec::new();
        while crashed.len() < n_crashes {
            let rank = (rng.next_u64() as usize) % self.ranks;
            if !crashed.contains(&rank) {
                crashed.push(rank);
                plan = plan.with_crash(rank, 1.2 * self.horizon * rng.next_f64());
            }
        }

        // Up to two storage faults against durable checkpoint writes.
        for _ in 0..self.choose(&mut rng, 3) {
            let at = self.horizon * rng.next_f64();
            let kind = match rng.next_u64() % 3 {
                0 => StorageFaultKind::TornWrite {
                    keep_frac: 0.9 * rng.next_f64(),
                },
                1 => StorageFaultKind::BitFlip {
                    byte: rng.next_u64() as usize % (1 << 20),
                    bit: (rng.next_u64() % 8) as u8,
                },
                _ => StorageFaultKind::Missing,
            };
            plan = plan.with_storage_fault(at, kind);
        }

        // Up to two SDC flips drawn evenly from the three classes. The
        // detectable class is positions-only at DETECTABLE_BIT (see its
        // doc for the guarantee); the benign class may hit either
        // array's low mantissa bits; the undetectable class covers the
        // whole gray zone in between (plus the sign bit) on either
        // array — the flips only the ABFT checksums can catch.
        for _ in 0..self.choose(&mut rng, 3) {
            let class = match rng.next_u64() % 3 {
                1 if self.steps >= 2 => SdcClass::Detectable,
                0 | 1 => SdcClass::Benign,
                _ => SdcClass::Undetectable,
            };
            let (target, bit) = match class {
                SdcClass::Detectable => (SdcTarget::Positions, DETECTABLE_BIT),
                SdcClass::Benign => {
                    let target = if rng.next_u64().is_multiple_of(2) {
                        SdcTarget::Positions
                    } else {
                        SdcTarget::Forces
                    };
                    (target, (rng.next_u64() % (BENIGN_MAX_BIT as u64 + 1)) as u8)
                }
                SdcClass::Undetectable => {
                    if rng.next_u64().is_multiple_of(2) {
                        // Positions: 17..=61 plus the sign bit (62 is
                        // the detectable class, not this one).
                        let bit = 17 + (rng.next_u64() % 46) as u8;
                        let bit = if bit == DETECTABLE_BIT { 63 } else { bit };
                        (SdcTarget::Positions, bit)
                    } else {
                        // Forces: every high bit is gray — even an
                        // exponent collapse only perturbs one
                        // half-kick (see DETECTABLE_BIT).
                        (SdcTarget::Forces, 17 + (rng.next_u64() % 47) as u8)
                    }
                }
            };
            // Detectable flips start at step 2: the watchdog needs one
            // clean step for its energy reference (see DETECTABLE_BIT).
            let step = if class == SdcClass::Detectable {
                2 + rng.next_u64() % (self.steps - 1)
            } else {
                1 + rng.next_u64() % self.steps.max(1)
            };
            plan = plan.with_sdc(SdcFault {
                step,
                target,
                atom: rng.next_u64() as usize % self.atoms.max(1),
                axis: (rng.next_u64() % 3) as u8,
                bit,
            });
        }

        plan.watchdog_timeout = DEFAULT_WATCHDOG_TIMEOUT;
        debug_assert!(
            plan.validate(self.ranks, self.nodes).is_ok(),
            "sampled plan must validate: {:?}",
            plan.validate(self.ranks, self.nodes)
        );
        plan
    }

    /// Uniform draw in `0..n` (0 when `n == 0`), biased toward small
    /// counts by squaring: most schedules carry a few events, the tail
    /// carries the maximum.
    fn choose(&self, rng: &mut SplitMix64, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        let u = rng.next_f64();
        ((u * u) * n as f64) as u64
    }
}

/// One fault against the *campaign job service* (the orchestrator
/// layer above the simulation): process kills at chosen commit
/// points, torn writes against the queue's or the results journal's
/// durable state, stale leases, and cache-entry bit flips. These are
/// interpreted by the service chaos driver (`cpc-workload`), which
/// applies kills by ending an incarnation and storage faults by
/// damaging the on-disk files between incarnations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ServiceFault {
    /// A worker dies mid-cell: the `cells`-th fresh execution of the
    /// incarnation runs but its result never becomes durable.
    WorkerKill {
        /// Fresh execution (1-based) at which the worker dies.
        cells: usize,
    },
    /// The orchestrator dies mid-commit: the result has reached the
    /// journal but neither the cache nor the queue's Complete record.
    OrchestratorKillMidCommit {
        /// Fresh execution (1-based) at which it dies.
        cells: usize,
    },
    /// The orchestrator dies immediately after a full commit — the
    /// benign kill point; resume must be a pure no-op for that cell.
    OrchestratorKillAfterCommit {
        /// Fresh execution (1-based) at which it dies.
        cells: usize,
    },
    /// A queue shard's journal loses its tail (torn write at kill).
    TornQueueWrite {
        /// Shard index (reduced modulo the shard count).
        shard: usize,
        /// Fraction of the shard file's bytes that survive.
        keep_frac: f64,
    },
    /// The results journal loses its tail.
    TornResultWrite {
        /// Fraction of the journal's bytes that survive.
        keep_frac: f64,
    },
    /// A lease expires mid-execution and the cell is re-leased; the
    /// original holder then presents its stale lease on completion,
    /// which the queue must reject.
    StaleLease {
        /// Lease grant (1-based, within the incarnation) to stalemate.
        at_lease: usize,
    },
    /// One bit of one cache entry flips at rest; the entry checksum
    /// must catch it on next read.
    CacheBitFlip {
        /// Entry index into the sorted cache listing (reduced modulo
        /// the entry count at apply time).
        entry: usize,
        /// Byte offset (reduced modulo the entry size).
        byte: usize,
        /// Bit within the byte.
        bit: u8,
    },
}

/// A seeded schedule of [`ServiceFault`]s, applied in order by the
/// service chaos driver.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ServiceFaultPlan {
    /// The faults, in application order.
    pub faults: Vec<ServiceFault>,
}

impl ServiceFaultPlan {
    /// The fault-free plan.
    pub fn none() -> Self {
        ServiceFaultPlan::default()
    }

    /// Number of process kills the plan schedules.
    pub fn kills(&self) -> usize {
        self.faults
            .iter()
            .filter(|f| {
                matches!(
                    f,
                    ServiceFault::WorkerKill { .. }
                        | ServiceFault::OrchestratorKillMidCommit { .. }
                        | ServiceFault::OrchestratorKillAfterCommit { .. }
                )
            })
            .count()
    }
}

/// The fault envelope of one campaign job service: bounds on cell
/// count and shard count from which [`ServiceFaultSpace::sample`]
/// draws deterministic [`ServiceFaultPlan`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceFaultSpace {
    /// Cells in the campaign (bounds kill/stale positions).
    pub cells: usize,
    /// Queue journal shards (bounds torn-shard targets).
    pub shards: usize,
}

impl ServiceFaultSpace {
    /// Describes the fault space of one campaign.
    pub fn new(cells: usize, shards: usize) -> Self {
        ServiceFaultSpace { cells, shards }
    }

    /// Draws schedule `index` of the campaign keyed by `seed`. Pure in
    /// `(space, seed, index)`, like [`FaultSpace::sample`]; a distinct
    /// sentinel channel keeps the two streams independent.
    pub fn sample(&self, seed: u64, index: u64) -> ServiceFaultPlan {
        let mut rng = SplitMix64::for_message(seed, 0x5E4C, 0xFA17, index);
        let mut plan = ServiceFaultPlan::none();
        let cells = self.cells.max(1);
        // 1..=3 faults per schedule, biased toward fewer.
        let n = 1 + self.choose(&mut rng, 3);
        for _ in 0..n {
            let cell = 1 + (rng.next_u64() as usize) % cells;
            let fault = match rng.next_u64() % 7 {
                0 => ServiceFault::WorkerKill { cells: cell },
                1 | 2 => ServiceFault::OrchestratorKillMidCommit { cells: cell },
                3 => ServiceFault::OrchestratorKillAfterCommit { cells: cell },
                4 => ServiceFault::TornQueueWrite {
                    shard: (rng.next_u64() as usize) % self.shards.max(1),
                    keep_frac: 0.95 * rng.next_f64(),
                },
                5 => ServiceFault::TornResultWrite {
                    keep_frac: 0.95 * rng.next_f64(),
                },
                _ => {
                    if rng.next_u64().is_multiple_of(2) {
                        ServiceFault::StaleLease { at_lease: cell }
                    } else {
                        ServiceFault::CacheBitFlip {
                            entry: rng.next_u64() as usize % cells,
                            byte: rng.next_u64() as usize % (1 << 12),
                            bit: (rng.next_u64() % 8) as u8,
                        }
                    }
                }
            };
            plan.faults.push(fault);
        }
        plan
    }

    fn choose(&self, rng: &mut SplitMix64, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        let u = rng.next_f64();
        ((u * u) * n as f64) as u64
    }
}

/// One fault against the *transport layer* of the campaign gateway
/// (the HTTP/JSON front door above the job service): misbehaving
/// clients — malformed request lines, truncated bodies, byte-dribbling
/// slowloris readers, mid-response disconnects, connection floods —
/// plus kills of the gateway process itself. Interpreted by the
/// gateway chaos driver (`cpc-gateway`), which turns each fault into
/// one or more scripted client connections (or a gateway restart)
/// interleaved with a well-behaved client driving a campaign.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TransportFault {
    /// A client sends one of a fixed set of malformed request heads
    /// (garbage line, missing version, bare LF, binary noise, an
    /// oversized URI, an unsupported version). Must be rejected with a
    /// 4xx/5xx — never a panic or a hang.
    MalformedRequest {
        /// Which malformation (reduced modulo the variant count).
        variant: u8,
    },
    /// A client declares `Content-Length: N` but disconnects after
    /// sending only `keep_frac` of the body.
    TruncatedBody {
        /// Fraction of the declared body actually sent.
        keep_frac: f64,
    },
    /// A slowloris client dribbles its request a few bytes at a time
    /// with a virtual delay between chunks, trying to hold the
    /// connection open past the read deadline.
    SlowReader {
        /// Bytes per dribble.
        chunk: usize,
        /// Virtual seconds between dribbles.
        delay: f64,
    },
    /// The client vanishes while the gateway is writing the response
    /// (write fails with a broken pipe after `after` bytes).
    MidResponseDisconnect {
        /// Response bytes accepted before the disconnect.
        after: usize,
    },
    /// A burst of connections that open and send nothing: each must be
    /// reaped by the read deadline and closed (no fd leak).
    ConnectionFlood {
        /// Connections in the burst.
        conns: usize,
    },
    /// `kill -9` of the gateway process at the `cells`-th fresh cell
    /// execution, at one of the three service commit points
    /// (0 = before the result is durable, 1 = mid-commit, 2 = after).
    GatewayKill {
        /// Fresh execution (1-based) at which the process dies.
        cells: usize,
        /// Commit point (reduced modulo 3).
        point: u8,
    },
}

/// A seeded schedule of [`TransportFault`]s, applied in order by the
/// gateway chaos driver.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TransportFaultPlan {
    /// The faults, in application order.
    pub faults: Vec<TransportFault>,
}

impl TransportFaultPlan {
    /// The fault-free plan.
    pub fn none() -> Self {
        TransportFaultPlan::default()
    }

    /// Number of gateway kills the plan schedules.
    pub fn kills(&self) -> usize {
        self.faults
            .iter()
            .filter(|f| matches!(f, TransportFault::GatewayKill { .. }))
            .count()
    }
}

/// The transport fault envelope of one gateway campaign: bounds on
/// cell count from which [`TransportFaultSpace::sample`] draws
/// deterministic [`TransportFaultPlan`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransportFaultSpace {
    /// Cells in the campaign (bounds kill positions).
    pub cells: usize,
}

impl TransportFaultSpace {
    /// Describes the transport fault space of one gateway campaign.
    pub fn new(cells: usize) -> Self {
        TransportFaultSpace { cells }
    }

    /// Draws schedule `index` of the campaign keyed by `seed`. Pure in
    /// `(space, seed, index)` like the other samplers; a distinct
    /// sentinel channel keeps the stream independent of both the
    /// simulation and the service fault streams.
    pub fn sample(&self, seed: u64, index: u64) -> TransportFaultPlan {
        let mut rng = SplitMix64::for_message(seed, 0x7C9A, 0x6A7E, index);
        let mut plan = TransportFaultPlan::none();
        let cells = self.cells.max(1);
        // 1..=4 faults per schedule, biased toward fewer.
        let n = 1 + self.choose(&mut rng, 4);
        for _ in 0..n {
            let fault = match rng.next_u64() % 8 {
                0 | 1 => TransportFault::MalformedRequest {
                    variant: (rng.next_u64() % 6) as u8,
                },
                2 => TransportFault::TruncatedBody {
                    keep_frac: 0.95 * rng.next_f64(),
                },
                3 => TransportFault::SlowReader {
                    chunk: 1 + (rng.next_u64() as usize) % 4,
                    delay: 0.5 + 2.0 * rng.next_f64(),
                },
                4 => TransportFault::MidResponseDisconnect {
                    after: (rng.next_u64() as usize) % 64,
                },
                5 => TransportFault::ConnectionFlood {
                    conns: 2 + (rng.next_u64() as usize) % 6,
                },
                _ => TransportFault::GatewayKill {
                    cells: 1 + (rng.next_u64() as usize) % cells,
                    point: (rng.next_u64() % 3) as u8,
                },
            };
            plan.faults.push(fault);
        }
        plan
    }

    fn choose(&self, rng: &mut SplitMix64, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        let u = rng.next_f64();
        ((u * u) * n as f64) as u64
    }
}

/// The disk fault envelope of one durability workload: a bound on the
/// mutating-op horizon from which [`DiskFaultSpace::sample`] draws
/// deterministic [`DiskFaultPlan`]s (the types live in `cpc-vfs` so
/// the simulated filesystem can interpret a plan without a dependency
/// cycle; the sampler lives here with its siblings so every chaos
/// stream shares one seeding discipline).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskFaultSpace {
    /// Mutating filesystem operations in the fault-free run (bounds
    /// fault positions; measure it with `SimFs::op_count` after a
    /// clean run, or over-estimate — a fault armed past the end of the
    /// run simply never fires).
    pub ops: u64,
}

impl DiskFaultSpace {
    /// Describes the disk fault space of one durability workload.
    pub fn new(ops: u64) -> Self {
        DiskFaultSpace { ops }
    }

    /// Draws schedule `index` of the campaign keyed by `seed`. Pure in
    /// `(space, seed, index)` like the other samplers; a distinct
    /// sentinel channel keeps the stream independent of the
    /// simulation, service, and transport fault streams.
    pub fn sample(&self, seed: u64, index: u64) -> DiskFaultPlan {
        let mut rng = SplitMix64::for_message(seed, 0xD15C, 0x0F5B, index);
        let mut plan = DiskFaultPlan::none();
        let ops = self.ops.max(1);
        // 1..=3 faults per schedule, biased toward fewer.
        let n = 1 + self.choose(&mut rng, 3);
        for _ in 0..n {
            let at = 1 + rng.next_u64() % ops;
            let fault = match rng.next_u64() % 8 {
                0 => DiskFault::EnospcTransient {
                    at,
                    ops: 1 + rng.next_u64() % 12,
                },
                1 => DiskFault::EnospcPersistent { at },
                2 => DiskFault::EioWrite { at },
                3 => DiskFault::EioFsync { at },
                4 => DiskFault::ShortWrite {
                    at,
                    keep_frac: 0.95 * rng.next_f64(),
                },
                5 => DiskFault::RenameFail { at },
                // Power loss is the richest fault, so it gets two
                // lanes: plain (unsynced bytes vanish wholesale) and
                // reordering writeback (each file keeps an independent
                // prefix).
                n => DiskFault::PowerLoss {
                    at,
                    reorder: n == 7,
                    keep_seed: rng.next_u64(),
                },
            };
            plan.faults.push(fault);
        }
        debug_assert!(plan.validate().is_ok(), "sampled plans are in-bounds");
        plan
    }

    fn choose(&self, rng: &mut SplitMix64, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        let u = rng.next_f64();
        ((u * u) * n as f64) as u64
    }
}

/// The scheduling fault envelope of one pooled campaign: a bound on
/// the cell count from which [`SchedFaultSpace::sample`] draws
/// deterministic [`SchedFaultPlan`]s (the types live in `cpc-pool` so
/// the executor can interpret a plan without a dependency cycle; the
/// sampler lives here with its siblings so every chaos stream shares
/// one seeding discipline).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedFaultSpace {
    /// Cells in the campaign (bounds panic starts, thread-change
    /// commits and lease positions; every task-keyed fault is drawn
    /// in `1..=cells` so it is guaranteed to fire).
    pub cells: usize,
}

impl SchedFaultSpace {
    /// Describes the scheduling fault space of one pooled campaign.
    pub fn new(cells: usize) -> Self {
        SchedFaultSpace { cells }
    }

    /// Draws schedule `index` of the campaign keyed by `seed`. Pure in
    /// `(space, seed, index)` like the other samplers; a distinct
    /// sentinel channel keeps the stream independent of the
    /// simulation, service, transport, and disk fault streams.
    pub fn sample(&self, seed: u64, index: u64) -> SchedFaultPlan {
        let mut rng = SplitMix64::for_message(seed, 0x5CED, 0x4EDF, index);
        let cells = self.cells.max(1);
        let threads = [2, 4, 8][(rng.next_u64() % 3) as usize];
        let mut plan = SchedFaultPlan::quiet(threads);
        // 1..=3 faults per schedule, biased toward fewer.
        let n = 1 + self.choose(&mut rng, 3);
        for _ in 0..n {
            let fault = match rng.next_u64() % 6 {
                0 => SchedFault::StealStorm {
                    from_task: 1 + (rng.next_u64() as usize) % cells,
                },
                // Pauses get two lanes: they are the workhorse that
                // actually reorders completions. A per-worker yield
                // point fires once per claimed task and once per
                // failed claim, so 4x cells over-arms safely (a pause
                // armed past the end of the run simply never fires).
                1 | 2 => SchedFault::WorkerPause {
                    worker: (rng.next_u64() as usize) % threads,
                    at_point: 1 + rng.next_u64() % (4 * cells as u64),
                    micros: 1 + rng.next_u64() % 20_000,
                },
                3 => SchedFault::TaskPanic {
                    at_start: 1 + (rng.next_u64() as usize) % cells,
                },
                4 => SchedFault::ThreadCountChange {
                    after_commits: 1 + (rng.next_u64() as usize) % cells,
                    threads: [1, 2, 4, 8][(rng.next_u64() % 4) as usize],
                },
                _ => SchedFault::LeaseExpiryRace {
                    at_lease: 1 + (rng.next_u64() as usize) % cells,
                },
            };
            plan.faults.push(fault);
        }
        plan
    }

    fn choose(&self, rng: &mut SplitMix64, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        let u = rng.next_f64();
        ((u * u) * n as f64) as u64
    }
}

/// One of the five chaos layers the composed conductor arms: the MD
/// simulation itself, the campaign job service, the HTTP transport,
/// the durable storage underneath everything, and the work-stealing
/// scheduler driving execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Layer {
    /// MD/network fault schedule ([`FaultPlan`]).
    Md,
    /// Campaign-service kills, torn writes, stale leases
    /// ([`ServiceFaultPlan`]).
    Service,
    /// HTTP transport chaos against the gateway
    /// ([`TransportFaultPlan`]).
    Transport,
    /// Disk faults on the simulated filesystem ([`DiskFaultPlan`]).
    Disk,
    /// Scheduling chaos on the work-stealing pool
    /// ([`SchedFaultPlan`]).
    Sched,
}

/// Every layer, in the canonical order the cross-layer minimizer
/// probes them (and the order pairwise coverage is reported in).
pub const LAYERS: [Layer; 5] = [
    Layer::Md,
    Layer::Service,
    Layer::Transport,
    Layer::Disk,
    Layer::Sched,
];

impl Layer {
    /// Stable lower-case name (journals, reproducer JSON, reports).
    pub fn name(self) -> &'static str {
        match self {
            Layer::Md => "md",
            Layer::Service => "service",
            Layer::Transport => "transport",
            Layer::Disk => "disk",
            Layer::Sched => "sched",
        }
    }
}

/// Which layers of a composed schedule are armed. Masking a layer
/// substitutes its quiet plan at run time **without** touching the
/// other layers' sampled schedules — each layer draws from its own
/// sentinel channel, so the mask is a pure projection. This is what
/// lets the cross-layer minimizer drop whole layers first and lets
/// the property tests assert that an all-masked schedule is
/// byte-identical to the fault-free reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerMask {
    /// MD layer armed.
    pub md: bool,
    /// Service layer armed.
    pub service: bool,
    /// Transport layer armed.
    pub transport: bool,
    /// Disk layer armed.
    pub disk: bool,
    /// Scheduler layer armed.
    pub sched: bool,
}

impl LayerMask {
    /// Every layer armed (how schedules are sampled).
    pub fn all() -> Self {
        LayerMask {
            md: true,
            service: true,
            transport: true,
            disk: true,
            sched: true,
        }
    }

    /// Every layer masked out (the fault-free projection).
    pub fn none() -> Self {
        LayerMask {
            md: false,
            service: false,
            transport: false,
            disk: false,
            sched: false,
        }
    }

    /// Whether `layer` is armed.
    pub fn get(self, layer: Layer) -> bool {
        match layer {
            Layer::Md => self.md,
            Layer::Service => self.service,
            Layer::Transport => self.transport,
            Layer::Disk => self.disk,
            Layer::Sched => self.sched,
        }
    }

    /// A copy with `layer` set to `on`.
    #[must_use = "set returns a new mask; it does not mutate in place"]
    pub fn set(self, layer: Layer, on: bool) -> Self {
        let mut m = self;
        match layer {
            Layer::Md => m.md = on,
            Layer::Service => m.service = on,
            Layer::Transport => m.transport = on,
            Layer::Disk => m.disk = on,
            Layer::Sched => m.sched = on,
        }
        m
    }

    /// A copy with `layer` masked out.
    #[must_use = "without returns a new mask; it does not mutate in place"]
    pub fn without(self, layer: Layer) -> Self {
        self.set(layer, false)
    }

    /// Number of armed layers.
    pub fn armed(self) -> usize {
        LAYERS.iter().filter(|&&l| self.get(l)).count()
    }
}

impl Default for LayerMask {
    fn default() -> Self {
        LayerMask::all()
    }
}

/// One joint fault schedule across all five layers, plus the mask
/// that projects it. The composed conductor (`cpc-gateway`) drives a
/// full serve-backed campaign under the masked projection; the
/// cross-layer minimizer (`cpc-charmm`) shrinks failing plans by
/// masking layers first, then ddmin-ing events within the survivors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComposedPlan {
    /// Which layers are armed (a pure projection over the schedules
    /// below — masking never changes them).
    pub mask: LayerMask,
    /// MD/network layer schedule.
    pub md: FaultPlan,
    /// Campaign-service layer schedule.
    pub service: ServiceFaultPlan,
    /// HTTP transport layer schedule.
    pub transport: TransportFaultPlan,
    /// Disk layer schedule.
    pub disk: DiskFaultPlan,
    /// Scheduler layer schedule (also fixes the pool thread count).
    pub sched: SchedFaultPlan,
}

impl ComposedPlan {
    /// The fault-free composed plan: empty schedules in every layer,
    /// all layers nominally armed, `threads` pool workers.
    pub fn quiet(threads: usize) -> Self {
        ComposedPlan {
            mask: LayerMask::all(),
            md: FaultPlan::none(),
            service: ServiceFaultPlan::none(),
            transport: TransportFaultPlan::none(),
            disk: DiskFaultPlan::none(),
            sched: SchedFaultPlan::quiet(threads),
        }
    }

    /// A copy under a different mask (the schedules are untouched).
    pub fn masked(&self, mask: LayerMask) -> Self {
        ComposedPlan {
            mask,
            ..self.clone()
        }
    }

    /// Raw event count of one layer's schedule, ignoring the mask.
    pub fn events_in(&self, layer: Layer) -> usize {
        match layer {
            Layer::Md => {
                (self.md.loss > 0.0) as usize
                    + self.md.degradations.len()
                    + self.md.stragglers.len()
                    + self.md.crashes.len()
                    + self.md.storage.len()
                    + self.md.sdc.len()
            }
            Layer::Service => self.service.faults.len(),
            Layer::Transport => self.transport.faults.len(),
            Layer::Disk => self.disk.faults.len(),
            Layer::Sched => self.sched.faults.len(),
        }
    }

    /// Armed event count: the sum over unmasked layers. A minimized
    /// reproducer's size is measured in these.
    pub fn events(&self) -> usize {
        LAYERS
            .iter()
            .filter(|&&l| self.mask.get(l))
            .map(|&l| self.events_in(l))
            .sum()
    }

    /// True when `layer` is both unmasked and non-empty — the
    /// definition of "exercised" for pairwise interaction coverage.
    pub fn armed(&self, layer: Layer) -> bool {
        self.mask.get(layer) && self.events_in(layer) > 0
    }

    /// The layers this plan actually exercises.
    pub fn armed_layers(&self) -> Vec<Layer> {
        LAYERS.iter().copied().filter(|&l| self.armed(l)).collect()
    }

    /// The MD schedule the conductor runs: the sampled plan when the
    /// layer is armed, the empty plan when masked.
    pub fn effective_md(&self) -> FaultPlan {
        if self.mask.md {
            self.md.clone()
        } else {
            FaultPlan::none()
        }
    }

    /// The service schedule under the mask.
    pub fn effective_service(&self) -> ServiceFaultPlan {
        if self.mask.service {
            self.service.clone()
        } else {
            ServiceFaultPlan::none()
        }
    }

    /// The transport schedule under the mask.
    pub fn effective_transport(&self) -> TransportFaultPlan {
        if self.mask.transport {
            self.transport.clone()
        } else {
            TransportFaultPlan::none()
        }
    }

    /// The disk schedule under the mask.
    pub fn effective_disk(&self) -> DiskFaultPlan {
        if self.mask.disk {
            self.disk.clone()
        } else {
            DiskFaultPlan::none()
        }
    }

    /// The scheduler schedule under the mask. The thread count is
    /// kept even when the layer is masked: determinism across thread
    /// counts is the executor's contract, and keeping it makes the
    /// masked projection a pure fault removal, not a topology change.
    pub fn effective_sched(&self) -> SchedFaultPlan {
        if self.mask.sched {
            self.sched.clone()
        } else {
            SchedFaultPlan::quiet(self.sched.threads)
        }
    }
}

/// The joint fault envelope of one composed campaign: the five
/// single-layer spaces side by side. [`ComposedFaultSpace::sample`]
/// draws one schedule per layer at the same `(seed, index)` — each
/// sampler already keys its `SplitMix64` stream with a distinct
/// sentinel channel, so the five draws are independent **by
/// construction**: the composed schedule of layer L equals the
/// single-layer campaign's schedule L at the same `(seed, index)`,
/// and masking or minimizing one layer can never perturb another's
/// events. That structural property is what the mask-independence
/// test pins.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComposedFaultSpace {
    /// MD/network fault envelope.
    pub md: FaultSpace,
    /// Campaign-service fault envelope.
    pub service: ServiceFaultSpace,
    /// Transport fault envelope.
    pub transport: TransportFaultSpace,
    /// Disk fault envelope.
    pub disk: DiskFaultSpace,
    /// Scheduler fault envelope.
    pub sched: SchedFaultSpace,
}

impl ComposedFaultSpace {
    /// Describes the joint envelope from the five per-layer
    /// envelopes.
    pub fn new(
        md: FaultSpace,
        service: ServiceFaultSpace,
        transport: TransportFaultSpace,
        disk: DiskFaultSpace,
        sched: SchedFaultSpace,
    ) -> Self {
        ComposedFaultSpace {
            md,
            service,
            transport,
            disk,
            sched,
        }
    }

    /// Draws composed schedule `index` of the campaign keyed by
    /// `seed`, every layer armed. Pure in `(space, seed, index)`.
    /// Every single-layer sampler draws at least one fault, so an
    /// unmasked composed schedule exercises all ten pairwise layer
    /// interactions.
    pub fn sample(&self, seed: u64, index: u64) -> ComposedPlan {
        ComposedPlan {
            mask: LayerMask::all(),
            md: self.md.sample(seed, index),
            service: self.service.sample(seed, index),
            transport: self.transport.sample(seed, index),
            disk: self.disk.sample(seed, index),
            sched: self.sched.sample(seed, index),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> FaultSpace {
        FaultSpace::new(4, 4, 8, 2.0, 100)
    }

    #[test]
    fn sampling_is_deterministic_in_seed_and_index() {
        let s = space();
        for i in 0..20 {
            assert_eq!(s.sample(7, i), s.sample(7, i));
        }
        let distinct = (0..20)
            .filter(|&i| s.sample(7, i) != s.sample(8, i))
            .count();
        assert!(distinct > 10, "seed must drive the draw");
    }

    #[test]
    fn service_sampling_is_deterministic_and_in_bounds() {
        let s = ServiceFaultSpace::new(12, 4);
        let mut kill_plans = 0;
        for i in 0..100 {
            let plan = s.sample(7, i);
            assert_eq!(plan, s.sample(7, i), "pure in (seed, index)");
            assert!((1..=3).contains(&plan.faults.len()));
            kill_plans += (plan.kills() > 0) as usize;
            for f in &plan.faults {
                match *f {
                    ServiceFault::WorkerKill { cells }
                    | ServiceFault::OrchestratorKillMidCommit { cells }
                    | ServiceFault::OrchestratorKillAfterCommit { cells } => {
                        assert!((1..=s.cells).contains(&cells))
                    }
                    ServiceFault::StaleLease { at_lease } => {
                        assert!((1..=s.cells).contains(&at_lease))
                    }
                    ServiceFault::TornQueueWrite { shard, keep_frac } => {
                        assert!(shard < s.shards);
                        assert!((0.0..1.0).contains(&keep_frac));
                    }
                    ServiceFault::TornResultWrite { keep_frac } => {
                        assert!((0.0..1.0).contains(&keep_frac))
                    }
                    ServiceFault::CacheBitFlip { bit, .. } => assert!(bit < 8),
                }
            }
        }
        assert!(kill_plans > 30, "kills dominate the mix: {kill_plans}");
        let distinct = (0..50)
            .filter(|&i| s.sample(7, i) != s.sample(8, i))
            .count();
        assert!(distinct > 25, "seed must drive the draw");
    }

    #[test]
    fn sampled_plans_validate_and_stay_survivable() {
        let s = space();
        for i in 0..200 {
            let plan = s.sample(42, i);
            plan.validate(s.ranks, s.nodes).unwrap();
            assert!(plan.max_retransmits.is_none(), "transport never gives up");
            let crashed: std::collections::HashSet<usize> =
                plan.crashes.iter().map(|c| c.rank).collect();
            assert!(crashed.len() < s.ranks, "at least one survivor");
            for st in &plan.stragglers {
                assert!(
                    (st.start == 0.0 && st.end == f64::MAX)
                        || (st.end.is_finite() && st.end <= 2.0 * s.horizon),
                    "straggler is either persistent or windowed in the horizon: {st:?}"
                );
            }
            for sdc in &plan.sdc {
                assert!(sdc.bit <= 63, "SDC {sdc:?} flips a real f64 bit");
                assert!((1..=s.steps).contains(&sdc.step));
                match sdc_class(sdc) {
                    SdcClass::Benign => assert!(sdc.bit <= BENIGN_MAX_BIT),
                    SdcClass::Detectable => {
                        assert_eq!(sdc.target, SdcTarget::Positions);
                        assert!(
                            sdc.step >= 2,
                            "detectable flips need a clean reference step: {sdc:?}"
                        );
                    }
                    SdcClass::Undetectable => {
                        // Gray flips never collide with the detectable
                        // class: position bit 62 always classifies as
                        // Detectable, so the sampler must avoid it.
                        assert!(sdc.bit > BENIGN_MAX_BIT);
                        assert!(
                            sdc.target == SdcTarget::Forces || sdc.bit != DETECTABLE_BIT,
                            "gray position flip drew the detectable bit: {sdc:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn the_space_is_actually_explored() {
        let s = space();
        let plans: Vec<FaultPlan> = (0..300).map(|i| s.sample(2002, i)).collect();
        assert!(plans.iter().any(|p| p.loss > 0.0));
        assert!(plans.iter().any(|p| !p.degradations.is_empty()));
        assert!(plans.iter().any(|p| !p.stragglers.is_empty()));
        assert!(
            plans
                .iter()
                .any(|p| p.stragglers.iter().any(|s| s.end == f64::MAX)),
            "persistent straggler class is sampled"
        );
        assert!(
            plans
                .iter()
                .any(|p| p.stragglers.iter().any(|s| s.end < f64::MAX)),
            "transient straggler class is sampled"
        );
        assert!(plans.iter().any(|p| !p.crashes.is_empty()));
        assert!(plans.iter().any(|p| !p.storage.is_empty()));
        assert!(plans.iter().any(|p| !p.sdc.is_empty()));
        assert!(
            plans
                .iter()
                .any(|p| p.sdc.iter().any(|f| f.bit == DETECTABLE_BIT)),
            "detectable SDC class is sampled"
        );
        assert!(
            plans
                .iter()
                .any(|p| p.sdc.iter().any(|f| f.bit <= BENIGN_MAX_BIT)),
            "benign SDC class is sampled"
        );
        let gray: Vec<&SdcFault> = plans
            .iter()
            .flat_map(|p| &p.sdc)
            .filter(|f| sdc_class(f) == SdcClass::Undetectable)
            .collect();
        assert!(!gray.is_empty(), "undetectable SDC class is sampled");
        assert!(
            gray.iter().any(|f| f.target == SdcTarget::Positions)
                && gray.iter().any(|f| f.target == SdcTarget::Forces),
            "gray flips hit both arrays"
        );
    }

    #[test]
    fn transport_sampling_is_deterministic_in_bounds_and_explores() {
        let s = TransportFaultSpace::new(12);
        let plans: Vec<TransportFaultPlan> = (0..200).map(|i| s.sample(7, i)).collect();
        for (i, plan) in plans.iter().enumerate() {
            assert_eq!(*plan, s.sample(7, i as u64), "pure in (seed, index)");
            assert!((1..=4).contains(&plan.faults.len()));
            for f in &plan.faults {
                match *f {
                    TransportFault::MalformedRequest { variant } => assert!(variant < 6),
                    TransportFault::TruncatedBody { keep_frac } => {
                        assert!((0.0..1.0).contains(&keep_frac))
                    }
                    TransportFault::SlowReader { chunk, delay } => {
                        assert!(chunk >= 1 && delay > 0.0)
                    }
                    TransportFault::MidResponseDisconnect { after } => assert!(after < 64),
                    TransportFault::ConnectionFlood { conns } => assert!((2..=7).contains(&conns)),
                    TransportFault::GatewayKill { cells, point } => {
                        assert!((1..=s.cells).contains(&cells));
                        assert!(point < 3);
                    }
                }
            }
        }
        // Every fault class appears somewhere in the stream.
        let has =
            |pred: &dyn Fn(&TransportFault) -> bool| plans.iter().flat_map(|p| &p.faults).any(pred);
        assert!(has(&|f| matches!(
            f,
            TransportFault::MalformedRequest { .. }
        )));
        assert!(has(&|f| matches!(f, TransportFault::TruncatedBody { .. })));
        assert!(has(&|f| matches!(f, TransportFault::SlowReader { .. })));
        assert!(has(&|f| matches!(
            f,
            TransportFault::MidResponseDisconnect { .. }
        )));
        assert!(has(&|f| matches!(
            f,
            TransportFault::ConnectionFlood { .. }
        )));
        assert!(has(&|f| matches!(f, TransportFault::GatewayKill { .. })));
        let distinct = (0..50)
            .filter(|&i| s.sample(7, i) != s.sample(8, i))
            .count();
        assert!(distinct > 25, "seed must drive the draw");
    }

    #[test]
    fn disk_sampling_is_deterministic_in_bounds_and_explores() {
        let s = DiskFaultSpace::new(40);
        let plans: Vec<DiskFaultPlan> = (0..200).map(|i| s.sample(7, i)).collect();
        for (i, plan) in plans.iter().enumerate() {
            assert_eq!(*plan, s.sample(7, i as u64), "pure in (seed, index)");
            assert!((1..=3).contains(&plan.faults.len()));
            assert!(plan.validate().is_ok());
            for f in &plan.faults {
                assert!((1..=s.ops).contains(&f.at()), "fault inside the horizon");
            }
        }
        // Every fault class appears somewhere in the stream, including
        // both power-loss lanes.
        let has =
            |pred: &dyn Fn(&DiskFault) -> bool| plans.iter().flat_map(|p| &p.faults).any(pred);
        assert!(has(&|f| matches!(f, DiskFault::EnospcTransient { .. })));
        assert!(has(&|f| matches!(f, DiskFault::EnospcPersistent { .. })));
        assert!(has(&|f| matches!(f, DiskFault::EioWrite { .. })));
        assert!(has(&|f| matches!(f, DiskFault::EioFsync { .. })));
        assert!(has(&|f| matches!(f, DiskFault::ShortWrite { .. })));
        assert!(has(&|f| matches!(f, DiskFault::RenameFail { .. })));
        assert!(has(&|f| matches!(
            f,
            DiskFault::PowerLoss { reorder: false, .. }
        )));
        assert!(has(&|f| matches!(
            f,
            DiskFault::PowerLoss { reorder: true, .. }
        )));
        let distinct = (0..50)
            .filter(|&i| s.sample(7, i) != s.sample(8, i))
            .count();
        assert!(distinct > 25, "seed must drive the draw");
    }

    #[test]
    fn sched_sampling_is_deterministic_in_bounds_and_explores() {
        let s = SchedFaultSpace::new(24);
        let plans: Vec<SchedFaultPlan> = (0..200).map(|i| s.sample(7, i)).collect();
        for (i, plan) in plans.iter().enumerate() {
            assert_eq!(*plan, s.sample(7, i as u64), "pure in (seed, index)");
            assert!([2, 4, 8].contains(&plan.threads));
            assert!((1..=3).contains(&plan.faults.len()));
            for f in &plan.faults {
                match *f {
                    SchedFault::StealStorm { from_task } => {
                        assert!((1..=s.cells).contains(&from_task));
                    }
                    SchedFault::WorkerPause {
                        worker,
                        at_point,
                        micros,
                    } => {
                        assert!(worker < plan.threads);
                        assert!((1..=4 * s.cells as u64).contains(&at_point));
                        assert!((1..=20_000).contains(&micros), "pauses stay short");
                    }
                    SchedFault::TaskPanic { at_start } => {
                        assert!((1..=s.cells).contains(&at_start), "panic must fire");
                    }
                    SchedFault::ThreadCountChange {
                        after_commits,
                        threads,
                    } => {
                        assert!((1..=s.cells).contains(&after_commits));
                        assert!([1, 2, 4, 8].contains(&threads));
                    }
                    SchedFault::LeaseExpiryRace { at_lease } => {
                        assert!((1..=s.cells).contains(&at_lease));
                    }
                }
            }
        }
        // Every fault class appears somewhere in the stream.
        let has =
            |pred: &dyn Fn(&SchedFault) -> bool| plans.iter().flat_map(|p| &p.faults).any(pred);
        assert!(has(&|f| matches!(f, SchedFault::StealStorm { .. })));
        assert!(has(&|f| matches!(f, SchedFault::WorkerPause { .. })));
        assert!(has(&|f| matches!(f, SchedFault::TaskPanic { .. })));
        assert!(has(&|f| matches!(f, SchedFault::ThreadCountChange { .. })));
        assert!(has(&|f| matches!(f, SchedFault::LeaseExpiryRace { .. })));
        let distinct = (0..50)
            .filter(|&i| s.sample(7, i) != s.sample(8, i))
            .count();
        assert!(distinct > 25, "seed must drive the draw");
    }

    #[test]
    fn sdc_classification_is_total_and_matches_the_constants() {
        let f = |target, bit| SdcFault {
            step: 1,
            target,
            atom: 0,
            axis: 0,
            bit,
        };
        assert_eq!(sdc_class(&f(SdcTarget::Forces, 0)), SdcClass::Benign);
        assert_eq!(
            sdc_class(&f(SdcTarget::Positions, BENIGN_MAX_BIT)),
            SdcClass::Benign
        );
        assert_eq!(
            sdc_class(&f(SdcTarget::Positions, DETECTABLE_BIT)),
            SdcClass::Detectable
        );
        // Bit 62 on a *force* is gray: the detectable guarantee only
        // holds for positions.
        assert_eq!(
            sdc_class(&f(SdcTarget::Forces, DETECTABLE_BIT)),
            SdcClass::Undetectable
        );
        for bit in (BENIGN_MAX_BIT + 1)..=63 {
            if bit == DETECTABLE_BIT {
                continue;
            }
            assert_eq!(
                sdc_class(&f(SdcTarget::Positions, bit)),
                SdcClass::Undetectable,
                "bit {bit}"
            );
        }
    }

    fn composed_space() -> ComposedFaultSpace {
        ComposedFaultSpace::new(
            space(),
            ServiceFaultSpace::new(6, 4),
            TransportFaultSpace::new(6),
            DiskFaultSpace::new(200),
            SchedFaultSpace::new(6),
        )
    }

    #[test]
    fn composed_sampling_is_deterministic_and_every_layer_armed() {
        let s = composed_space();
        for i in 0..50 {
            let plan = s.sample(42, i);
            assert_eq!(plan, s.sample(42, i), "pure in (seed, index)");
            assert_eq!(plan.mask, LayerMask::all());
            for layer in LAYERS {
                assert!(
                    plan.armed(layer),
                    "schedule {i}: layer {} must draw at least one fault",
                    layer.name()
                );
            }
        }
    }

    #[test]
    fn composed_layers_match_the_single_layer_campaigns() {
        // Structural independence: the composed draw of each layer IS
        // the single-layer campaign's draw at the same (seed, index) —
        // the sentinel channels never share stream state.
        let s = composed_space();
        for i in 0..20 {
            let plan = s.sample(7, i);
            assert_eq!(plan.md, s.md.sample(7, i));
            assert_eq!(plan.service, s.service.sample(7, i));
            assert_eq!(plan.transport, s.transport.sample(7, i));
            assert_eq!(plan.disk, s.disk.sample(7, i));
            assert_eq!(plan.sched, s.sched.sample(7, i));
        }
    }

    #[test]
    fn masking_projects_without_perturbing_other_layers() {
        let s = composed_space();
        let plan = s.sample(11, 3);
        for layer in LAYERS {
            let masked = plan.masked(plan.mask.without(layer));
            assert!(!masked.armed(layer));
            assert_eq!(masked.events(), plan.events() - plan.events_in(layer));
            // The un-masked layers' schedules are byte-for-byte the
            // originals.
            assert_eq!(masked.md, plan.md);
            assert_eq!(masked.service, plan.service);
            assert_eq!(masked.transport, plan.transport);
            assert_eq!(masked.disk, plan.disk);
            assert_eq!(masked.sched, plan.sched);
        }
        let quiet = plan.masked(LayerMask::none());
        assert_eq!(quiet.events(), 0);
        assert_eq!(quiet.effective_md(), FaultPlan::none());
        assert_eq!(quiet.effective_service(), ServiceFaultPlan::none());
        assert_eq!(quiet.effective_transport(), TransportFaultPlan::none());
        assert_eq!(quiet.effective_disk(), DiskFaultPlan::none());
        assert_eq!(
            quiet.effective_sched(),
            SchedFaultPlan::quiet(plan.sched.threads),
            "masking the sched layer keeps the thread count"
        );
    }

    #[test]
    fn composed_plan_round_trips_through_json() {
        let s = composed_space();
        let plan = s.sample(23, 5).masked(LayerMask::all().without(Layer::Disk));
        let json = serde_json::to_string(&plan).expect("serializes");
        let back: ComposedPlan = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(back, plan);
    }
}
