//! # cpc-cluster
//!
//! A virtual PC cluster for reproducing the paper's platform factors
//! without the 2002 hardware. Ranks execute real code on real threads;
//! *time* is simulated deterministically:
//!
//! * [`netmodel`] — calibrated LogGP-style models of the paper's three
//!   communication stacks (TCP/IP on Gigabit Ethernet, SCore, Myrinet)
//!   plus Fast Ethernet, including TCP congestion collapse, the
//!   tiny-message delayed-ACK pathology and SMP interrupt serialization,
//! * [`cost`] — a Pentium III / 1 GHz operation cost model charged from
//!   the MD kernels' operation counts,
//! * [`cluster`] — rank/node topology (uni- vs dual-processor nodes),
//! * [`engine`] — the virtual-time message-passing engine,
//! * [`stats`] — the computation / communication / synchronization
//!   breakdown and throughput sampling the paper reports,
//! * [`faults`] — deterministic fault injection (lossy links with
//!   explicit RTO/backoff retransmission, transient degradation,
//!   straggler nodes, rank crashes) for graceful-degradation studies.
//!
//! ## Example
//!
//! ```
//! use cpc_cluster::{run_cluster, ClusterConfig, MsgClass, NetworkKind, Phase};
//!
//! let cfg = ClusterConfig::uni(2, NetworkKind::MyrinetGm);
//! let out = run_cluster(cfg, |ctx| {
//!     ctx.set_phase(Phase::Classic);
//!     if ctx.rank() == 0 {
//!         ctx.send(1, 0, vec![42.0], MsgClass::Payload, cpc_cluster::OpShape::p2p());
//!     } else {
//!         assert_eq!(ctx.recv(0, 0).data[0], 42.0);
//!     }
//!     ctx.now()
//! });
//! assert!(out[1].finish_time > 0.0);
//! ```

#![warn(missing_docs)]

pub mod cluster;
pub mod cost;
pub mod engine;
pub mod faults;
pub mod fuzz;
pub mod netmodel;
pub mod rng;
pub mod rtt;
pub mod stats;
pub mod trace;

pub use cluster::ClusterConfig;
pub use cost::{CostModel, CpuConfig, PIII_1GHZ};
pub use engine::{
    elapsed_time, run_cluster, run_cluster_faulty, try_run_cluster, CommError, FaultyOutcome, Msg,
    RankCtx, RankOutcome, SendOutcome, SimError, CRASH_TAG,
};
pub use faults::{
    FaultPlan, LinkDegradation, LinkFault, RankCrash, SdcFault, SdcTarget, StorageFault,
    StorageFaultKind, Straggler,
};
pub use fuzz::{
    sdc_class, ComposedFaultSpace, ComposedPlan, DiskFaultSpace, FaultSpace, Layer, LayerMask,
    SchedFaultSpace, SdcClass, ServiceFault, ServiceFaultPlan, ServiceFaultSpace, TransportFault,
    TransportFaultPlan, TransportFaultSpace, LAYERS,
};
pub use netmodel::{
    FaultyTransfer, NetworkKind, NetworkParams, OpShape, TransferCtx, TransferTime,
};
pub use rng::SplitMix64;
pub use rtt::RttEstimator;
pub use stats::{
    summarize_throughput, MsgClass, Phase, PhaseBucket, RankStats, ThroughputSample,
    ThroughputSummary,
};
pub use trace::{render_timeline, summarize as summarize_trace, TraceEvent, TraceSummary};
