//! Per-rank timing statistics: the paper's breakdown of every phase
//! into computation, communication (data transfer) and synchronization
//! (control transfer), plus per-node communication-speed samples
//! (Figure 7).

use serde::{Deserialize, Serialize};

/// Phases of the CHARMM energy calculation (paper Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// The classic (time-domain) energy calculation.
    Classic,
    /// The PME (frequency-domain) energy calculation.
    Pme,
    /// Integration and bookkeeping.
    Integrate,
    /// Setup, I/O, everything else.
    Other,
    /// Failure recovery: shrinking the decomposition and restoring
    /// state from a checkpoint after a rank crash.
    Recovery,
}

impl Phase {
    /// All phases in a fixed order (array indexing).
    pub const ALL: [Phase; 5] = [
        Phase::Classic,
        Phase::Pme,
        Phase::Integrate,
        Phase::Other,
        Phase::Recovery,
    ];

    pub(crate) fn index(self) -> usize {
        match self {
            Phase::Classic => 0,
            Phase::Pme => 1,
            Phase::Integrate => 2,
            Phase::Other => 3,
            Phase::Recovery => 4,
        }
    }
}

/// How a message participates in the paper's time classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgClass {
    /// Data transfer: counted as communication time.
    Payload,
    /// Control transfer / coherency: counted as synchronization time.
    Control,
}

/// Time bucket for one phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseBucket {
    /// Computation seconds.
    pub comp: f64,
    /// Communication (data transfer) seconds.
    pub comm: f64,
    /// Synchronization (control transfer) seconds.
    pub sync: f64,
}

impl PhaseBucket {
    /// Total wall-clock seconds in this phase.
    pub fn total(&self) -> f64 {
        self.comp + self.comm + self.sync
    }

    /// Adds another bucket.
    pub fn add(&mut self, other: &PhaseBucket) {
        self.comp += other.comp;
        self.comm += other.comm;
        self.sync += other.sync;
    }

    /// Books computation time. Debug builds reject negative or
    /// non-finite bookings so fault-path re-costing bugs fail fast
    /// instead of corrupting reports.
    pub fn book_comp(&mut self, seconds: f64) {
        debug_assert!(
            seconds.is_finite() && seconds >= 0.0,
            "invalid computation booking: {seconds}"
        );
        self.comp += seconds;
    }

    /// Books communication (data transfer) time; see
    /// [`book_comp`](Self::book_comp) for the validity contract.
    pub fn book_comm(&mut self, seconds: f64) {
        debug_assert!(
            seconds.is_finite() && seconds >= 0.0,
            "invalid communication booking: {seconds}"
        );
        self.comm += seconds;
    }

    /// Books synchronization (control transfer) time; see
    /// [`book_comp`](Self::book_comp) for the validity contract.
    pub fn book_sync(&mut self, seconds: f64) {
        debug_assert!(
            seconds.is_finite() && seconds >= 0.0,
            "invalid synchronization booking: {seconds}"
        );
        self.sync += seconds;
    }
}

/// One observed transfer rate (Figure 7's response variable).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThroughputSample {
    /// Node that observed the transfer (receiver side).
    pub node: usize,
    /// Message size in bytes.
    pub bytes: usize,
    /// Achieved rate in bytes/second over the wire portion.
    pub rate: f64,
}

/// Statistics collected by one rank over a run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RankStats {
    /// Per-phase time buckets, one per [`Phase`], in `Phase::ALL` order.
    pub buckets: [PhaseBucket; 5],
    /// Per-transfer rate samples for payload messages.
    pub throughput: Vec<ThroughputSample>,
    /// Total payload bytes sent.
    pub bytes_sent: u64,
    /// Total messages sent (any class).
    pub msgs_sent: u64,
    /// Total retransmission rounds this rank's sends went through
    /// (always 0 on a fault-free run).
    pub retransmits: u64,
    /// Messages this rank sent that the transport gave up on (each
    /// became a tombstone at the receiver).
    pub msgs_lost: u64,
    /// Per-message trace (populated only when
    /// [`crate::ClusterConfig::record_trace`] is set).
    pub trace: Vec<crate::trace::TraceEvent>,
}

impl RankStats {
    /// Bucket for a phase.
    pub fn bucket(&self, phase: Phase) -> &PhaseBucket {
        &self.buckets[phase.index()]
    }

    /// Mutable bucket for a phase.
    pub fn bucket_mut(&mut self, phase: Phase) -> &mut PhaseBucket {
        &mut self.buckets[phase.index()]
    }

    /// Sum over all phases.
    pub fn total(&self) -> PhaseBucket {
        let mut t = PhaseBucket::default();
        for b in &self.buckets {
            t.add(b);
        }
        t
    }
}

/// Aggregate min/avg/max of throughput samples (MB/s), per the paper's
/// Figure 7 presentation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThroughputSummary {
    /// Average rate, MB/s.
    pub avg: f64,
    /// Minimum observed rate, MB/s.
    pub min: f64,
    /// Maximum observed rate, MB/s.
    pub max: f64,
    /// Number of samples.
    pub samples: usize,
}

/// Summarizes throughput samples into MB/s statistics. Returns `None`
/// when there are no samples.
pub fn summarize_throughput<'a>(
    samples: impl IntoIterator<Item = &'a ThroughputSample>,
) -> Option<ThroughputSummary> {
    let mb = 1e6;
    let mut n = 0usize;
    let mut sum = 0.0;
    let mut min = f64::INFINITY;
    let mut max = 0.0f64;
    for s in samples {
        let r = s.rate / mb;
        sum += r;
        min = min.min(r);
        max = max.max(r);
        n += 1;
    }
    if n == 0 {
        None
    } else {
        Some(ThroughputSummary {
            avg: sum / n as f64,
            min,
            max,
            samples: n,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_totals() {
        let mut b = PhaseBucket {
            comp: 1.0,
            comm: 0.5,
            sync: 0.25,
        };
        assert_eq!(b.total(), 1.75);
        b.add(&PhaseBucket {
            comp: 1.0,
            comm: 1.0,
            sync: 1.0,
        });
        assert_eq!(b.total(), 4.75);
    }

    #[test]
    fn rank_stats_aggregate() {
        let mut s = RankStats::default();
        s.bucket_mut(Phase::Classic).comp = 2.0;
        s.bucket_mut(Phase::Pme).comm = 1.0;
        s.bucket_mut(Phase::Integrate).sync = 0.5;
        let t = s.total();
        assert_eq!(t.comp, 2.0);
        assert_eq!(t.comm, 1.0);
        assert_eq!(t.sync, 0.5);
    }

    #[test]
    fn throughput_summary() {
        let samples = vec![
            ThroughputSample {
                node: 0,
                bytes: 1000,
                rate: 10e6,
            },
            ThroughputSample {
                node: 0,
                bytes: 1000,
                rate: 30e6,
            },
            ThroughputSample {
                node: 1,
                bytes: 1000,
                rate: 20e6,
            },
        ];
        let s = summarize_throughput(&samples).unwrap();
        assert_eq!(s.samples, 3);
        assert!((s.avg - 20.0).abs() < 1e-9);
        assert_eq!(s.min, 10.0);
        assert_eq!(s.max, 30.0);
    }

    #[test]
    fn empty_throughput_is_none() {
        assert!(summarize_throughput(&[]).is_none());
    }

    #[test]
    fn phase_indices_are_unique() {
        let mut seen = [false; Phase::ALL.len()];
        for p in Phase::ALL {
            assert!(!seen[p.index()]);
            seen[p.index()] = true;
        }
    }

    #[test]
    fn booking_helpers_accumulate() {
        let mut b = PhaseBucket::default();
        b.book_comp(1.0);
        b.book_comm(0.5);
        b.book_sync(0.25);
        b.book_comp(0.0); // zero is a valid booking
        assert_eq!(b.total(), 1.75);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "invalid communication booking")]
    fn negative_booking_is_rejected_in_debug() {
        PhaseBucket::default().book_comm(-1e-9);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "invalid synchronization booking")]
    fn nan_booking_is_rejected_in_debug() {
        PhaseBucket::default().book_sync(f64::NAN);
    }
}
