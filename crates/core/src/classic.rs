//! The parallel *classic* energy calculation (paper Figure 2, left):
//! every rank evaluates its block of the replicated pair list and the
//! bonded terms, then partial forces and energies are combined with an
//! all-to-all collective (CHARMM's global force combine).

use crate::decomp::{balanced_pair_cuts, balanced_pair_cuts_weighted, classic_partition};
use cpc_cluster::{CostModel, Phase};
use cpc_md::bonded::{bonded_energy_forces_range, BondedEnergies};
use cpc_md::nonbonded::{nonbonded_energy_forces, NonbondedEnergies, NonbondedOptions};
use cpc_md::{System, Vec3};
use cpc_mpi::{CombineAlgo, Comm};

/// Result of one classic energy evaluation, identical on every rank
/// after the combine.
#[derive(Debug, Clone)]
pub struct ClassicResult {
    /// Bonded energies (global).
    pub bonded: BondedEnergies,
    /// Nonbonded energies (global).
    pub nonbonded: NonbondedEnergies,
    /// Global forces (sum of all ranks' partials).
    pub forces: Vec<Vec3>,
}

impl ClassicResult {
    /// Total classic potential energy.
    pub fn energy(&self) -> f64 {
        self.bonded.total() + self.nonbonded.total()
    }

    /// Bit-exact ABFT digest over the combined partial energies and
    /// force array (see `cpc_md::abft`). Pure side read: the digest
    /// never feeds back into the accumulation it checks.
    pub fn abft_digest(&self) -> u64 {
        cpc_md::abft::combine_digests(&[
            self.bonded.abft_digest(),
            self.nonbonded.abft_digest(),
            cpc_md::abft::vec3_digest(&self.forces),
        ])
    }
}

/// Evaluates the classic energy in parallel. `pairs` is the (replicated)
/// pair list; all ranks must pass identical arguments.
///
/// Charges computation time from operation counts and books the force
/// combine as communication in the `Classic` phase.
pub fn classic_energy_parallel(
    comm: &mut Comm<'_>,
    system: &System,
    pairs: &[(u32, u32)],
    opts: &NonbondedOptions,
    cost: &CostModel,
) -> ClassicResult {
    classic_energy_parallel_with(comm, system, pairs, opts, cost, CombineAlgo::Flat)
}

/// [`classic_energy_parallel`] with an explicit combine algorithm (the
/// ablation hook).
pub fn classic_energy_parallel_with(
    comm: &mut Comm<'_>,
    system: &System,
    pairs: &[(u32, u32)],
    opts: &NonbondedOptions,
    cost: &CostModel,
    combine: CombineAlgo,
) -> ClassicResult {
    classic_energy_parallel_weighted(comm, system, pairs, opts, cost, combine, None)
}

/// [`classic_energy_parallel_with`] with optional per-rank capacity
/// weights for the nonbonded pair partition (the degraded-mode
/// rebalancing hook: a suspected straggler gets a share proportional
/// to its measured speed). `caps[r]` weights logical rank `r`; `None`
/// — and uniform weights — reproduce the unweighted cuts exactly, so
/// fault-free runs stay bit-identical.
pub fn classic_energy_parallel_weighted(
    comm: &mut Comm<'_>,
    system: &System,
    pairs: &[(u32, u32)],
    opts: &NonbondedOptions,
    cost: &CostModel,
    combine: CombineAlgo,
    caps: Option<&[f64]>,
) -> ClassicResult {
    let p = comm.size();
    let r = comm.rank();
    comm.ctx().set_phase(Phase::Classic);

    let topo = &system.topology;
    let part = classic_partition(
        pairs.len(),
        topo.bonds.len(),
        topo.angles.len(),
        topo.dihedrals.len(),
        topo.impropers.len(),
        topo.n_atoms(),
        p,
        r,
    );

    let n = system.n_atoms();
    let mut forces = vec![Vec3::ZERO; n];

    // Nonbonded work: CHARMM assigns pair (i, j) to the owner of atom
    // i, with atom blocks weighted by neighbour count so the pair work
    // is balanced (granularity leaves a small residual imbalance that
    // shows up as wait time at the combine, as in the real code).
    let cuts = match caps {
        Some(c) => balanced_pair_cuts_weighted(pairs, p, c),
        None => balanced_pair_cuts(pairs, p),
    };
    let my_pairs = &pairs[cuts[r]..cuts[r + 1]];
    let (nonbonded, pairs_evaluated) = nonbonded_energy_forces(
        topo,
        &system.pbox,
        &system.positions,
        my_pairs,
        opts,
        &mut forces,
    );

    // Bonded blocks.
    let (bonded, bonded_terms) = bonded_energy_forces_range(
        topo,
        &system.pbox,
        &system.positions,
        &mut forces,
        part.bonds.clone(),
        part.angles.clone(),
        part.dihedrals.clone(),
        part.impropers.clone(),
    );

    // Charge the computation.
    let skipped = my_pairs.len() - pairs_evaluated;
    let t = pairs_evaluated as f64 * cost.pair_eval
        + skipped as f64 * cost.list_pair
        + bonded_terms as f64 * cost.bonded_term;
    comm.ctx().charge_compute(t);

    // CHARMM-style combine: forces and energies in one master-based
    // global sum (GCOMB — the "all-to-all collective" of Figure 2).
    let mut buf = Vec::with_capacity(3 * n + 6);
    for f in &forces {
        buf.extend_from_slice(&[f.x, f.y, f.z]);
    }
    buf.extend_from_slice(&[
        bonded.bond,
        bonded.angle,
        bonded.dihedral,
        bonded.improper,
        nonbonded.vdw,
        nonbonded.elec,
    ]);
    comm.allreduce_with(combine, &mut buf);

    for (i, f) in forces.iter_mut().enumerate() {
        *f = Vec3::new(buf[3 * i], buf[3 * i + 1], buf[3 * i + 2]);
    }
    let e = &buf[3 * n..];
    ClassicResult {
        bonded: BondedEnergies {
            bond: e[0],
            angle: e[1],
            dihedral: e[2],
            improper: e[3],
        },
        nonbonded: NonbondedEnergies {
            vdw: e[4],
            elec: e[5],
        },
        forces,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpc_cluster::{run_cluster, ClusterConfig, NetworkKind, PIII_1GHZ};
    use cpc_md::builder::water_box;
    use cpc_md::neighbor::NeighborList;
    use cpc_md::{EnergyModel, Evaluator};
    use cpc_mpi::Middleware;

    #[test]
    fn parallel_matches_sequential_for_all_rank_counts() {
        let system = water_box(3, 3.1);
        // Sequential reference.
        let mut evaluator = Evaluator::new(EnergyModel::Classic);
        let mut f_ref = vec![Vec3::ZERO; system.n_atoms()];
        let (report, _) = evaluator.evaluate(&system, &mut f_ref);

        let opts = NonbondedOptions::classic();
        let list = NeighborList::build(
            &system.topology,
            &system.pbox,
            &system.positions,
            opts.cutoff,
            2.0,
        );

        for p in [1usize, 2, 3, 4, 8] {
            let cfg = ClusterConfig::uni(p, NetworkKind::ScoreGigE);
            let sys = &system;
            let pairs = &list.pairs;
            let out = run_cluster(cfg, |ctx| {
                let mut comm = Comm::new(ctx, Middleware::Mpi);
                classic_energy_parallel(&mut comm, sys, pairs, &opts, &PIII_1GHZ)
            });
            for o in &out {
                let got = &o.result;
                assert!(
                    (got.energy() - report.classic_part()).abs() < 1e-8,
                    "p={p}: {} vs {}",
                    got.energy(),
                    report.classic_part()
                );
                for (a, b) in got.forces.iter().zip(&f_ref) {
                    assert!((*a - *b).norm() < 1e-8, "p={p}");
                }
            }
        }
    }

    #[test]
    fn compute_time_shrinks_with_ranks() {
        let system = water_box(3, 3.1);
        let opts = NonbondedOptions::classic();
        let list = NeighborList::build(
            &system.topology,
            &system.pbox,
            &system.positions,
            opts.cutoff,
            2.0,
        );
        let comp_time = |p: usize| {
            let cfg = ClusterConfig::uni(p, NetworkKind::MyrinetGm);
            let sys = &system;
            let pairs = &list.pairs;
            let out = run_cluster(cfg, |ctx| {
                let mut comm = Comm::new(ctx, Middleware::Mpi);
                classic_energy_parallel(&mut comm, sys, pairs, &opts, &PIII_1GHZ);
            });
            out.iter()
                .map(|o| o.stats.bucket(Phase::Classic).comp)
                .fold(0.0, f64::max)
        };
        let t1 = comp_time(1);
        let t4 = comp_time(4);
        // Atom-block decomposition is deliberately imbalanced (as in
        // CHARMM); the slowest rank still gets well under half.
        assert!(t4 < 0.6 * t1, "t1={t1} t4={t4}");
    }

    #[test]
    fn combine_books_communication_time() {
        let system = water_box(2, 3.1);
        let opts = NonbondedOptions::classic();
        let list = NeighborList::build(
            &system.topology,
            &system.pbox,
            &system.positions,
            opts.cutoff,
            2.0,
        );
        let cfg = ClusterConfig::uni(4, NetworkKind::TcpGigE);
        let sys = &system;
        let pairs = &list.pairs;
        let out = run_cluster(cfg, |ctx| {
            let mut comm = Comm::new(ctx, Middleware::Mpi);
            classic_energy_parallel(&mut comm, sys, pairs, &opts, &PIII_1GHZ);
        });
        assert!(out
            .iter()
            .any(|o| o.stats.bucket(Phase::Classic).comm > 0.0));
    }
}
