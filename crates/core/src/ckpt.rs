//! Durable checkpoint store: atomic writes, generation rotation, and
//! checksum-verified restore with generation-by-generation fallback.
//!
//! The in-memory checkpoints of [`crate::recover`] survive rank
//! crashes (the surviving *processes* hold the state) but not a full
//! process restart. This store persists each checkpoint as an
//! [`MdSnapshot`] container on disk:
//!
//! * **Atomicity** — every write goes through
//!   [`cpc_vfs::atomic_publish`]: a temporary file in the same
//!   directory, `fsync`ed, renamed over the final name, and the
//!   directory `fsync`ed — with every failure, *including the
//!   directory fsync*, propagated to the caller (a swallowed dir-fsync
//!   error would let a checkpoint silently fail to survive power
//!   loss). A crash mid-write leaves either the old generation or the
//!   new one, never a half-file (unless a scheduled
//!   [`StorageFaultKind::TornWrite`] models exactly that).
//! * **Rotation** — only the newest `keep` generations are retained,
//!   bounding disk use over arbitrarily long campaigns.
//! * **Verified fallback** — restore walks generations newest-first,
//!   decoding and checksum-verifying each; corrupt or truncated files
//!   are skipped (with a [`FallbackNote`] saying why) until an intact
//!   snapshot is found.
//!
//! Storage faults from a [`FaultPlan`](cpc_cluster::FaultPlan) are
//! applied here, deterministically, at write time: on a save at
//! virtual time `now`, every scheduled fault with `at <= now` that has
//! not fired yet corrupts *this* write. No RNG draw is consumed and no
//! virtual time is charged, so a storage-fault plan can never perturb
//! the simulation's calibrated timing.

use cpc_cluster::{StorageFault, StorageFaultKind};
use cpc_md::{MdSnapshot, SnapshotError};
use cpc_vfs::{real_fs, SharedFs};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// File extension of stored snapshot generations.
pub const CHECKPOINT_EXT: &str = "cpcsnap";

/// Result of a newest-first restore walk: the first intact
/// `(generation, snapshot)` if any, plus a note for every generation
/// skipped on the way down.
pub type RestoreOutcome = (Option<(u64, MdSnapshot)>, Vec<FallbackNote>);

/// Configuration of the durable checkpoint layer of a fault-tolerant
/// run (see [`crate::recover::FaultConfig::durable`]).
#[derive(Debug, Clone)]
pub struct DurableConfig {
    /// Directory the generations live in (created if absent).
    pub dir: PathBuf,
    /// Number of newest generations retained on disk.
    pub keep: usize,
    /// When true, the run first restores the newest intact snapshot
    /// from `dir` and continues from it instead of starting at step 0.
    pub resume: bool,
}

impl DurableConfig {
    /// Durable checkpointing into `dir` keeping 3 generations, no
    /// resume.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DurableConfig {
            dir: dir.into(),
            keep: 3,
            resume: false,
        }
    }

    /// Sets the number of retained generations (minimum 1).
    pub fn with_keep(mut self, keep: usize) -> Self {
        self.keep = keep.max(1);
        self
    }

    /// Requests resume-from-disk at run start.
    pub fn with_resume(mut self, resume: bool) -> Self {
        self.resume = resume;
        self
    }
}

/// Why a generation was skipped during a fallback restore.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FallbackNote {
    /// Generation (step index) of the skipped snapshot.
    pub generation: u64,
    /// Human-readable cause: checksum mismatch, truncation, I/O error.
    pub reason: String,
}

/// Typed failure of a strict restore (see
/// [`CheckpointStore::restore_strict`]).
#[derive(Debug)]
pub enum RestoreError {
    /// The store directory itself could not be read.
    Io(io::Error),
    /// Generations were present on disk but every one of them failed
    /// to decode or verify: the durable state is unrecoverable and the
    /// run must be classified as diverged, not silently restarted.
    NoIntactGeneration {
        /// One note per corrupt generation, newest first.
        notes: Vec<FallbackNote>,
    },
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::Io(e) => write!(f, "checkpoint store unreadable: {e}"),
            RestoreError::NoIntactGeneration { notes } => {
                write!(
                    f,
                    "all {} checkpoint generations are corrupt ({})",
                    notes.len(),
                    notes
                        .iter()
                        .map(|n| format!("gen {}: {}", n.generation, n.reason))
                        .collect::<Vec<_>>()
                        .join("; ")
                )
            }
        }
    }
}

impl std::error::Error for RestoreError {}

impl From<io::Error> for RestoreError {
    fn from(e: io::Error) -> Self {
        RestoreError::Io(e)
    }
}

/// Typed failure of a durable checkpoint save. Every phase of the
/// publish is distinguished so callers can tell a snapshot that never
/// reached disk from one that reached disk but may not survive power
/// loss — the directory-fsync failure this store used to swallow with
/// `let _ = d.sync_all()`.
#[derive(Debug)]
pub enum SaveError {
    /// Writing, fsyncing, or renaming the snapshot failed: the new
    /// generation is not on disk (the old one, if any, still is).
    Publish(io::Error),
    /// The directory fsync after the rename failed: the bytes are
    /// fsynced but the *name* may not survive power loss, so the
    /// generation cannot be trusted durable.
    DirSync(io::Error),
    /// Deleting rotated-out generations failed; the new generation is
    /// durable but the store exceeds its retention bound.
    Rotate(io::Error),
}

impl std::fmt::Display for SaveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SaveError::Publish(e) => write!(f, "checkpoint publish failed: {e}"),
            SaveError::DirSync(e) => {
                write!(
                    f,
                    "checkpoint directory fsync failed (rename not durable): {e}"
                )
            }
            SaveError::Rotate(e) => write!(f, "checkpoint rotation failed: {e}"),
        }
    }
}

impl std::error::Error for SaveError {}

impl SaveError {
    /// The underlying I/O error, whatever the phase.
    pub fn io(&self) -> &io::Error {
        match self {
            SaveError::Publish(e) | SaveError::DirSync(e) | SaveError::Rotate(e) => e,
        }
    }
}

/// A directory of rotated, checksummed snapshot generations.
pub struct CheckpointStore {
    dir: PathBuf,
    fs: SharedFs,
    keep: usize,
    /// Scheduled corruptions, ascending by trigger time; drained from
    /// the front as writes consume them.
    fault_schedule: Vec<StorageFault>,
    /// Index of the next unfired fault. Shared (see
    /// [`with_fault_cursor`](Self::with_fault_cursor)) so that when
    /// several store instances model the *same* disk — one per rank,
    /// with the writer role moving after a crash — each scheduled
    /// fault corrupts exactly one write plan-wide, not one write per
    /// writer. Writers are serialized by the MD driver (only the
    /// lowest live member saves), so plain load/store ordering is
    /// enough.
    next_fault: Arc<AtomicUsize>,
}

impl std::fmt::Debug for CheckpointStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CheckpointStore")
            .field("dir", &self.dir)
            .field("keep", &self.keep)
            .field("fault_schedule", &self.fault_schedule)
            .finish()
    }
}

impl CheckpointStore {
    /// Opens (creating if needed) a store in `dir` retaining `keep`
    /// generations, on the real filesystem.
    pub fn open(dir: impl Into<PathBuf>, keep: usize) -> io::Result<Self> {
        Self::open_on(real_fs(), dir, keep)
    }

    /// Opens a store on an injected filesystem.
    pub fn open_on(fs: SharedFs, dir: impl Into<PathBuf>, keep: usize) -> io::Result<Self> {
        let dir = dir.into();
        fs.create_dir_all(&dir)?;
        Ok(CheckpointStore {
            dir,
            fs,
            keep: keep.max(1),
            fault_schedule: Vec::new(),
            next_fault: Arc::new(AtomicUsize::new(0)),
        })
    }

    /// Attaches a storage-fault schedule (use
    /// [`FaultPlan::storage_schedule`](cpc_cluster::FaultPlan::storage_schedule),
    /// which sorts by trigger time). The consumption cursor is private
    /// to this store instance.
    pub fn with_fault_schedule(mut self, schedule: Vec<StorageFault>) -> Self {
        self.fault_schedule = schedule;
        self.next_fault = Arc::new(AtomicUsize::new(0));
        self
    }

    /// Attaches a storage-fault schedule whose consumption cursor is
    /// shared with other store instances. Per-rank stores of one run
    /// all point at the same directory — the same modeled disk — and
    /// the writer role migrates when the writing rank crashes; sharing
    /// the cursor keeps each scheduled fault to exactly one fired
    /// corruption plan-wide instead of re-firing under every new
    /// writer.
    pub fn with_fault_cursor(
        mut self,
        schedule: Vec<StorageFault>,
        cursor: Arc<AtomicUsize>,
    ) -> Self {
        self.fault_schedule = schedule;
        self.next_fault = cursor;
        self
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_for(&self, generation: u64) -> PathBuf {
        self.dir
            .join(format!("ckpt-{generation:010}.{CHECKPOINT_EXT}"))
    }

    /// Generations currently on disk, ascending.
    pub fn generations(&self) -> io::Result<Vec<u64>> {
        let mut gens = Vec::new();
        for path in self.fs.read_dir(&self.dir)? {
            let Some(name) = path.file_name().map(|n| n.to_string_lossy().into_owned()) else {
                continue;
            };
            if let Some(num) = name
                .strip_prefix("ckpt-")
                .and_then(|rest| rest.strip_suffix(&format!(".{CHECKPOINT_EXT}")))
            {
                if let Ok(g) = num.parse::<u64>() {
                    gens.push(g);
                }
            }
        }
        gens.sort_unstable();
        Ok(gens)
    }

    /// Durably writes `snapshot` as generation `snapshot.step`,
    /// applying any storage faults due at virtual time `now`, then
    /// rotates old generations. Returns the final path (which may not
    /// exist if a [`StorageFaultKind::Missing`] fault fired). Every
    /// failure — including the directory fsync that makes the rename
    /// durable — propagates as a typed [`SaveError`].
    pub fn save(&mut self, snapshot: &MdSnapshot, now: f64) -> Result<PathBuf, SaveError> {
        let mut bytes = snapshot.encode();
        let mut missing = false;
        let mut pos = self.next_fault.load(Ordering::Acquire);
        while pos < self.fault_schedule.len() && self.fault_schedule[pos].at <= now {
            let fault = self.fault_schedule[pos];
            pos += 1;
            match fault.kind {
                StorageFaultKind::TornWrite { keep_frac } => {
                    let cut = (bytes.len() as f64 * keep_frac) as usize;
                    bytes.truncate(cut);
                }
                StorageFaultKind::BitFlip { byte, bit } => {
                    if !bytes.is_empty() {
                        let idx = byte % bytes.len();
                        bytes[idx] ^= 1 << (bit & 7);
                    }
                }
                StorageFaultKind::Missing => missing = true,
            }
        }
        self.next_fault.store(pos, Ordering::Release);

        let path = self.path_for(snapshot.step);
        if missing {
            // The write is lost entirely; a stale same-generation file
            // would mask the loss, so remove it.
            let _ = self.fs.remove_file(&path);
        } else {
            cpc_vfs::atomic_publish_phased(self.fs.as_ref(), &path, &bytes).map_err(|e| match e
                .phase
            {
                cpc_vfs::PublishPhase::DirSync => SaveError::DirSync(e.error),
                _ => SaveError::Publish(e.error),
            })?;
        }
        self.rotate().map_err(SaveError::Rotate)?;
        Ok(path)
    }

    fn rotate(&self) -> io::Result<()> {
        let gens = self.generations()?;
        if gens.len() > self.keep {
            for &g in &gens[..gens.len() - self.keep] {
                self.fs.remove_file(&self.path_for(g))?;
            }
        }
        Ok(())
    }

    /// Restores a specific generation, verifying every checksum.
    pub fn restore_generation(&self, generation: u64) -> Result<MdSnapshot, FallbackNote> {
        let path = self.path_for(generation);
        let bytes = self.fs.read(&path).map_err(|e| FallbackNote {
            generation,
            reason: format!("read failed: {e}"),
        })?;
        MdSnapshot::decode(&bytes).map_err(|e: SnapshotError| FallbackNote {
            generation,
            reason: e.to_string(),
        })
    }

    /// Walks generations newest-first and returns the first one that
    /// decodes and verifies, together with notes on every generation
    /// skipped on the way. `Ok(None)` means no intact snapshot exists.
    pub fn restore_newest_intact(&self) -> io::Result<RestoreOutcome> {
        let mut notes = Vec::new();
        for &g in self.generations()?.iter().rev() {
            match self.restore_generation(g) {
                Ok(snapshot) => return Ok((Some((g, snapshot)), notes)),
                Err(note) => notes.push(note),
            }
        }
        Ok((None, notes))
    }

    /// Like [`restore_newest_intact`](Self::restore_newest_intact),
    /// but distinguishes "nothing was ever written" (`Ok(None)`, a
    /// fresh start is legitimate) from "generations exist and all are
    /// corrupt" ([`RestoreError::NoIntactGeneration`], the run must be
    /// classified as unrecoverable rather than silently restarted from
    /// step 0).
    pub fn restore_strict(&self) -> Result<Option<(u64, MdSnapshot)>, RestoreError> {
        let (hit, notes) = self.restore_newest_intact()?;
        match hit {
            Some(found) => Ok(Some(found)),
            None if notes.is_empty() => Ok(None),
            None => Err(RestoreError::NoIntactGeneration { notes }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpc_cluster::FaultPlan;
    use cpc_md::builder::water_box;
    use cpc_md::Vec3;
    use std::fs;

    fn snap(step: u64, mark: f64) -> MdSnapshot {
        let sys = water_box(2, 3.1);
        let forces = vec![Vec3::splat(mark); sys.n_atoms()];
        MdSnapshot::capture(&sys, &forces, step)
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cpc-ckpt-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_restore_roundtrip_and_rotation() {
        let dir = tmp_dir("rotate");
        let mut store = CheckpointStore::open(&dir, 2).unwrap();
        for step in 0..5u64 {
            store.save(&snap(step, step as f64), step as f64).unwrap();
        }
        assert_eq!(store.generations().unwrap(), vec![3, 4]);
        let (hit, notes) = store.restore_newest_intact().unwrap();
        let (gen, restored) = hit.expect("newest generation is intact");
        assert_eq!(gen, 4);
        assert_eq!(restored.forces[0], Vec3::splat(4.0));
        assert!(notes.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_newest_falls_back_to_previous_generation() {
        let dir = tmp_dir("fallback");
        let plan = FaultPlan::none()
            .with_storage_fault(2.0, StorageFaultKind::BitFlip { byte: 999, bit: 2 });
        let mut store = CheckpointStore::open(&dir, 3)
            .unwrap()
            .with_fault_schedule(plan.storage_schedule());
        store.save(&snap(1, 1.0), 1.0).unwrap(); // clean
        store.save(&snap(2, 2.0), 2.5).unwrap(); // bit-flipped
        let (hit, notes) = store.restore_newest_intact().unwrap();
        let (gen, restored) = hit.expect("generation 1 is intact");
        assert_eq!(gen, 1);
        assert_eq!(restored.forces[0], Vec3::splat(1.0));
        assert_eq!(notes.len(), 1);
        assert_eq!(notes[0].generation, 2);
        assert!(
            notes[0].reason.contains("checksum"),
            "reason: {}",
            notes[0].reason
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_write_and_missing_faults() {
        let dir = tmp_dir("torn");
        let plan = FaultPlan::none()
            .with_storage_fault(1.0, StorageFaultKind::TornWrite { keep_frac: 0.3 })
            .with_storage_fault(2.0, StorageFaultKind::Missing);
        let mut store = CheckpointStore::open(&dir, 3)
            .unwrap()
            .with_fault_schedule(plan.storage_schedule());
        store.save(&snap(0, 0.0), 0.0).unwrap(); // clean: before any fault
        store.save(&snap(1, 1.0), 1.0).unwrap(); // torn
        store.save(&snap(2, 2.0), 2.0).unwrap(); // missing
        assert_eq!(store.generations().unwrap(), vec![0, 1]);
        let (hit, notes) = store.restore_newest_intact().unwrap();
        let (gen, _) = hit.expect("generation 0 is intact");
        assert_eq!(gen, 0);
        assert_eq!(notes.len(), 1, "torn generation 1 was skipped");
        assert!(notes[0].reason.contains("truncated"), "{}", notes[0].reason);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn all_generations_corrupt_is_a_typed_error_not_a_panic() {
        // Every retained generation damaged, one variant each: torn
        // write, bit flip, and a vanished file.
        let dir = tmp_dir("allcorrupt");
        let plan = FaultPlan::none()
            .with_storage_fault(1.0, StorageFaultKind::TornWrite { keep_frac: 0.4 })
            .with_storage_fault(2.0, StorageFaultKind::BitFlip { byte: 123, bit: 5 })
            .with_storage_fault(3.0, StorageFaultKind::Missing);
        let mut store = CheckpointStore::open(&dir, 3)
            .unwrap()
            .with_fault_schedule(plan.storage_schedule());
        store.save(&snap(1, 1.0), 1.0).unwrap(); // torn
        store.save(&snap(2, 2.0), 2.0).unwrap(); // bit-flipped
        store.save(&snap(3, 3.0), 3.0).unwrap(); // missing
        assert_eq!(store.generations().unwrap(), vec![1, 2]);

        // The lenient walk reports "nothing intact" with notes...
        let (hit, notes) = store.restore_newest_intact().unwrap();
        assert!(hit.is_none());
        assert_eq!(notes.len(), 2, "both surviving files noted as corrupt");

        // ...while the strict walk returns the typed error.
        match store.restore_strict() {
            Err(RestoreError::NoIntactGeneration { notes }) => {
                assert_eq!(notes.len(), 2);
                assert!(notes.iter().any(|n| n.reason.contains("truncated")));
                assert!(notes.iter().any(|n| n.reason.contains("checksum")));
            }
            other => panic!("expected NoIntactGeneration, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn all_generations_missing_is_also_unrecoverable() {
        // Every write eaten by a Missing fault: the directory exists
        // and is empty, which is indistinguishable from a fresh start,
        // so strict restore reports Ok(None) — the caller decides
        // whether an expected-nonempty store being empty is fatal.
        let dir = tmp_dir("allmissing");
        let plan = FaultPlan::none()
            .with_storage_fault(0.0, StorageFaultKind::Missing)
            .with_storage_fault(1.0, StorageFaultKind::Missing);
        let mut store = CheckpointStore::open(&dir, 3)
            .unwrap()
            .with_fault_schedule(plan.storage_schedule());
        store.save(&snap(1, 0.5), 0.5).unwrap();
        store.save(&snap(2, 1.5), 1.5).unwrap();
        assert!(store.generations().unwrap().is_empty());
        assert!(store.restore_strict().unwrap().is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn strict_restore_passes_through_an_intact_older_generation() {
        let dir = tmp_dir("strictok");
        let plan = FaultPlan::none()
            .with_storage_fault(2.0, StorageFaultKind::BitFlip { byte: 50, bit: 1 });
        let mut store = CheckpointStore::open(&dir, 3)
            .unwrap()
            .with_fault_schedule(plan.storage_schedule());
        store.save(&snap(1, 1.0), 1.0).unwrap(); // clean
        store.save(&snap(2, 2.0), 2.0).unwrap(); // corrupt
        let (gen, restored) = store.restore_strict().unwrap().expect("gen 1 intact");
        assert_eq!(gen, 1);
        assert_eq!(restored.forces[0], Vec3::splat(1.0));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn shared_cursor_fires_each_fault_once_across_writers() {
        // Two store instances modeling the same disk (as two ranks of
        // one run do): a fault consumed by the first writer must not
        // re-fire when the writer role migrates to the second.
        let dir = tmp_dir("sharedcursor");
        let plan = FaultPlan::none()
            .with_storage_fault(1.0, StorageFaultKind::TornWrite { keep_frac: 0.2 });
        let cursor = Arc::new(AtomicUsize::new(0));
        let mut writer_a = CheckpointStore::open(&dir, 4)
            .unwrap()
            .with_fault_cursor(plan.storage_schedule(), cursor.clone());
        let mut writer_b = CheckpointStore::open(&dir, 4)
            .unwrap()
            .with_fault_cursor(plan.storage_schedule(), cursor.clone());
        writer_a.save(&snap(1, 1.0), 1.5).unwrap(); // fault fires here
        writer_b.save(&snap(2, 2.0), 2.5).unwrap(); // must stay clean
        let (hit, notes) = writer_b.restore_newest_intact().unwrap();
        let (gen, _) = hit.expect("generation 2 written after handover is intact");
        assert_eq!(gen, 2);
        assert!(notes.is_empty(), "newest generation decodes first");
        assert_eq!(cursor.load(Ordering::Acquire), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn dir_fsync_failure_is_a_typed_error_not_swallowed() {
        use cpc_vfs::{DiskFault, DiskFaultPlan, SimFs};
        // Regression for the old `let _ = d.sync_all()`: a failing
        // directory fsync after the rename must surface as
        // SaveError::DirSync, because the rename may not survive power
        // loss and the checkpoint cannot be reported durable. A
        // fault-free probe finds the dir fsync's op index (the last op
        // a save issues; rotation reads but never writes here).
        let dir_sync_at = {
            let fs = Arc::new(SimFs::new());
            let mut store = CheckpointStore::open_on(fs.clone(), "ckpt", 3).unwrap();
            store.save(&snap(1, 1.0), 1.0).unwrap();
            fs.op_count()
        };
        let plan = DiskFaultPlan::none().with(DiskFault::EioFsync { at: dir_sync_at });
        let fs = Arc::new(SimFs::with_plan(&plan));
        let mut store = CheckpointStore::open_on(fs, "ckpt", 3).unwrap();
        match store.save(&snap(1, 1.0), 1.0) {
            Err(SaveError::DirSync(e)) => assert!(cpc_vfs::is_eio(&e), "{e}"),
            other => panic!("expected SaveError::DirSync, got {other:?}"),
        }
    }

    #[test]
    fn every_crash_point_of_a_save_sequence_leaves_a_restorable_store() {
        use cpc_vfs::{explore_crashes, SimFs};
        // Power-cut two consecutive saves at every filesystem op: the
        // surviving store must always restore cleanly — the newest
        // intact generation or a legitimate fresh start, never an
        // all-corrupt store and never a panic.
        let work = |fs: &SimFs| -> std::io::Result<()> {
            let fs = Arc::new(fs.clone());
            let mut store = CheckpointStore::open_on(fs, "ckpt", 2)
                .map_err(|e| io::Error::other(e.to_string()))?;
            for step in 1..=2u64 {
                store
                    .save(&snap(step, step as f64), step as f64)
                    .map_err(|e| match e {
                        SaveError::Publish(e) | SaveError::DirSync(e) | SaveError::Rotate(e) => e,
                    })?;
            }
            Ok(())
        };
        let check = |fs: &SimFs| -> Result<(), String> {
            let fs = Arc::new(fs.clone());
            let store = CheckpointStore::open_on(fs, "ckpt", 2).map_err(|e| e.to_string())?;
            match store.restore_strict() {
                Ok(Some((g, s))) => {
                    if s.forces[0] == Vec3::splat(g as f64) {
                        Ok(())
                    } else {
                        Err(format!("generation {g} restored with foreign payload"))
                    }
                }
                Ok(None) => Ok(()), // nothing durable yet: fresh start
                Err(e) => Err(format!("store unrecoverable after crash: {e}")),
            }
        };
        let report = explore_crashes(work, check).unwrap();
        assert!(
            report.ops >= 10,
            "two full atomic publishes, got {}",
            report.ops
        );
    }

    #[test]
    fn empty_store_restores_nothing() {
        let dir = tmp_dir("empty");
        let store = CheckpointStore::open(&dir, 1).unwrap();
        let (hit, notes) = store.restore_newest_intact().unwrap();
        assert!(hit.is_none());
        assert!(notes.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }
}
