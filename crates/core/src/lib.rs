//! # cpc-charmm
//!
//! The subject of the paper: a CHARMM-style replicated-data parallel
//! molecular dynamics engine running on the virtual PC cluster, with
//! the energy calculation instrumented exactly as the paper's Figure 2
//! describes:
//!
//! * [`classic`] — the classic (time-domain) energy calculation: block
//!   partition of the pair list and bonded terms, closed by an
//!   all-to-all collective force combine,
//! * [`pme_par`] — the PME (frequency-domain) calculation: slab
//!   decomposition of the mesh, parallel 3D FFTs via all-to-all
//!   personalized transposes, and its own closing collective,
//! * [`driver`] — the velocity-Verlet measurement loop (the paper runs
//!   10 steps per measurement),
//! * [`report`] — aggregation into the paper's response variables:
//!   classic/PME wall times, computation / communication /
//!   synchronization percentages, and per-node communication speeds.
//!
//! Physics is bit-compatible (up to floating-point reassociation) with
//! the sequential engine in `cpc-md`; timing comes from the calibrated
//! virtual cluster in `cpc-cluster`.

#![warn(missing_docs)]

pub mod chaos;
pub mod ckpt;
pub mod classic;
pub mod decomp;
pub mod driver;
pub mod pme_par;
pub mod pme_spatial;
pub mod recover;
pub mod report;

pub use chaos::{
    check_cross_ledger, check_disk_ledger, check_gateway_ledger, check_sched_ledger,
    check_service_ledger, minimize, minimize_composed, ChaosHarness, CrossLedger, CrossReproducer,
    CrossViolation, DiskLedger, DiskViolation, GatewayLedger, GatewayViolation, Reproducer,
    SchedLedger, SchedViolation, ScheduleReport, ServiceLedger, ServiceViolation, ThreadDigest,
    Violation,
};
pub use ckpt::{CheckpointStore, DurableConfig, FallbackNote, RestoreError, SaveError};
pub use classic::{classic_energy_parallel, ClassicResult};
pub use driver::{run_parallel_md, CommTuning, MdConfig, PmeImpl};
pub use pme_par::{ParallelPme, PmeParallelResult};
pub use pme_spatial::SpatialPme;
pub use recover::{
    run_parallel_md_faulty, AbftConfig, FaultConfig, FtReport, RecoveryConfig, WatchdogConfig,
};
pub use report::{RunReport, StepEnergies};
