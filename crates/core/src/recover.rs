//! Fault-tolerant MD driver: the replicated-data loop of
//! [`crate::driver`] hardened with periodic in-memory checkpoints,
//! heartbeat-based failure detection and shrinking recovery.
//!
//! The replicated-data decomposition makes recovery unusually cheap:
//! every rank holds the full system state, so when a rank dies the
//! survivors only need to agree on the new membership, roll back to the
//! last checkpoint (re-running at most `checkpoint_interval - 1` steps)
//! and re-partition the work over the smaller communicator. No state
//! lives exclusively on the dead rank. The cost of that agreement and
//! rollback is booked under [`Phase::Recovery`] so survivability
//! reports can separate it from productive work.

use crate::ckpt::{CheckpointStore, DurableConfig, RestoreError};
use crate::classic::classic_energy_parallel_weighted;
use crate::decomp::{balanced_pair_cuts, balanced_pair_cuts_weighted};
use crate::driver::{CommTuning, MdConfig, PmeImpl};
use crate::pme_par::ParallelPme;
use crate::pme_spatial::SpatialPme;
use crate::report::{RunReport, StepEnergies};
use cpc_cluster::{run_cluster_faulty, CostModel, FaultPlan, Phase, SdcFault, SdcTarget, SimError};
use cpc_md::energy::EnergyModel;
use cpc_md::neighbor::NeighborList;
use cpc_md::nonbonded::NonbondedOptions;
use cpc_md::units::ACCEL_CONV;
use cpc_md::{MdSnapshot, System, Vec3};
use cpc_mpi::{Comm, DetectorConfig, FailureDetector};

/// Cost of writing or reading checkpoint state, seconds per byte
/// (~1 GB/s: a local memory/disk copy, not a network operation).
const CKPT_BYTE_COST: f64 = 1e-9;

/// Neighbour-list skin (matches [`crate::driver`]).
const SKIN: f64 = 2.0;

/// Numerical-watchdog configuration: treats a blown-up trajectory
/// (NaN/inf coordinates or runaway energy drift) as a fault and rolls
/// back to the last good checkpoint.
#[derive(Debug, Clone, Copy)]
pub struct WatchdogConfig {
    /// Maximum tolerated relative drift of total energy versus the
    /// first recorded step, `|E - E0| / max(|E0|, 1)`. The default (1.0,
    /// i.e. 100%) only fires on genuine blow-ups, never on the ordinary
    /// energy noise of a stable integration.
    pub max_rel_drift: f64,
    /// Rollbacks granted before the run is declared diverged: a purely
    /// numerical blow-up is deterministic, so unlimited retries would
    /// re-trip forever.
    pub max_rollbacks: usize,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            max_rel_drift: 1.0,
            max_rollbacks: 2,
        }
    }
}

/// Adaptive-recovery configuration: heartbeat cadence, φ-accrual
/// detector thresholds, and the straggler-rebalancing trigger.
///
/// The defaults reproduce the legacy behaviour exactly on healthy
/// runs: heartbeats every step, and a rebalance trigger that a
/// fault-free cohort (whose per-unit costs agree to well under 1.5×)
/// can never fire — so fault-free trajectories and timings stay
/// bit-identical.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryConfig {
    /// Steps between failure-detection epochs (heartbeat + scheduled
    /// crash poll). 1 = every step, the legacy cadence; larger values
    /// trade detection latency for control traffic.
    pub heartbeat_interval: usize,
    /// φ-accrual detector thresholds (suspect / evict).
    pub detector: DetectorConfig,
    /// Re-cut the pair partition when some member's measured relative
    /// speed deviates from its current capacity weight by more than
    /// this factor (either direction).
    pub rebalance_trigger: f64,
    /// Master switch for straggler-aware rebalancing; `false` keeps
    /// the static decomposition (the reference configuration the
    /// chaos oracle measures adaptive overhead against).
    pub rebalance: bool,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            heartbeat_interval: 1,
            detector: DetectorConfig::default(),
            rebalance_trigger: 1.5,
            rebalance: true,
        }
    }
}

/// Algorithm-based fault tolerance: physics-invariant checksums that
/// close the silent-data-corruption gray zone.
///
/// When armed, the driver brackets every array the SDC model can
/// corrupt with bit-exact checks (see `cpc_md::abft`):
///
/// * **positions** — every rank redundantly integrates *all* atoms
///   with element-wise identical arithmetic, so the prediction equals
///   the published allgather result bit-for-bit; per-tile checksums
///   after the exchange detect, localize and repair any flipped bit;
/// * **forces** — per-tile checksums taken when the reduced array is
///   produced are re-verified before the kick consumes it; a mismatch
///   triggers a targeted recompute (the flip cursors only advance, so
///   one re-evaluation is clean), then escalates to rollback;
/// * **invariants** — Newton's-third-law force sum, the PME
///   grid-charge identity and per-block transpose checksums catch
///   corruption inside an evaluation;
/// * **replica voting** — a compact digest of each rank's replicated
///   state piggybacks on the existing heartbeat control messages
///   (modeled at one byte regardless of payload, so control traffic is
///   unchanged); a strict-majority vote localizes a diverged rank and
///   feeds the eviction rung of the degradation ladder.
///
/// Disarmed (the default) the driver is byte-identical to the
/// pre-ABFT code path. Armed, fault-free physics stays bit-identical
/// (every check is a pure side read); only virtual time moves, by the
/// explicitly charged checksum work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AbftConfig {
    /// Master switch.
    pub enabled: bool,
    /// Atoms per checksum tile (granularity of localization/repair).
    pub tile: usize,
    /// Relative tolerance for the Newton force-sum residual over the
    /// classic (pairwise) forces. Reassociation noise sits many orders
    /// of magnitude below this; a high-bit flip sits far above.
    pub force_sum_tol: f64,
    /// Relative tolerance for the PME grid-charge invariant.
    pub grid_charge_tol: f64,
    /// Targeted recomputes granted per step before escalating to the
    /// rollback rung of the degradation ladder.
    pub max_recomputes: usize,
}

impl Default for AbftConfig {
    fn default() -> Self {
        AbftConfig {
            enabled: false,
            tile: cpc_md::abft::DEFAULT_TILE,
            force_sum_tol: 1e-6,
            grid_charge_tol: 1e-8,
            max_recomputes: 1,
        }
    }
}

impl AbftConfig {
    /// The default checks, armed.
    pub fn armed() -> Self {
        AbftConfig {
            enabled: true,
            ..AbftConfig::default()
        }
    }
}

/// Fault-tolerance configuration for a run.
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// The fault plan injected into the cluster.
    pub plan: FaultPlan,
    /// Steps between checkpoints (a checkpoint is also taken at step
    /// 0); rollback re-runs at most `checkpoint_interval - 1` steps.
    pub checkpoint_interval: usize,
    /// Optional durable (on-disk) checkpointing; `None` keeps the
    /// original in-memory-only behaviour. Durable writes happen in real
    /// I/O outside the virtual clock, so enabling them never perturbs
    /// the calibrated timing.
    pub durable: Option<DurableConfig>,
    /// The numerical watchdog (always armed; defaults are loose enough
    /// to stay silent on healthy runs).
    pub watchdog: WatchdogConfig,
    /// Adaptive failure detection and degraded-mode rebalancing.
    pub recovery: RecoveryConfig,
    /// Algorithm-based fault tolerance (disarmed by default).
    pub abft: AbftConfig,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            plan: FaultPlan::none(),
            checkpoint_interval: 2,
            durable: None,
            watchdog: WatchdogConfig::default(),
            recovery: RecoveryConfig::default(),
            abft: AbftConfig::default(),
        }
    }
}

impl FaultConfig {
    /// Configuration injecting `plan` with the default checkpoint
    /// cadence.
    pub fn new(plan: FaultPlan) -> Self {
        FaultConfig {
            plan,
            ..FaultConfig::default()
        }
    }

    /// Enables durable checkpointing (and, if `durable.resume` is set,
    /// resume-from-disk at run start).
    pub fn with_durable(mut self, durable: DurableConfig) -> Self {
        self.durable = Some(durable);
        self
    }

    /// Overrides the numerical-watchdog thresholds.
    pub fn with_watchdog(mut self, watchdog: WatchdogConfig) -> Self {
        self.watchdog = watchdog;
        self
    }

    /// Overrides the adaptive-recovery configuration.
    pub fn with_recovery(mut self, recovery: RecoveryConfig) -> Self {
        self.recovery = recovery;
        self
    }

    /// Overrides the ABFT configuration (pass
    /// [`AbftConfig::armed`] to enable the checks).
    pub fn with_abft(mut self, abft: AbftConfig) -> Self {
        self.abft = abft;
        self
    }
}

/// Outcome of a fault-tolerant run: the usual report plus
/// survivability bookkeeping.
#[derive(Debug, Clone)]
pub struct FtReport {
    /// The run report (physics payload from the lowest-ranked
    /// survivor; per-rank stats from everyone, crashed ranks included).
    pub report: RunReport,
    /// Engine ranks that crashed during the run, ascending.
    pub crashed_ranks: Vec<usize>,
    /// Ranks still alive at the end.
    pub survivors: usize,
    /// Recovery episodes the survivors went through (several ranks
    /// dying between two heartbeats count as one episode).
    pub recoveries: usize,
    /// Wall-clock (virtual) seconds spent in [`Phase::Recovery`],
    /// maximum over ranks.
    pub recovery_time: f64,
    /// Numerical-watchdog rollbacks (blow-ups treated as faults).
    pub watchdog_trips: usize,
    /// True when the watchdog gave up: the trajectory kept blowing up
    /// after `max_rollbacks` rollbacks.
    pub diverged: bool,
    /// Generation (step) of the durable snapshot the run resumed from,
    /// when a resume was requested and an intact snapshot existed.
    pub resumed_from: Option<u64>,
    /// Silent-data-corruption events that actually fired (scheduled
    /// flips whose step the run reached; a flip erased by a crash
    /// rollback before it could matter still counts as fired).
    pub sdc_events: usize,
    /// Set when a requested resume found durable generations on disk
    /// but every one of them was corrupt: the run is classified as
    /// diverged without being started, because silently restarting
    /// from step 0 would masquerade as recovery.
    pub restore_failure: Option<String>,
    /// Whether the survivors completed all configured steps.
    pub completed: bool,
    /// Straggler-driven re-cuts of the work partition (degraded-mode
    /// load rebalancing; no rollback, no recovery episode).
    pub rebalances: usize,
    /// Members evicted by the φ-accrual detector (treated as crashed:
    /// the communicator shrank, but no rollback was needed — the
    /// evicted member left gracefully at a checkpoint boundary).
    pub evictions: usize,
    /// Engine ranks evicted by the detector, ascending.
    pub evicted_ranks: Vec<usize>,
    /// Highest suspicion level any rank's detector ever computed.
    pub phi_max: f64,
    /// Largest smoothed heartbeat RTT observed by any rank (0 when no
    /// heartbeat RTT was sampled, e.g. single-rank runs).
    pub srtt_max: f64,
    /// ABFT detections: checksum/invariant/vote mismatches caught
    /// (maximum over ranks; 0 whenever ABFT is disarmed or the run was
    /// fault-free).
    pub abft_detections: usize,
    /// Targeted ABFT repairs: tile overwrites from the redundant
    /// integration plus full force re-evaluations (maximum over ranks).
    pub abft_recomputes: usize,
    /// Typed corruption verdicts, in detection order, from the rank
    /// whose physics this report carries.
    pub corruptions: Vec<cpc_md::abft::Corruption>,
}

impl FtReport {
    /// Overhead of this run versus a reference (fault-free) wall time:
    /// `wall / reference - 1`. Negative only if the run died early.
    ///
    /// Returns `None` when the ratio is meaningless — a zero, negative
    /// or non-finite reference wall, or a non-finite wall for this run
    /// — rather than a fabricated `0.0` that would read as "no
    /// overhead" in a report.
    pub fn overhead_vs(&self, reference_wall: f64) -> Option<f64> {
        if reference_wall.is_finite() && reference_wall > 0.0 && self.report.wall_time.is_finite() {
            Some(self.report.wall_time / reference_wall - 1.0)
        } else {
            None
        }
    }
}

/// State captured at a checkpoint. Replicated on every rank, so
/// restoring needs no communication — only the membership agreement
/// that precedes it.
struct Checkpoint {
    step: usize,
    positions: Vec<Vec3>,
    velocities: Vec<Vec3>,
    forces: Vec<Vec3>,
}

impl Checkpoint {
    fn bytes(&self) -> f64 {
        // Three Vec3 arrays of f64.
        72.0 * self.positions.len() as f64
    }
}

/// Builds the durable on-disk snapshot corresponding to an in-memory
/// checkpoint: full MD state plus the per-step energy log (carried in
/// the AUX section so a resumed run reports the complete trajectory).
fn durable_snapshot(
    sys: &System,
    forces: &[Vec3],
    energies_log: &[StepEnergies],
    step: usize,
) -> MdSnapshot {
    let mut snap = MdSnapshot::capture(sys, forces, step as u64);
    snap.aux = energies_log
        .iter()
        .map(|e| [e.classic, e.pme, e.kinetic])
        .collect();
    snap
}

enum PmeEngine {
    Replicated(ParallelPme),
    Spatial(SpatialPme),
}

fn make_pme(
    model: EnergyModel,
    pme_impl: PmeImpl,
    tuning: CommTuning,
    p: usize,
    caps: Option<&[f64]>,
    abft: bool,
) -> Option<PmeEngine> {
    match model {
        EnergyModel::Pme(params) => Some(match pme_impl {
            PmeImpl::Replicated => {
                let mut engine = ParallelPme::new(params, p)
                    .with_grid_sum(tuning.grid_sum)
                    .with_force_combine(tuning.force_combine)
                    .with_abft(abft);
                if let Some(caps) = caps {
                    engine = engine.with_plane_weights(caps);
                }
                PmeEngine::Replicated(engine)
            }
            // The spatial engine balances through its own domain
            // decomposition; capacity weights apply to slab planes only.
            PmeImpl::Spatial => PmeEngine::Spatial(
                SpatialPme::new(params, p).with_force_combine(tuning.force_combine),
            ),
        }),
        EnergyModel::Classic => None,
    }
}

/// ABFT evidence gathered as side reads during one force evaluation.
#[derive(Debug, Clone, Copy, Default)]
struct EvalProbe {
    /// Digest over the combined classic partial energies and forces.
    classic_digest: u64,
    /// Newton's-third-law residual over the classic (pairwise) forces.
    force_sum_residual: f64,
    /// PME grid-charge residual (0 without PME).
    grid_residual: f64,
    /// Corrupted distributed-FFT transpose blocks (0 without PME).
    transpose_faults: usize,
}

/// Classifies probe evidence against the armed tolerances.
fn probe_corruption(
    probe: &EvalProbe,
    abft: &AbftConfig,
    step: u64,
) -> Option<cpc_md::abft::Corruption> {
    use cpc_md::abft::{Corruption, CorruptionKind};
    if probe.transpose_faults > 0 {
        return Some(Corruption {
            step,
            kind: CorruptionKind::Transpose {
                blocks: probe.transpose_faults,
            },
        });
    }
    if probe.grid_residual > abft.grid_charge_tol {
        return Some(Corruption {
            step,
            kind: CorruptionKind::PmeGrid {
                residual: probe.grid_residual,
            },
        });
    }
    if probe.force_sum_residual > abft.force_sum_tol {
        return Some(Corruption {
            step,
            kind: CorruptionKind::ForceSum {
                residual: probe.force_sum_residual,
            },
        });
    }
    None
}

/// One full force evaluation over the *current* communicator (same
/// structure as the closure in [`crate::driver::run_parallel_md`], but
/// a free function so the PME engine can be rebuilt after a shrink).
#[allow(clippy::too_many_arguments)]
fn eval_forces(
    comm: &mut Comm<'_>,
    sys: &System,
    list: &mut NeighborList,
    opts: &NonbondedOptions,
    cost: &CostModel,
    tuning: CommTuning,
    ppme: Option<&PmeEngine>,
    caps: Option<&[f64]>,
    abft: &AbftConfig,
) -> (Vec<Vec3>, f64, f64, EvalProbe) {
    let p = comm.size();
    comm.ctx().set_phase(Phase::Classic);
    if list.needs_rebuild(&sys.pbox, &sys.positions) {
        list.rebuild(&sys.topology, &sys.pbox, &sys.positions);
        comm.ctx()
            .charge_compute(list.pairs.len() as f64 * 2.5 * cost.list_build_pair / p as f64);
    }
    comm.barrier();
    let classic = classic_energy_parallel_weighted(
        comm,
        sys,
        &list.pairs,
        opts,
        cost,
        tuning.force_combine,
        caps,
    );
    let mut probe = EvalProbe::default();
    if abft.enabled {
        // Side reads over the reduced array: a digest for replica
        // voting and the Newton invariant. The pairwise forces cancel
        // exactly up to reassociation noise; PME interpolation forces
        // do not, so the invariant is checked on the classic part.
        comm.ctx()
            .charge_compute(2.0 * sys.n_atoms() as f64 * cost.conv_point);
        probe.classic_digest = classic.abft_digest();
        probe.force_sum_residual = cpc_md::abft::force_sum_residual(&classic.forces);
    }
    let classic_energy = classic.energy();
    let mut forces = classic.forces;
    let mut pme_energy = 0.0;
    if let Some(ppme) = ppme {
        let kr = match ppme {
            PmeEngine::Replicated(e) => e.energy_forces(comm, sys, cost),
            PmeEngine::Spatial(e) => e.energy_forces(comm, sys, cost),
        };
        for (f, kf) in forces.iter_mut().zip(&kr.forces) {
            *f += *kf;
        }
        pme_energy = kr.energy();
        if let Some(p) = kr.abft {
            probe.grid_residual = p.grid_residual;
            probe.transpose_faults = p.transpose_faults;
        }
        comm.barrier();
    }
    (forces, classic_energy, pme_energy, probe)
}

/// Per-rank payload returned by the fault-tolerant closure.
struct RankRun {
    energies: Vec<StepEnergies>,
    positions: Vec<Vec3>,
    velocities: Vec<Vec3>,
    recoveries: usize,
    watchdog_trips: usize,
    diverged: bool,
    resumed_from: Option<u64>,
    sdc_fired: usize,
    evicted: bool,
    rebalances: usize,
    evictions: usize,
    phi_max: f64,
    srtt_max: f64,
    abft_detections: usize,
    abft_recomputes: usize,
    corruptions: Vec<cpc_md::abft::Corruption>,
}

/// Runs the parallel MD measurement under a fault plan, recovering
/// from rank crashes by shrinking the communicator and restarting from
/// the last checkpoint.
///
/// Each step: poll for this rank's own scheduled crash, exchange
/// heartbeats, recover if anyone died, then run one velocity-Verlet
/// step. Recovery (membership shrink, checkpoint restore, engine
/// rebuild, re-synchronization) is booked under [`Phase::Recovery`].
///
/// With an all-zero plan the trajectory is bit-identical to
/// [`crate::driver::run_parallel_md`]'s (the heartbeats add control
/// traffic, so *timing* differs; physics does not).
///
/// When [`FaultConfig::durable`] is set, the lowest live member also
/// persists each checkpoint through a [`CheckpointStore`] — real file
/// I/O outside the virtual clock, so enabling it leaves both timing
/// and physics bit-identical. With `durable.resume`, the run first
/// restores the newest intact snapshot and continues from its step,
/// surviving a full process restart. A numerical watchdog additionally
/// treats NaN/inf coordinates or runaway energy drift as a fault,
/// rolling back under [`Phase::Recovery`] (at most
/// [`WatchdogConfig::max_rollbacks`] times before declaring the run
/// diverged).
pub fn run_parallel_md_faulty(
    system: &System,
    cfg: &MdConfig,
    fault: &FaultConfig,
) -> Result<FtReport, SimError> {
    let opts = match cfg.model {
        EnergyModel::Classic => NonbondedOptions::classic(),
        EnergyModel::Pme(p) => NonbondedOptions::pme_direct(p.beta),
    };
    let model = cfg.model;
    let steps = cfg.steps;
    let dt = cfg.dt;
    let middleware = cfg.middleware;
    let tuning = cfg.tuning;
    let pme_impl = cfg.pme_impl;
    let ckpt_every = fault.checkpoint_interval.max(1);
    let durable = fault.durable.clone();
    let watchdog = fault.watchdog;
    let recovery = fault.recovery;
    let hb_interval = recovery.heartbeat_interval.max(1);
    let abft = fault.abft;
    let storage_schedule = fault.plan.storage_schedule();
    let sdc_schedule = fault.plan.sdc_schedule();

    // Pre-flight for resume requests: distinguish "nothing durable yet"
    // (a fresh start is the correct behaviour) from "generations exist
    // and every one is corrupt" (restarting from step 0 would silently
    // discard the durable state, so the run is classified as diverged
    // before a single step is taken).
    if let Some(d) = durable.as_ref().filter(|d| d.resume) {
        let store =
            CheckpointStore::open(&d.dir, d.keep).expect("checkpoint directory must be creatable");
        if let Err(e @ RestoreError::NoIntactGeneration { .. }) = store.restore_strict() {
            return Ok(FtReport {
                report: RunReport {
                    cluster: cfg.cluster,
                    middleware: cfg.middleware,
                    steps: cfg.steps,
                    per_rank: Vec::new(),
                    wall_time: 0.0,
                    step_energies: Vec::new(),
                    final_positions: Vec::new(),
                    final_velocities: Vec::new(),
                },
                crashed_ranks: Vec::new(),
                survivors: cfg.cluster.ranks,
                recoveries: 0,
                recovery_time: 0.0,
                watchdog_trips: 0,
                diverged: true,
                resumed_from: None,
                sdc_events: 0,
                restore_failure: Some(e.to_string()),
                completed: false,
                rebalances: 0,
                evictions: 0,
                evicted_ranks: Vec::new(),
                phi_max: 0.0,
                srtt_max: 0.0,
                abft_detections: 0,
                abft_recomputes: 0,
                corruptions: Vec::new(),
            });
        }
    }

    // One storage-fault cursor for the whole run: the per-rank stores
    // all model the same disk, and the writer role migrates after a
    // crash, so a scheduled fault must corrupt exactly one write
    // plan-wide — not one write per writer.
    let storage_cursor = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));

    let outcomes = run_cluster_faulty(cfg.cluster, fault.plan.clone(), |ctx| {
        let cost = ctx.config().cost;
        let mut comm = Comm::new(ctx, middleware);
        let mut sys = system.clone();
        let mut ppme = make_pme(model, pme_impl, tuning, comm.size(), None, abft.enabled);

        // Adaptive-degradation state. The detector is indexed by engine
        // rank (stable across shrinks) and replicated by construction:
        // every member folds the identical set of heartbeat reports, so
        // suspect/evict/rebalance verdicts agree without any extra
        // agreement round. `caps` are the current capacity weights of
        // the live members in logical-rank order (`None` = uniform,
        // the exact legacy cuts).
        let mut det = FailureDetector::new(comm.size(), recovery.detector);
        let mut caps: Option<Vec<f64>> = None;
        let mut last_unit_cost = -1.0f64; // "no data yet" sentinel
        let mut rebalances = 0usize;
        let mut evictions = 0usize;
        let mut evicted = false;

        // Durable store, when configured: every rank opens it (and can
        // read for resume), only the lowest live member writes. All
        // store I/O is real file I/O outside the virtual clock.
        let mut store = durable.as_ref().map(|d| {
            CheckpointStore::open(&d.dir, d.keep)
                .expect("checkpoint directory must be creatable")
                .with_fault_cursor(storage_schedule.clone(), storage_cursor.clone())
        });

        // Silent-data-corruption schedule, split per target array. The
        // cursors only ever advance, so each event fires exactly once
        // even across watchdog or crash rollbacks: the cosmic ray hit
        // once, and a re-run of the rolled-back window replays clean
        // state.
        let sdc_positions: Vec<SdcFault> = sdc_schedule
            .iter()
            .copied()
            .filter(|s| s.target == SdcTarget::Positions)
            .collect();
        let sdc_forces: Vec<SdcFault> = sdc_schedule
            .iter()
            .copied()
            .filter(|s| s.target == SdcTarget::Forces)
            .collect();
        let mut next_sdc_pos = 0usize;
        let mut next_sdc_frc = 0usize;
        let mut sdc_fired = 0usize;

        // ABFT bookkeeping: typed verdicts, counters, and the digest of
        // the previous step's replicated state that piggybacks on the
        // next heartbeat (negative sentinel = no digest yet).
        let mut abft_detections = 0usize;
        let mut abft_recomputes = 0usize;
        let mut corruptions: Vec<cpc_md::abft::Corruption> = Vec::new();
        let mut last_digest = -1.0f64;

        // Resume happens before the first neighbour-list build so the
        // list is built from the restored coordinates. Every rank reads
        // the same newest intact snapshot, so all fast-forward
        // identically without any communication.
        let mut resume_snap: Option<(u64, MdSnapshot)> = None;
        if durable.as_ref().is_some_and(|d| d.resume) {
            if let Some(store) = store.as_ref() {
                let (hit, _skipped) = store
                    .restore_newest_intact()
                    .expect("checkpoint directory must be readable");
                if let Some((gen, snap)) = hit {
                    if snap.positions.len() == sys.n_atoms() {
                        snap.restore_into(&mut sys);
                        resume_snap = Some((gen, snap));
                    }
                }
            }
        }

        comm.ctx().set_phase(Phase::Classic);
        let mut list =
            NeighborList::build(&sys.topology, &sys.pbox, &sys.positions, opts.cutoff, SKIN);
        let build_cost = list.pairs.len() as f64 * 2.5 * cost.list_build_pair / comm.size() as f64;
        comm.ctx().charge_compute(build_cost);

        let mut energies_log: Vec<StepEnergies> = Vec::with_capacity(steps);
        let mut step = 0usize;
        let mut resumed_from: Option<u64> = None;
        let mut forces: Vec<Vec3>;
        let mut ckpt: Checkpoint;
        if let Some((gen, snap)) = resume_snap {
            // Fast-forward: the snapshot replaces the initial force
            // evaluation; reading it back is charged like a checkpoint
            // restore.
            forces = snap.forces.clone();
            step = snap.step as usize;
            energies_log.extend(snap.aux.iter().map(|e| StepEnergies {
                classic: e[0],
                pme: e[1],
                kinetic: e[2],
            }));
            ckpt = Checkpoint {
                step,
                positions: sys.positions.clone(),
                velocities: sys.velocities.clone(),
                forces: forces.clone(),
            };
            comm.ctx().set_phase(Phase::Other);
            comm.ctx().charge_compute(CKPT_BYTE_COST * ckpt.bytes());
            resumed_from = Some(gen);
        } else {
            let (f, _, _, _) = eval_forces(
                &mut comm,
                &sys,
                &mut list,
                &opts,
                &cost,
                tuning,
                ppme.as_ref(),
                None,
                &abft,
            );
            forces = f;

            // Step-0 checkpoint, so even an immediate crash is recoverable.
            ckpt = Checkpoint {
                step: 0,
                positions: sys.positions.clone(),
                velocities: sys.velocities.clone(),
                forces: forces.clone(),
            };
            comm.ctx().set_phase(Phase::Other);
            comm.ctx().charge_compute(CKPT_BYTE_COST * ckpt.bytes());
            if comm.rank() == 0 {
                if let Some(store) = store.as_mut() {
                    let snap = durable_snapshot(&sys, &forces, &energies_log, 0);
                    let now = comm.ctx().now();
                    store.save(&snap, now).expect("durable checkpoint write");
                }
            }
        }

        // SDC events from steps a previous process already completed
        // fired in that process; a resumed run must not re-fire them.
        while next_sdc_pos < sdc_positions.len() && sdc_positions[next_sdc_pos].step <= step as u64
        {
            next_sdc_pos += 1;
        }
        while next_sdc_frc < sdc_forces.len() && sdc_forces[next_sdc_frc].step <= step as u64 {
            next_sdc_frc += 1;
        }

        let mut recoveries = 0usize;
        let mut watchdog_trips = 0usize;
        let mut diverged = false;
        let mut e_ref: Option<f64> = energies_log
            .first()
            .map(|e| e.classic + e.pme + e.kinetic)
            .filter(|e| e.is_finite());
        loop {
            // Failure-detection epoch, gated to the heartbeat cadence:
            // my own scheduled crash first (a rank either heartbeats or
            // is seen dead by *everyone* — polling only where everyone
            // listens keeps crash detection consistent when heartbeats
            // are sparse), then the liveness exchange, piggybacking the
            // last measured per-unit step cost for the φ-accrual
            // detector.
            comm.ctx().set_phase(Phase::Other);
            if step.is_multiple_of(hb_interval) {
                comm.ctx().poll_crash();
                let (mut dead, votes) =
                    comm.heartbeat_observed_with(&mut det, last_unit_cost, last_digest);
                // Replica vote over the digests piggybacked this epoch:
                // each summarizes the sender's previous-step replicated
                // state. A strict-majority disagreement localizes the
                // diverged rank, which is then handled exactly like a
                // failed member (every rank reaches the same verdict
                // from the same replicated ballots, including the
                // minority rank itself, which leaves gracefully).
                if abft.enabled && dead.is_empty() && votes.len() >= 3 {
                    let ballots: Vec<(usize, u64)> =
                        votes.iter().map(|&(r, d)| (r, d as u64)).collect();
                    if let Some(bad) = cpc_md::abft::vote(&ballots) {
                        abft_detections += 1;
                        corruptions.push(cpc_md::abft::Corruption {
                            step: step as u64,
                            kind: cpc_md::abft::CorruptionKind::Replica { rank: bad },
                        });
                        if bad == comm.global_rank() {
                            evicted = true;
                            break;
                        }
                        det.forget(bad);
                        dead.push(bad);
                    }
                }
                if !dead.is_empty() {
                    // Recovery: agree on membership, roll back, rebuild.
                    comm.ctx().set_phase(Phase::Recovery);
                    comm.shrink(&dead);
                    sys.positions.clone_from(&ckpt.positions);
                    sys.velocities.clone_from(&ckpt.velocities);
                    forces.clone_from(&ckpt.forces);
                    step = ckpt.step;
                    energies_log.truncate(step);
                    // The drift reference must roll back with the state: a
                    // reference taken from a now-truncated (possibly
                    // corrupted) step would keep tripping the watchdog on
                    // a perfectly clean re-run.
                    e_ref = energies_log
                        .first()
                        .map(|e| e.classic + e.pme + e.kinetic)
                        .filter(|e| e.is_finite());
                    comm.ctx().charge_compute(CKPT_BYTE_COST * ckpt.bytes());
                    // The decomposition width changed: capacity weights
                    // are stale for the new membership and the
                    // slab-partitioned PME state must be rebuilt for
                    // the surviving ranks.
                    caps = None;
                    ppme = make_pme(model, pme_impl, tuning, comm.size(), None, abft.enabled);
                    if list.needs_rebuild(&sys.pbox, &sys.positions) {
                        list.rebuild(&sys.topology, &sys.pbox, &sys.positions);
                        let rebuild_cost = list.pairs.len() as f64 * 2.5 * cost.list_build_pair
                            / comm.size() as f64;
                        comm.ctx().charge_compute(rebuild_cost);
                    }
                    recoveries += 1;
                    // Re-synchronize the survivors before resuming; a
                    // straggling crash notice must not be mistaken for
                    // progress, so tolerate (and record) errors here.
                    let _ = comm.try_barrier();
                    continue;
                }
            }
            if step >= steps {
                break;
            }
            let comp_before = comm.ctx().stats.total().comp;

            // One velocity-Verlet step over the current members.
            let computing = (step + 1) as u64;
            let p = comm.size();
            comm.ctx().set_phase(Phase::Integrate);
            let n = sys.n_atoms();
            let my_atoms = crate::decomp::block_range(n, p, comm.rank());

            // ABFT redundant integration: predict the post-drift
            // positions of *all* atoms from the replicated prior state
            // with element-wise identical arithmetic, so the prediction
            // is bit-exact equal to what the owners publish below.
            // Verified against per-tile checksums after the exchange
            // (and after any scheduled corruption lands), it both
            // detects a flipped bit and doubles as the repair source.
            let abft_pred: Vec<Vec3> = if abft.enabled {
                comm.ctx().charge_compute(n as f64 * cost.integrate_atom);
                (0..n)
                    .map(|i| {
                        let inv_m = ACCEL_CONV / sys.topology.atoms[i].class.mass();
                        let v_half = sys.velocities[i] + forces[i] * (0.5 * dt * inv_m);
                        sys.positions[i] + v_half * dt
                    })
                    .collect()
            } else {
                Vec::new()
            };

            for i in my_atoms.clone() {
                let inv_m = ACCEL_CONV / sys.topology.atoms[i].class.mass();
                let v_half = sys.velocities[i] + forces[i] * (0.5 * dt * inv_m);
                sys.velocities[i] = v_half;
                sys.positions[i] += v_half * dt;
            }
            comm.ctx()
                .charge_compute(my_atoms.len() as f64 * cost.integrate_atom);

            let mine: Vec<f64> = sys.positions[my_atoms.clone()]
                .iter()
                .flat_map(|v| [v.x, v.y, v.z])
                .collect();
            let parts = comm.allgather(mine);
            for (src, part) in parts.iter().enumerate() {
                let range = crate::decomp::block_range(n, p, src);
                for (k, i) in range.enumerate() {
                    sys.positions[i] = Vec3::new(part[3 * k], part[3 * k + 1], part[3 * k + 2]);
                }
            }

            // Scheduled position corruption lands on the fully
            // replicated post-exchange array: every rank applies the
            // identical flip, so the replicas stay consistent and the
            // fault is silent by construction. The flip is pure bit
            // arithmetic — no RNG draw, no virtual time — so timing
            // figures are untouched.
            while next_sdc_pos < sdc_positions.len()
                && sdc_positions[next_sdc_pos].step <= computing
            {
                let s = sdc_positions[next_sdc_pos];
                cpc_md::sdc::flip_vec3_bit(&mut sys.positions, s.atom, s.axis, s.bit);
                next_sdc_pos += 1;
                sdc_fired += 1;
            }

            // ABFT position bracket: the published array must match the
            // redundant integration bit-for-bit. A mismatching tile is
            // detected, localized and repaired in place from the
            // prediction before anything consumes the corrupted value,
            // so the trajectory continues bit-identical to fault-free.
            let mut abft_escalate = false;
            if abft.enabled {
                comm.ctx().charge_compute(2.0 * n as f64 * cost.conv_point);
                let want = cpc_md::abft::tile_digests(&abft_pred, abft.tile);
                let got = cpc_md::abft::tile_digests(&sys.positions, abft.tile);
                for t in cpc_md::abft::mismatched_tiles(&want, &got) {
                    abft_detections += 1;
                    abft_recomputes += 1;
                    corruptions.push(cpc_md::abft::Corruption {
                        step: computing,
                        kind: cpc_md::abft::CorruptionKind::Positions { tile: t },
                    });
                    let lo = t * abft.tile.max(1);
                    let hi = (lo + abft.tile.max(1)).min(n);
                    sys.positions[lo..hi].copy_from_slice(&abft_pred[lo..hi]);
                    comm.ctx()
                        .charge_compute((hi - lo) as f64 * cost.integrate_atom);
                }
            }

            let (mut new_forces, mut e_classic, mut e_pme, mut probe) = eval_forces(
                &mut comm,
                &sys,
                &mut list,
                &opts,
                &cost,
                tuning,
                ppme.as_ref(),
                caps.as_deref(),
                &abft,
            );

            // ABFT in-evaluation invariants (Newton force sum, PME grid
            // charge, transpose block checksums): a violation means the
            // evaluation itself computed garbage, so the targeted
            // recompute is a full re-evaluation, escalating to the
            // rollback rung when the budget is exhausted.
            if abft.enabled {
                let mut attempts = 0usize;
                while let Some(c) = probe_corruption(&probe, &abft, computing) {
                    abft_detections += 1;
                    corruptions.push(c);
                    if attempts >= abft.max_recomputes {
                        abft_escalate = true;
                        break;
                    }
                    attempts += 1;
                    abft_recomputes += 1;
                    (new_forces, e_classic, e_pme, probe) = eval_forces(
                        &mut comm,
                        &sys,
                        &mut list,
                        &opts,
                        &cost,
                        tuning,
                        ppme.as_ref(),
                        caps.as_deref(),
                        &abft,
                    );
                }
            }

            // ABFT force bracket: digest the reduced array at
            // production; verified below, after the corruption window,
            // right before the kick consumes it.
            let abft_force_digests = if abft.enabled {
                comm.ctx().charge_compute(n as f64 * cost.conv_point);
                cpc_md::abft::tile_digests(&new_forces, abft.tile)
            } else {
                Vec::new()
            };
            forces = new_forces;

            // Force corruption strikes the freshly evaluated array
            // before the second half-kick, so the corrupted value
            // propagates into the velocities exactly once.
            while next_sdc_frc < sdc_forces.len() && sdc_forces[next_sdc_frc].step <= computing {
                let s = sdc_forces[next_sdc_frc];
                cpc_md::sdc::flip_vec3_bit(&mut forces, s.atom, s.axis, s.bit);
                next_sdc_frc += 1;
                sdc_fired += 1;
            }

            // Consumption-time verification of the force bracket. On a
            // mismatch every rank re-evaluates once — the flip cursors
            // only advance, so the recompute reproduces the recorded
            // production digests bit-exactly; anything else escalates
            // to the rollback rung of the degradation ladder.
            if abft.enabled {
                comm.ctx().charge_compute(n as f64 * cost.conv_point);
                let got = cpc_md::abft::tile_digests(&forces, abft.tile);
                let bad = cpc_md::abft::mismatched_tiles(&abft_force_digests, &got);
                if !bad.is_empty() {
                    for &t in &bad {
                        abft_detections += 1;
                        corruptions.push(cpc_md::abft::Corruption {
                            step: computing,
                            kind: cpc_md::abft::CorruptionKind::Forces { tile: t },
                        });
                    }
                    abft_recomputes += 1;
                    let (rf, rc, rp, rprobe) = eval_forces(
                        &mut comm,
                        &sys,
                        &mut list,
                        &opts,
                        &cost,
                        tuning,
                        ppme.as_ref(),
                        caps.as_deref(),
                        &abft,
                    );
                    let again = cpc_md::abft::tile_digests(&rf, abft.tile);
                    if cpc_md::abft::mismatched_tiles(&abft_force_digests, &again).is_empty()
                        && probe_corruption(&rprobe, &abft, computing).is_none()
                    {
                        forces = rf;
                        e_classic = rc;
                        e_pme = rp;
                        probe = rprobe;
                    } else {
                        abft_escalate = true;
                    }
                }
            }

            comm.ctx().set_phase(Phase::Integrate);
            for i in my_atoms.clone() {
                let inv_m = ACCEL_CONV / sys.topology.atoms[i].class.mass();
                sys.velocities[i] += forces[i] * (0.5 * dt * inv_m);
            }
            comm.ctx()
                .charge_compute(my_atoms.len() as f64 * cost.integrate_atom);
            let mine: Vec<f64> = sys.velocities[my_atoms.clone()]
                .iter()
                .flat_map(|v| [v.x, v.y, v.z])
                .collect();
            let parts = comm.allgather(mine);
            for (src, part) in parts.iter().enumerate() {
                let range = crate::decomp::block_range(n, p, src);
                for (k, i) in range.enumerate() {
                    sys.velocities[i] = Vec3::new(part[3 * k], part[3 * k + 1], part[3 * k + 2]);
                }
            }

            energies_log.push(StepEnergies {
                classic: e_classic,
                pme: e_pme,
                kinetic: sys.kinetic_energy(),
            });
            step += 1;

            // Compact digest of this step's replicated state, exchanged
            // with the next heartbeat for the cross-rank replica vote.
            // Masked to 52 bits so it rides an f64 control payload
            // exactly.
            if abft.enabled {
                comm.ctx().charge_compute(n as f64 * cost.conv_point);
                let step_digest = cpc_md::abft::combine_digests(&[
                    probe.classic_digest,
                    cpc_md::abft::vec3_digest(&forces),
                    cpc_md::abft::scalar_digest(&[e_classic, e_pme]),
                ]);
                last_digest = (step_digest & cpc_md::abft::DIGEST_MASK) as f64;
            }

            // Per-unit cost measurement for the next heartbeat report:
            // this rank's compute seconds over the step, normalized by
            // its pair share. The per-unit cost is invariant under the
            // assignment (half the pairs on a 2x-slow node still cost
            // 2x per pair), so it localizes the *node*, not the cut.
            // Pure host-side arithmetic: no virtual time is charged.
            let cuts = match &caps {
                Some(c) => balanced_pair_cuts_weighted(&list.pairs, p, c),
                None => balanced_pair_cuts(&list.pairs, p),
            };
            let units = (cuts[comm.rank() + 1] - cuts[comm.rank()]).max(1) as f64;
            let comp_after = comm.ctx().stats.total().comp;
            last_unit_cost = (comp_after - comp_before) / units;

            // Numerical watchdog: a blown-up trajectory (NaN/inf
            // coordinates or runaway total-energy drift) is a fault
            // like any other — roll back to the last good checkpoint
            // rather than checkpointing garbage. The check itself is
            // FT machinery and charges no virtual time.
            let e_total = e_classic + e_pme + energies_log.last().map_or(0.0, |e| e.kinetic);
            if e_ref.is_none() && e_total.is_finite() {
                e_ref = Some(e_total);
            }
            let blown_up = abft_escalate
                || !e_total.is_finite()
                || sys
                    .positions
                    .iter()
                    .any(|p| !(p.x.is_finite() && p.y.is_finite() && p.z.is_finite()))
                || e_ref.is_some_and(|e0| {
                    (e_total - e0).abs() / e0.abs().max(1.0) > watchdog.max_rel_drift
                });
            if blown_up {
                watchdog_trips += 1;
                if watchdog_trips > watchdog.max_rollbacks {
                    // The blow-up is deterministic from this state:
                    // further rollbacks would re-trip forever.
                    diverged = true;
                    break;
                }
                comm.ctx().set_phase(Phase::Recovery);
                sys.positions.clone_from(&ckpt.positions);
                sys.velocities.clone_from(&ckpt.velocities);
                forces.clone_from(&ckpt.forces);
                step = ckpt.step;
                energies_log.truncate(step);
                // Roll the drift reference back too: if the blow-up
                // corrupted the reference step itself (an SDC flip on
                // step 1), keeping the stale reference would condemn
                // the clean re-run as diverged.
                e_ref = energies_log
                    .first()
                    .map(|e| e.classic + e.pme + e.kinetic)
                    .filter(|e| e.is_finite());
                comm.ctx().charge_compute(CKPT_BYTE_COST * ckpt.bytes());
                if list.needs_rebuild(&sys.pbox, &sys.positions) {
                    list.rebuild(&sys.topology, &sys.pbox, &sys.positions);
                    let rebuild_cost =
                        list.pairs.len() as f64 * 2.5 * cost.list_build_pair / comm.size() as f64;
                    comm.ctx().charge_compute(rebuild_cost);
                }
                continue;
            }

            // Adaptive degradation ladder, evaluated only at checkpoint
            // boundaries so fault-free runs stay bit-identical and every
            // member takes the same decision at the same step:
            //
            //   rebalance  — re-cut the pair partition (and PME planes)
            //                proportionally to measured speeds; no
            //                rollback, no recovery episode;
            //   evict      — a member past `phi_evict` is treated as
            //                crashed: it leaves gracefully, survivors
            //                shrink and re-cut; still no rollback;
            //   rollback   — the existing crash/watchdog rung.
            //
            // All inputs are the replicated heartbeat reports, so the
            // verdicts agree on every rank with zero agreement traffic.
            if step.is_multiple_of(ckpt_every) && step < steps {
                let members: Vec<usize> = comm.members().to_vec();
                if let Some(victim) = det.evict_candidate(&members) {
                    evictions += 1;
                    if victim == comm.global_rank() {
                        // Leave at the boundary: state is replicated,
                        // so nothing needs saving or shipping.
                        evicted = true;
                        break;
                    }
                    // Survivors agree on the smaller membership,
                    // re-derive the uniform decomposition over it and
                    // re-synchronize; booked as recovery (it is one —
                    // a gray failure handled without rollback).
                    comm.ctx().set_phase(Phase::Recovery);
                    comm.shrink(&[victim]);
                    det.forget(victim);
                    caps = None;
                    ppme = make_pme(model, pme_impl, tuning, comm.size(), None, abft.enabled);
                    comm.ctx().charge_compute(CKPT_BYTE_COST * ckpt.bytes());
                    let _ = comm.try_barrier();
                } else if recovery.rebalance {
                    if let Some(rel) = det.relative_costs(&members) {
                        // Desired capacity of member j is the inverse of
                        // its measured relative cost (clamped away from
                        // degenerate reports). Re-cut only when some
                        // member's weight is off by more than the
                        // trigger factor in either direction — a
                        // fault-free cohort never gets close.
                        let want: Vec<f64> =
                            rel.iter().map(|r| 1.0 / r.clamp(0.01, 100.0)).collect();
                        let off = |cur: f64, w: f64| {
                            let ratio = if cur > w { cur / w } else { w / cur };
                            ratio > recovery.rebalance_trigger
                        };
                        let fire = match &caps {
                            Some(cur) => cur.iter().zip(&want).any(|(&c, &w)| off(c, w)),
                            None => want.iter().any(|&w| off(1.0, w)),
                        };
                        if fire {
                            rebalances += 1;
                            ppme = make_pme(
                                model,
                                pme_impl,
                                tuning,
                                comm.size(),
                                Some(&want),
                                abft.enabled,
                            );
                            caps = Some(want);
                        }
                    }
                }
            }

            if step.is_multiple_of(ckpt_every) {
                ckpt = Checkpoint {
                    step,
                    positions: sys.positions.clone(),
                    velocities: sys.velocities.clone(),
                    forces: forces.clone(),
                };
                comm.ctx().set_phase(Phase::Other);
                comm.ctx().charge_compute(CKPT_BYTE_COST * ckpt.bytes());
                if comm.rank() == 0 {
                    if let Some(store) = store.as_mut() {
                        let snap = durable_snapshot(&sys, &forces, &energies_log, step);
                        let now = comm.ctx().now();
                        store.save(&snap, now).expect("durable checkpoint write");
                    }
                }
            }
        }
        RankRun {
            energies: energies_log,
            positions: sys.positions,
            velocities: sys.velocities,
            recoveries,
            watchdog_trips,
            diverged,
            resumed_from,
            sdc_fired,
            evicted,
            rebalances,
            evictions,
            phi_max: det.phi_max(),
            srtt_max: det.srtt_max().unwrap_or(0.0),
            abft_detections,
            abft_recomputes,
            corruptions,
        }
    })?;

    let crashed_ranks: Vec<usize> = outcomes
        .iter()
        .filter(|o| o.crashed)
        .map(|o| o.rank)
        .collect();
    let evicted_ranks: Vec<usize> = outcomes
        .iter()
        .filter(|o| o.result.as_ref().is_some_and(|r| r.evicted))
        .map(|o| o.rank)
        .collect();
    let survivors = outcomes.len() - crashed_ranks.len() - evicted_ranks.len();
    let wall_time = outcomes
        .iter()
        .filter(|o| !o.crashed)
        .map(|o| o.finish_time)
        .fold(0.0, f64::max);
    let recovery_time = outcomes
        .iter()
        .map(|o| o.stats.bucket(Phase::Recovery).total())
        .fold(0.0, f64::max);

    let mut step_energies = Vec::new();
    let mut final_positions = Vec::new();
    let mut final_velocities = Vec::new();
    let mut recoveries = 0usize;
    let mut watchdog_trips = 0usize;
    let mut diverged = false;
    let mut resumed_from = None;
    let mut sdc_events = 0usize;
    let mut rebalances = 0usize;
    let mut evictions = 0usize;
    let mut phi_max = 0.0f64;
    let mut srtt_max = 0.0f64;
    let mut abft_detections = 0usize;
    let mut abft_recomputes = 0usize;
    let mut corruptions: Vec<cpc_md::abft::Corruption> = Vec::new();
    for o in &outcomes {
        if let Some(r) = &o.result {
            recoveries = recoveries.max(r.recoveries);
            watchdog_trips = watchdog_trips.max(r.watchdog_trips);
            diverged |= r.diverged;
            sdc_events = sdc_events.max(r.sdc_fired);
            rebalances = rebalances.max(r.rebalances);
            evictions = evictions.max(r.evictions);
            phi_max = phi_max.max(r.phi_max);
            srtt_max = srtt_max.max(r.srtt_max);
            abft_detections = abft_detections.max(r.abft_detections);
            abft_recomputes = abft_recomputes.max(r.abft_recomputes);
            if resumed_from.is_none() {
                resumed_from = r.resumed_from;
            }
            // Physics comes from the first rank that ran to the end; an
            // evicted member left at a boundary with a truncated log.
            if step_energies.is_empty() && !r.evicted {
                step_energies = r.energies.clone();
                final_positions = r.positions.clone();
                final_velocities = r.velocities.clone();
                corruptions = r.corruptions.clone();
            }
        }
    }
    let completed = survivors > 0 && step_energies.len() == steps && !diverged;
    let per_rank = outcomes.into_iter().map(|o| o.stats).collect();

    Ok(FtReport {
        report: RunReport {
            cluster: cfg.cluster,
            middleware: cfg.middleware,
            steps: cfg.steps,
            per_rank,
            wall_time,
            step_energies,
            final_positions,
            final_velocities,
        },
        crashed_ranks,
        survivors,
        recoveries,
        recovery_time,
        watchdog_trips,
        diverged,
        resumed_from,
        sdc_events,
        restore_failure: None,
        completed,
        rebalances,
        evictions,
        evicted_ranks,
        phi_max,
        srtt_max,
        abft_detections,
        abft_recomputes,
        corruptions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::run_parallel_md;
    use cpc_cluster::{ClusterConfig, NetworkKind};
    use cpc_mpi::Middleware;

    fn test_system() -> System {
        let mut sys = cpc_md::builder::water_box(2, 3.1);
        cpc_md::minimize::minimize(&mut sys, EnergyModel::Classic, 40);
        sys.assign_velocities(150.0, 3);
        sys
    }

    fn test_cfg(p: usize, steps: usize) -> MdConfig {
        MdConfig {
            steps,
            ..MdConfig::paper_protocol(
                EnergyModel::Classic,
                Middleware::Mpi,
                ClusterConfig::uni(p, NetworkKind::ScoreGigE),
            )
        }
    }

    #[test]
    fn zero_plan_matches_plain_driver_physics() {
        let sys = test_system();
        let cfg = test_cfg(3, 3);
        let plain = run_parallel_md(&sys, &cfg);
        let ft = run_parallel_md_faulty(&sys, &cfg, &FaultConfig::default()).unwrap();
        assert!(ft.completed);
        assert!(ft.crashed_ranks.is_empty());
        assert_eq!(ft.recoveries, 0);
        assert_eq!(ft.recovery_time, 0.0);
        // A healthy cohort never trips the adaptive ladder.
        assert_eq!(ft.rebalances, 0);
        assert_eq!(ft.evictions, 0);
        assert!(ft.evicted_ranks.is_empty());
        assert!(ft.srtt_max > 0.0, "heartbeat RTTs were observed");
        // Heartbeats change timing, never physics: bit-identical state.
        assert_eq!(ft.report.final_positions, plain.final_positions);
        assert_eq!(ft.report.final_velocities, plain.final_velocities);
    }

    #[test]
    fn armed_abft_fault_free_is_bit_identical_with_zero_verdicts() {
        let sys = test_system();
        let cfg = test_cfg(3, 3);
        let plain = run_parallel_md(&sys, &cfg);
        let armed = FaultConfig::default().with_abft(AbftConfig::armed());
        let ft = run_parallel_md_faulty(&sys, &cfg, &armed).unwrap();
        assert!(ft.completed);
        assert_eq!(ft.abft_detections, 0, "no false positives");
        assert_eq!(ft.abft_recomputes, 0);
        assert!(ft.corruptions.is_empty());
        // Every check is a pure side read: armed physics is
        // bit-identical to the plain driver, only timing moves.
        assert_eq!(ft.report.final_positions, plain.final_positions);
        assert_eq!(ft.report.final_velocities, plain.final_velocities);
        for (a, b) in ft.report.step_energies.iter().zip(&plain.step_energies) {
            assert_eq!(a.classic.to_bits(), b.classic.to_bits());
            assert_eq!(a.kinetic.to_bits(), b.kinetic.to_bits());
        }
    }

    #[test]
    fn abft_repairs_gray_position_flip_bit_exactly() {
        let sys = test_system();
        let cfg = test_cfg(3, 4);
        let armed = AbftConfig::armed();
        let golden =
            run_parallel_md_faulty(&sys, &cfg, &FaultConfig::default().with_abft(armed)).unwrap();
        // Bit 40 on a position coordinate: the gray zone PR 3 could
        // neither detect (too small for the watchdog) nor ignore (far
        // above benign tolerance).
        let plan = FaultPlan::none().with_sdc(SdcFault {
            step: 2,
            target: SdcTarget::Positions,
            atom: 5,
            axis: 1,
            bit: 40,
        });
        let ft =
            run_parallel_md_faulty(&sys, &cfg, &FaultConfig::new(plan).with_abft(armed)).unwrap();
        assert!(ft.completed);
        assert_eq!(ft.sdc_events, 1, "the flip fired");
        assert_eq!(ft.abft_detections, 1, "and was caught");
        assert_eq!(ft.abft_recomputes, 1, "and repaired in place");
        assert_eq!(ft.watchdog_trips, 0, "before the watchdog ever saw it");
        assert_eq!(ft.corruptions.len(), 1);
        assert!(matches!(
            ft.corruptions[0].kind,
            cpc_md::abft::CorruptionKind::Positions { .. }
        ));
        // The repair restores the exact clean value: the trajectory is
        // bit-identical to the fault-free armed run.
        assert_eq!(ft.report.final_positions, golden.report.final_positions);
        assert_eq!(ft.report.final_velocities, golden.report.final_velocities);
    }

    #[test]
    fn abft_catches_force_flip_and_recomputes_bit_exactly() {
        let sys = test_system();
        let cfg = test_cfg(3, 4);
        let armed = AbftConfig::armed();
        let golden =
            run_parallel_md_faulty(&sys, &cfg, &FaultConfig::default().with_abft(armed)).unwrap();
        let plan = FaultPlan::none().with_sdc(SdcFault {
            step: 3,
            target: SdcTarget::Forces,
            atom: 11,
            axis: 2,
            bit: 55,
        });
        let ft =
            run_parallel_md_faulty(&sys, &cfg, &FaultConfig::new(plan).with_abft(armed)).unwrap();
        assert!(ft.completed);
        assert_eq!(ft.sdc_events, 1);
        assert_eq!(ft.abft_detections, 1);
        assert!(ft.abft_recomputes >= 1, "targeted re-evaluation ran");
        assert_eq!(ft.watchdog_trips, 0);
        assert_eq!(ft.report.final_positions, golden.report.final_positions);
        assert_eq!(ft.report.final_velocities, golden.report.final_velocities);
    }

    #[test]
    fn disarmed_gray_flip_stays_silent_the_pr3_status_quo() {
        // Without ABFT the same flip corrupts the trajectory without
        // tripping anything — the gray zone this subsystem closes.
        let sys = test_system();
        let cfg = test_cfg(3, 4);
        let golden = run_parallel_md_faulty(&sys, &cfg, &FaultConfig::default()).unwrap();
        let plan = FaultPlan::none().with_sdc(SdcFault {
            step: 2,
            target: SdcTarget::Positions,
            atom: 5,
            axis: 1,
            bit: 40,
        });
        let ft = run_parallel_md_faulty(&sys, &cfg, &FaultConfig::new(plan)).unwrap();
        assert!(ft.completed);
        assert_eq!(ft.sdc_events, 1);
        assert_eq!(ft.abft_detections, 0);
        assert_eq!(ft.watchdog_trips, 0, "too small for the watchdog");
        assert_ne!(
            ft.report.final_positions, golden.report.final_positions,
            "yet the trajectory silently diverged"
        );
    }

    #[test]
    fn armed_abft_pme_invariants_hold_fault_free() {
        use cpc_fft::Dims3;
        use cpc_md::pme::PmeParams;
        let sys = test_system();
        let cfg = MdConfig {
            steps: 2,
            ..MdConfig::paper_protocol(
                EnergyModel::Pme(PmeParams {
                    grid: Dims3::new(16, 16, 16),
                    order: 4,
                    beta: 0.34,
                }),
                Middleware::Mpi,
                ClusterConfig::uni(3, NetworkKind::ScoreGigE),
            )
        };
        let plain = run_parallel_md(&sys, &cfg);
        let armed = FaultConfig::default().with_abft(AbftConfig::armed());
        let ft = run_parallel_md_faulty(&sys, &cfg, &armed).unwrap();
        assert!(ft.completed);
        assert_eq!(
            ft.abft_detections, 0,
            "grid/transpose/Newton invariants stay silent on clean runs"
        );
        assert_eq!(ft.report.final_positions, plain.final_positions);
    }

    /// A system big enough for compute to dominate communication: on
    /// the tiny two-cell box the combine latency hides a straggler's
    /// compute entirely (the paper's comm-bound regime) and there is
    /// nothing for a re-cut to win.
    fn big_system() -> System {
        let mut sys = cpc_md::builder::water_box(3, 3.1);
        cpc_md::minimize::minimize(&mut sys, EnergyModel::Classic, 40);
        sys.assign_velocities(150.0, 3);
        sys
    }

    #[test]
    fn persistent_straggler_rebalances_without_rollback() {
        let sys = big_system();
        let cfg = test_cfg(4, 6);
        let fault = FaultConfig::new(FaultPlan::none().with_straggler(0, 2.0));
        let ft = run_parallel_md_faulty(&sys, &cfg, &fault).unwrap();
        assert!(ft.completed);
        assert!(ft.rebalances >= 1, "the detector re-cut the partition");
        assert_eq!(ft.recoveries, 0, "no rollback for a mere straggler");
        assert_eq!(ft.watchdog_trips, 0);
        assert_eq!(ft.evictions, 0, "2x is suspect territory, not evict");
        assert!(ft.phi_max > cpc_mpi::PHI_SCALE, "suspicion accrued");

        // The re-cut only regroups the force summation: physics stays
        // within reassociation noise of the plain trajectory.
        let plain = run_parallel_md(&sys, &cfg);
        let max_dev = ft
            .report
            .final_positions
            .iter()
            .zip(&plain.final_positions)
            .map(|(a, b)| (*a - *b).norm())
            .fold(0.0f64, f64::max);
        assert!(max_dev < 1e-6, "max deviation {max_dev}");

        // ...and it pays: the same schedule under a static decomposition
        // is strictly slower.
        let static_fault = fault.clone().with_recovery(RecoveryConfig {
            rebalance: false,
            ..RecoveryConfig::default()
        });
        let static_ft = run_parallel_md_faulty(&sys, &cfg, &static_fault).unwrap();
        assert_eq!(static_ft.rebalances, 0, "reference keeps static cuts");
        assert!(
            ft.report.wall_time < static_ft.report.wall_time,
            "adaptive {} vs static {}",
            ft.report.wall_time,
            static_ft.report.wall_time
        );
    }

    #[test]
    fn severe_straggler_is_evicted_without_rollback() {
        let sys = test_system();
        let cfg = test_cfg(4, 6);
        let fault = FaultConfig::new(FaultPlan::none().with_straggler(0, 6.0));
        let ft = run_parallel_md_faulty(&sys, &cfg, &fault).unwrap();
        assert_eq!(ft.evicted_ranks, vec![0], "the 6x node is cut loose");
        assert_eq!(ft.evictions, 1);
        assert_eq!(ft.survivors, 3);
        assert!(ft.crashed_ranks.is_empty(), "eviction is not a crash");
        assert_eq!(ft.recoveries, 0, "graceful exit needs no rollback");
        assert!(ft.completed, "survivors finish all steps");
        assert!(
            ft.recovery_time > 0.0,
            "membership agreement is booked as recovery"
        );
        // Replicated data means the trajectory survives the eviction.
        let plain = run_parallel_md(&sys, &cfg);
        let max_dev = ft
            .report
            .final_positions
            .iter()
            .zip(&plain.final_positions)
            .map(|(a, b)| (*a - *b).norm())
            .fold(0.0f64, f64::max);
        assert!(max_dev < 1e-6, "max deviation {max_dev}");
    }

    #[test]
    fn sparse_heartbeats_still_detect_crashes() {
        let sys = test_system();
        let cfg = test_cfg(3, 4);
        let wall = run_parallel_md(&sys, &cfg).wall_time;
        let fault = FaultConfig::new(FaultPlan::none().with_crash(2, 0.5 * wall)).with_recovery(
            RecoveryConfig {
                heartbeat_interval: 2,
                ..RecoveryConfig::default()
            },
        );
        let ft = run_parallel_md_faulty(&sys, &cfg, &fault).unwrap();
        assert_eq!(ft.crashed_ranks, vec![2]);
        assert!(ft.completed);
        assert!(ft.recoveries >= 1);
    }

    #[test]
    fn crash_recovers_from_checkpoint_and_completes() {
        let sys = test_system();
        let cfg = test_cfg(3, 4);
        // Crash rank 2 mid-run (about half the fault-free wall time).
        let wall = run_parallel_md(&sys, &cfg).wall_time;
        let fault = FaultConfig::new(FaultPlan::none().with_crash(2, 0.5 * wall));
        let ft = run_parallel_md_faulty(&sys, &cfg, &fault).unwrap();
        assert_eq!(ft.crashed_ranks, vec![2]);
        assert_eq!(ft.survivors, 2);
        assert!(ft.completed, "survivors finish all steps");
        assert!(ft.recoveries >= 1);
        assert!(ft.recovery_time > 0.0, "recovery is booked time");
        assert_eq!(ft.report.step_energies.len(), 4);
        // Replicated-data restart preserves the trajectory: the
        // re-run steps recompute the same physics.
        let plain = run_parallel_md(&sys, &cfg);
        let max_dev = ft
            .report
            .final_positions
            .iter()
            .zip(&plain.final_positions)
            .map(|(a, b)| (*a - *b).norm())
            .fold(0.0f64, f64::max);
        assert!(max_dev < 1e-7, "max deviation {max_dev}");
    }

    #[test]
    fn immediate_crash_restarts_from_step_zero() {
        let sys = test_system();
        let cfg = test_cfg(4, 2);
        let fault = FaultConfig::new(FaultPlan::none().with_crash(1, 0.0));
        let ft = run_parallel_md_faulty(&sys, &cfg, &fault).unwrap();
        assert_eq!(ft.crashed_ranks, vec![1]);
        assert_eq!(ft.survivors, 3);
        assert!(ft.completed);
        assert_eq!(ft.report.step_energies.len(), 2);
    }

    fn tmp_ckpt_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("cpc-recover-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn durable_checkpointing_never_perturbs_timing_or_physics() {
        let sys = test_system();
        let cfg = test_cfg(3, 3);
        let dir = tmp_ckpt_dir("timing");
        let plain = run_parallel_md_faulty(&sys, &cfg, &FaultConfig::default()).unwrap();
        let durable = FaultConfig::default().with_durable(DurableConfig::new(&dir));
        let with_store = run_parallel_md_faulty(&sys, &cfg, &durable).unwrap();
        // Durable writes live outside the virtual clock: calibrated
        // timing and trajectory are bit-identical either way.
        assert_eq!(with_store.report.wall_time, plain.report.wall_time);
        assert_eq!(
            with_store.report.final_positions,
            plain.report.final_positions
        );
        assert_eq!(with_store.report.step_energies, plain.report.step_energies);
        // ...and the generations really are on disk and intact.
        let store = CheckpointStore::open(&dir, 8).unwrap();
        assert!(!store.generations().unwrap().is_empty());
        let (hit, notes) = store.restore_newest_intact().unwrap();
        assert!(hit.is_some());
        assert!(notes.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_after_process_restart_matches_uninterrupted_run() {
        let sys = test_system();
        let dir = tmp_ckpt_dir("resume");
        // "First process": killed after 2 of 4 steps (checkpoint lands
        // at step 2 with the default interval of 2).
        let partial = FaultConfig::default().with_durable(DurableConfig::new(&dir));
        run_parallel_md_faulty(&sys, &test_cfg(3, 2), &partial).unwrap();
        // "Restarted process": resumes from disk and finishes.
        let resumed_cfg =
            FaultConfig::default().with_durable(DurableConfig::new(&dir).with_resume(true));
        let resumed = run_parallel_md_faulty(&sys, &test_cfg(3, 4), &resumed_cfg).unwrap();
        assert_eq!(resumed.resumed_from, Some(2));
        assert!(resumed.completed);
        // Reference: the same 4 steps without any interruption.
        let full = run_parallel_md_faulty(&sys, &test_cfg(3, 4), &FaultConfig::default()).unwrap();
        assert_eq!(resumed.report.step_energies, full.report.step_energies);
        assert_eq!(resumed.report.final_positions, full.report.final_positions);
        assert_eq!(
            resumed.report.final_velocities,
            full.report.final_velocities
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_falls_back_past_a_corrupted_generation() {
        let sys = test_system();
        let dir = tmp_ckpt_dir("fallback");
        let partial = FaultConfig::default().with_durable(DurableConfig::new(&dir));
        run_parallel_md_faulty(&sys, &test_cfg(3, 2), &partial).unwrap();
        // Damage the newest generation (step 2) on disk.
        let newest = dir.join("ckpt-0000000002.cpcsnap");
        let mut bytes = std::fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&newest, &bytes).unwrap();

        let resumed_cfg =
            FaultConfig::default().with_durable(DurableConfig::new(&dir).with_resume(true));
        let resumed = run_parallel_md_faulty(&sys, &test_cfg(3, 4), &resumed_cfg).unwrap();
        // Checksums catch the damage; the run restarts from the older
        // intact generation and still reproduces the trajectory.
        assert_eq!(resumed.resumed_from, Some(0));
        assert!(resumed.completed);
        let full = run_parallel_md_faulty(&sys, &test_cfg(3, 4), &FaultConfig::default()).unwrap();
        assert_eq!(resumed.report.final_positions, full.report.final_positions);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn watchdog_classifies_blowup_and_gives_up_deterministically() {
        let sys = test_system();
        let cfg = test_cfg(3, 4);
        // A zero drift tolerance makes any energy fluctuation a
        // "blow-up": the rollback re-runs the same steps, re-trips, and
        // after max_rollbacks the run is declared diverged.
        let fault = FaultConfig::default().with_watchdog(WatchdogConfig {
            max_rel_drift: 0.0,
            max_rollbacks: 2,
        });
        let ft = run_parallel_md_faulty(&sys, &cfg, &fault).unwrap();
        assert_eq!(ft.watchdog_trips, 3, "two rollbacks, then the fatal trip");
        assert!(ft.diverged);
        assert!(!ft.completed);
        assert!(ft.recovery_time > 0.0, "rollbacks are booked as recovery");
        assert!(ft.crashed_ranks.is_empty(), "no process actually died");
    }

    #[test]
    fn watchdog_stays_silent_on_healthy_runs() {
        let sys = test_system();
        let cfg = test_cfg(3, 3);
        let ft = run_parallel_md_faulty(&sys, &cfg, &FaultConfig::default()).unwrap();
        assert_eq!(ft.watchdog_trips, 0);
        assert!(!ft.diverged);
        assert!(ft.completed);
    }

    #[test]
    fn overhead_guard_rejects_degenerate_references() {
        let sys = test_system();
        let cfg = test_cfg(2, 1);
        let ft = run_parallel_md_faulty(&sys, &cfg, &FaultConfig::default()).unwrap();
        assert!(ft.overhead_vs(0.0).is_none());
        assert!(ft.overhead_vs(-1.0).is_none());
        assert!(ft.overhead_vs(f64::NAN).is_none());
        assert!(ft.overhead_vs(f64::INFINITY).is_none());
        let wall = ft.report.wall_time;
        assert_eq!(ft.overhead_vs(wall), Some(0.0));
        let doubled = ft.overhead_vs(wall / 2.0).unwrap();
        assert!((doubled - 1.0).abs() < 1e-12);
    }

    #[test]
    fn benign_sdc_fires_silently_and_stays_tiny() {
        let sys = test_system();
        let cfg = test_cfg(3, 3);
        let golden = run_parallel_md_faulty(&sys, &cfg, &FaultConfig::default()).unwrap();
        // Low-mantissa flip: relative error ~1e-11, invisible to the
        // watchdog, but the trajectory is no longer bit-identical.
        let fault = FaultConfig::new(FaultPlan::none().with_sdc(cpc_cluster::SdcFault {
            step: 2,
            target: cpc_cluster::SdcTarget::Positions,
            atom: 5,
            axis: 1,
            bit: 16,
        }));
        let ft = run_parallel_md_faulty(&sys, &cfg, &fault).unwrap();
        assert_eq!(ft.sdc_events, 1, "the flip fired exactly once");
        assert_eq!(ft.watchdog_trips, 0, "benign flips are silent");
        assert!(ft.completed);
        assert_ne!(
            ft.report.final_positions, golden.report.final_positions,
            "the corruption is real"
        );
        let max_dev = ft
            .report
            .final_positions
            .iter()
            .zip(&golden.report.final_positions)
            .map(|(a, b)| (*a - *b).norm())
            .fold(0.0f64, f64::max);
        assert!(max_dev < 1e-9, "benign deviation stays tiny: {max_dev}");
        // Timing is untouched: SDC charges no virtual time.
        assert_eq!(ft.report.wall_time, golden.report.wall_time);
    }

    #[test]
    fn detectable_sdc_trips_watchdog_and_recovers_exactly() {
        let sys = test_system();
        let cfg = test_cfg(3, 4);
        let golden = run_parallel_md_faulty(&sys, &cfg, &FaultConfig::default()).unwrap();
        // High-exponent flip in the position array: the blow-up is
        // caught by the watchdog, the run rolls back, and — because the
        // cosmic ray only struck once — the re-run is clean and ends
        // bit-identical to the golden trajectory.
        let fault = FaultConfig::new(FaultPlan::none().with_sdc(cpc_cluster::SdcFault {
            step: 3,
            target: cpc_cluster::SdcTarget::Positions,
            atom: 2,
            axis: 0,
            bit: 62,
        }));
        let ft = run_parallel_md_faulty(&sys, &cfg, &fault).unwrap();
        assert_eq!(ft.sdc_events, 1);
        assert!(ft.watchdog_trips >= 1, "the blow-up is detected");
        assert!(!ft.diverged);
        assert!(ft.completed);
        assert_eq!(ft.report.final_positions, golden.report.final_positions);
        assert_eq!(ft.report.final_velocities, golden.report.final_velocities);
    }

    #[test]
    fn resume_with_all_generations_corrupt_reports_restore_failure() {
        let sys = test_system();
        let dir = tmp_ckpt_dir("allcorrupt");
        let partial = FaultConfig::default().with_durable(DurableConfig::new(&dir));
        run_parallel_md_faulty(&sys, &test_cfg(3, 2), &partial).unwrap();
        // Damage every generation on disk.
        for entry in std::fs::read_dir(&dir).unwrap() {
            let path = entry.unwrap().path();
            let mut bytes = std::fs::read(&path).unwrap();
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x01;
            std::fs::write(&path, &bytes).unwrap();
        }
        let resumed_cfg =
            FaultConfig::default().with_durable(DurableConfig::new(&dir).with_resume(true));
        let ft = run_parallel_md_faulty(&sys, &test_cfg(3, 4), &resumed_cfg).unwrap();
        // The driver refuses to masquerade a from-scratch restart as a
        // recovery: the run is classified diverged before step 0.
        assert!(ft.diverged);
        assert!(!ft.completed);
        assert!(ft.restore_failure.is_some());
        let reason = ft.restore_failure.unwrap();
        assert!(reason.contains("corrupt"), "reason: {reason}");
        assert_eq!(ft.resumed_from, None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn faulty_runs_replay_bit_identically() {
        let sys = test_system();
        let cfg = test_cfg(3, 3);
        let wall = run_parallel_md(&sys, &cfg).wall_time;
        let fault = FaultConfig::new(
            FaultPlan::none()
                .with_loss(0.05)
                .with_straggler(0, 1.5)
                .with_crash(2, 0.5 * wall),
        );
        let run = || run_parallel_md_faulty(&sys, &cfg, &fault).unwrap();
        let (a, b) = (run(), run());
        assert_eq!(a.report.wall_time, b.report.wall_time);
        assert_eq!(a.report.final_positions, b.report.final_positions);
        assert_eq!(a.recovery_time, b.recovery_time);
        assert_eq!(a.crashed_ranks, b.crashed_ranks);
    }
}
