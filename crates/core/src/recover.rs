//! Fault-tolerant MD driver: the replicated-data loop of
//! [`crate::driver`] hardened with periodic in-memory checkpoints,
//! heartbeat-based failure detection and shrinking recovery.
//!
//! The replicated-data decomposition makes recovery unusually cheap:
//! every rank holds the full system state, so when a rank dies the
//! survivors only need to agree on the new membership, roll back to the
//! last checkpoint (re-running at most `checkpoint_interval - 1` steps)
//! and re-partition the work over the smaller communicator. No state
//! lives exclusively on the dead rank. The cost of that agreement and
//! rollback is booked under [`Phase::Recovery`] so survivability
//! reports can separate it from productive work.

use crate::classic::classic_energy_parallel_with;
use crate::driver::{CommTuning, MdConfig, PmeImpl};
use crate::pme_par::ParallelPme;
use crate::pme_spatial::SpatialPme;
use crate::report::{RunReport, StepEnergies};
use cpc_cluster::{run_cluster_faulty, CostModel, FaultPlan, Phase, SimError};
use cpc_md::energy::EnergyModel;
use cpc_md::neighbor::NeighborList;
use cpc_md::nonbonded::NonbondedOptions;
use cpc_md::units::ACCEL_CONV;
use cpc_md::{System, Vec3};
use cpc_mpi::Comm;

/// Cost of writing or reading checkpoint state, seconds per byte
/// (~1 GB/s: a local memory/disk copy, not a network operation).
const CKPT_BYTE_COST: f64 = 1e-9;

/// Neighbour-list skin (matches [`crate::driver`]).
const SKIN: f64 = 2.0;

/// Fault-tolerance configuration for a run.
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// The fault plan injected into the cluster.
    pub plan: FaultPlan,
    /// Steps between checkpoints (a checkpoint is also taken at step
    /// 0); rollback re-runs at most `checkpoint_interval - 1` steps.
    pub checkpoint_interval: usize,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            plan: FaultPlan::none(),
            checkpoint_interval: 2,
        }
    }
}

impl FaultConfig {
    /// Configuration injecting `plan` with the default checkpoint
    /// cadence.
    pub fn new(plan: FaultPlan) -> Self {
        FaultConfig {
            plan,
            ..FaultConfig::default()
        }
    }
}

/// Outcome of a fault-tolerant run: the usual report plus
/// survivability bookkeeping.
#[derive(Debug, Clone)]
pub struct FtReport {
    /// The run report (physics payload from the lowest-ranked
    /// survivor; per-rank stats from everyone, crashed ranks included).
    pub report: RunReport,
    /// Engine ranks that crashed during the run, ascending.
    pub crashed_ranks: Vec<usize>,
    /// Ranks still alive at the end.
    pub survivors: usize,
    /// Recovery episodes the survivors went through (several ranks
    /// dying between two heartbeats count as one episode).
    pub recoveries: usize,
    /// Wall-clock (virtual) seconds spent in [`Phase::Recovery`],
    /// maximum over ranks.
    pub recovery_time: f64,
    /// Whether the survivors completed all configured steps.
    pub completed: bool,
}

impl FtReport {
    /// Overhead of this run versus a reference (fault-free) wall time:
    /// `wall / reference - 1`. Negative only if the run died early.
    pub fn overhead_vs(&self, reference_wall: f64) -> f64 {
        if reference_wall > 0.0 {
            self.report.wall_time / reference_wall - 1.0
        } else {
            0.0
        }
    }
}

/// State captured at a checkpoint. Replicated on every rank, so
/// restoring needs no communication — only the membership agreement
/// that precedes it.
struct Checkpoint {
    step: usize,
    positions: Vec<Vec3>,
    velocities: Vec<Vec3>,
    forces: Vec<Vec3>,
}

impl Checkpoint {
    fn bytes(&self) -> f64 {
        // Three Vec3 arrays of f64.
        72.0 * self.positions.len() as f64
    }
}

enum PmeEngine {
    Replicated(ParallelPme),
    Spatial(SpatialPme),
}

fn make_pme(
    model: EnergyModel,
    pme_impl: PmeImpl,
    tuning: CommTuning,
    p: usize,
) -> Option<PmeEngine> {
    match model {
        EnergyModel::Pme(params) => Some(match pme_impl {
            PmeImpl::Replicated => PmeEngine::Replicated(
                ParallelPme::new(params, p)
                    .with_grid_sum(tuning.grid_sum)
                    .with_force_combine(tuning.force_combine),
            ),
            PmeImpl::Spatial => {
                PmeEngine::Spatial(SpatialPme::new(params, p).with_force_combine(tuning.force_combine))
            }
        }),
        EnergyModel::Classic => None,
    }
}

/// One full force evaluation over the *current* communicator (same
/// structure as the closure in [`crate::driver::run_parallel_md`], but
/// a free function so the PME engine can be rebuilt after a shrink).
#[allow(clippy::too_many_arguments)]
fn eval_forces(
    comm: &mut Comm<'_>,
    sys: &System,
    list: &mut NeighborList,
    opts: &NonbondedOptions,
    cost: &CostModel,
    tuning: CommTuning,
    ppme: Option<&PmeEngine>,
) -> (Vec<Vec3>, f64, f64) {
    let p = comm.size();
    comm.ctx().set_phase(Phase::Classic);
    if list.needs_rebuild(&sys.pbox, &sys.positions) {
        list.rebuild(&sys.topology, &sys.pbox, &sys.positions);
        comm.ctx()
            .charge_compute(list.pairs.len() as f64 * 2.5 * cost.list_build_pair / p as f64);
    }
    comm.barrier();
    let classic = classic_energy_parallel_with(comm, sys, &list.pairs, opts, cost, tuning.force_combine);
    let classic_energy = classic.energy();
    let mut forces = classic.forces;
    let mut pme_energy = 0.0;
    if let Some(ppme) = ppme {
        let kr = match ppme {
            PmeEngine::Replicated(e) => e.energy_forces(comm, sys, cost),
            PmeEngine::Spatial(e) => e.energy_forces(comm, sys, cost),
        };
        for (f, kf) in forces.iter_mut().zip(&kr.forces) {
            *f += *kf;
        }
        pme_energy = kr.energy();
        comm.barrier();
    }
    (forces, classic_energy, pme_energy)
}

/// Runs the parallel MD measurement under a fault plan, recovering
/// from rank crashes by shrinking the communicator and restarting from
/// the last checkpoint.
///
/// Each step: poll for this rank's own scheduled crash, exchange
/// heartbeats, recover if anyone died, then run one velocity-Verlet
/// step. Recovery (membership shrink, checkpoint restore, engine
/// rebuild, re-synchronization) is booked under [`Phase::Recovery`].
///
/// With an all-zero plan the trajectory is bit-identical to
/// [`crate::driver::run_parallel_md`]'s (the heartbeats add control
/// traffic, so *timing* differs; physics does not).
pub fn run_parallel_md_faulty(
    system: &System,
    cfg: &MdConfig,
    fault: &FaultConfig,
) -> Result<FtReport, SimError> {
    let opts = match cfg.model {
        EnergyModel::Classic => NonbondedOptions::classic(),
        EnergyModel::Pme(p) => NonbondedOptions::pme_direct(p.beta),
    };
    let model = cfg.model;
    let steps = cfg.steps;
    let dt = cfg.dt;
    let middleware = cfg.middleware;
    let tuning = cfg.tuning;
    let pme_impl = cfg.pme_impl;
    let ckpt_every = fault.checkpoint_interval.max(1);

    let outcomes = run_cluster_faulty(cfg.cluster, fault.plan.clone(), |ctx| {
        let cost = ctx.config().cost;
        let mut comm = Comm::new(ctx, middleware);
        let mut sys = system.clone();
        let mut ppme = make_pme(model, pme_impl, tuning, comm.size());

        comm.ctx().set_phase(Phase::Classic);
        let mut list =
            NeighborList::build(&sys.topology, &sys.pbox, &sys.positions, opts.cutoff, SKIN);
        comm.ctx().charge_compute(
            list.pairs.len() as f64 * 2.5 * cost.list_build_pair / comm.size() as f64,
        );

        let mut energies_log: Vec<StepEnergies> = Vec::with_capacity(steps);
        let (mut forces, _, _) =
            eval_forces(&mut comm, &sys, &mut list, &opts, &cost, tuning, ppme.as_ref());

        // Step-0 checkpoint, so even an immediate crash is recoverable.
        let mut ckpt = Checkpoint {
            step: 0,
            positions: sys.positions.clone(),
            velocities: sys.velocities.clone(),
            forces: forces.clone(),
        };
        comm.ctx().set_phase(Phase::Other);
        comm.ctx().charge_compute(CKPT_BYTE_COST * ckpt.bytes());

        let mut step = 0usize;
        let mut recoveries = 0usize;
        loop {
            // Failure detection epoch: my own scheduled crash first (a
            // rank either heartbeats or is seen dead by *everyone*),
            // then the liveness exchange.
            comm.ctx().set_phase(Phase::Other);
            comm.ctx().poll_crash();
            let dead = comm.heartbeat();
            if !dead.is_empty() {
                // Recovery: agree on membership, roll back, rebuild.
                comm.ctx().set_phase(Phase::Recovery);
                comm.shrink(&dead);
                sys.positions.clone_from(&ckpt.positions);
                sys.velocities.clone_from(&ckpt.velocities);
                forces.clone_from(&ckpt.forces);
                step = ckpt.step;
                energies_log.truncate(step);
                comm.ctx().charge_compute(CKPT_BYTE_COST * ckpt.bytes());
                // The decomposition width changed: slab-partitioned PME
                // state must be rebuilt for the surviving ranks.
                ppme = make_pme(model, pme_impl, tuning, comm.size());
                if list.needs_rebuild(&sys.pbox, &sys.positions) {
                    list.rebuild(&sys.topology, &sys.pbox, &sys.positions);
                    comm.ctx().charge_compute(
                        list.pairs.len() as f64 * 2.5 * cost.list_build_pair
                            / comm.size() as f64,
                    );
                }
                recoveries += 1;
                // Re-synchronize the survivors before resuming; a
                // straggling crash notice must not be mistaken for
                // progress, so tolerate (and record) errors here.
                let _ = comm.try_barrier();
                continue;
            }
            if step >= steps {
                break;
            }

            // One velocity-Verlet step over the current members.
            let p = comm.size();
            comm.ctx().set_phase(Phase::Integrate);
            let n = sys.n_atoms();
            let my_atoms = crate::decomp::block_range(n, p, comm.rank());
            for i in my_atoms.clone() {
                let inv_m = ACCEL_CONV / sys.topology.atoms[i].class.mass();
                let v_half = sys.velocities[i] + forces[i] * (0.5 * dt * inv_m);
                sys.velocities[i] = v_half;
                sys.positions[i] += v_half * dt;
            }
            comm.ctx()
                .charge_compute(my_atoms.len() as f64 * cost.integrate_atom);

            let mine: Vec<f64> = sys.positions[my_atoms.clone()]
                .iter()
                .flat_map(|v| [v.x, v.y, v.z])
                .collect();
            let parts = comm.allgather(mine);
            for (src, part) in parts.iter().enumerate() {
                let range = crate::decomp::block_range(n, p, src);
                for (k, i) in range.enumerate() {
                    sys.positions[i] = Vec3::new(part[3 * k], part[3 * k + 1], part[3 * k + 2]);
                }
            }

            let (new_forces, e_classic, e_pme) =
                eval_forces(&mut comm, &sys, &mut list, &opts, &cost, tuning, ppme.as_ref());
            forces = new_forces;

            comm.ctx().set_phase(Phase::Integrate);
            for i in my_atoms.clone() {
                let inv_m = ACCEL_CONV / sys.topology.atoms[i].class.mass();
                sys.velocities[i] += forces[i] * (0.5 * dt * inv_m);
            }
            comm.ctx()
                .charge_compute(my_atoms.len() as f64 * cost.integrate_atom);
            let mine: Vec<f64> = sys.velocities[my_atoms.clone()]
                .iter()
                .flat_map(|v| [v.x, v.y, v.z])
                .collect();
            let parts = comm.allgather(mine);
            for (src, part) in parts.iter().enumerate() {
                let range = crate::decomp::block_range(n, p, src);
                for (k, i) in range.enumerate() {
                    sys.velocities[i] = Vec3::new(part[3 * k], part[3 * k + 1], part[3 * k + 2]);
                }
            }

            energies_log.push(StepEnergies {
                classic: e_classic,
                pme: e_pme,
                kinetic: sys.kinetic_energy(),
            });
            step += 1;

            if step % ckpt_every == 0 {
                ckpt = Checkpoint {
                    step,
                    positions: sys.positions.clone(),
                    velocities: sys.velocities.clone(),
                    forces: forces.clone(),
                };
                comm.ctx().set_phase(Phase::Other);
                comm.ctx().charge_compute(CKPT_BYTE_COST * ckpt.bytes());
            }
        }
        (energies_log, sys.positions, sys.velocities, recoveries)
    })?;

    let crashed_ranks: Vec<usize> = outcomes
        .iter()
        .filter(|o| o.crashed)
        .map(|o| o.rank)
        .collect();
    let survivors = outcomes.len() - crashed_ranks.len();
    let wall_time = outcomes
        .iter()
        .filter(|o| !o.crashed)
        .map(|o| o.finish_time)
        .fold(0.0, f64::max);
    let recovery_time = outcomes
        .iter()
        .map(|o| o.stats.bucket(Phase::Recovery).total())
        .fold(0.0, f64::max);

    let mut step_energies = Vec::new();
    let mut final_positions = Vec::new();
    let mut final_velocities = Vec::new();
    let mut recoveries = 0usize;
    for o in &outcomes {
        if let Some((e, p, v, r)) = &o.result {
            recoveries = recoveries.max(*r);
            if step_energies.is_empty() {
                step_energies = e.clone();
                final_positions = p.clone();
                final_velocities = v.clone();
            }
        }
    }
    let completed = survivors > 0 && step_energies.len() == steps;
    let per_rank = outcomes.into_iter().map(|o| o.stats).collect();

    Ok(FtReport {
        report: RunReport {
            cluster: cfg.cluster,
            middleware: cfg.middleware,
            steps: cfg.steps,
            per_rank,
            wall_time,
            step_energies,
            final_positions,
            final_velocities,
        },
        crashed_ranks,
        survivors,
        recoveries,
        recovery_time,
        completed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::run_parallel_md;
    use cpc_cluster::{ClusterConfig, NetworkKind};
    use cpc_mpi::Middleware;

    fn test_system() -> System {
        let mut sys = cpc_md::builder::water_box(2, 3.1);
        cpc_md::minimize::minimize(&mut sys, EnergyModel::Classic, 40);
        sys.assign_velocities(150.0, 3);
        sys
    }

    fn test_cfg(p: usize, steps: usize) -> MdConfig {
        MdConfig {
            steps,
            ..MdConfig::paper_protocol(
                EnergyModel::Classic,
                Middleware::Mpi,
                ClusterConfig::uni(p, NetworkKind::ScoreGigE),
            )
        }
    }

    #[test]
    fn zero_plan_matches_plain_driver_physics() {
        let sys = test_system();
        let cfg = test_cfg(3, 3);
        let plain = run_parallel_md(&sys, &cfg);
        let ft = run_parallel_md_faulty(&sys, &cfg, &FaultConfig::default()).unwrap();
        assert!(ft.completed);
        assert!(ft.crashed_ranks.is_empty());
        assert_eq!(ft.recoveries, 0);
        assert_eq!(ft.recovery_time, 0.0);
        // Heartbeats change timing, never physics: bit-identical state.
        assert_eq!(ft.report.final_positions, plain.final_positions);
        assert_eq!(ft.report.final_velocities, plain.final_velocities);
    }

    #[test]
    fn crash_recovers_from_checkpoint_and_completes() {
        let sys = test_system();
        let cfg = test_cfg(3, 4);
        // Crash rank 2 mid-run (about half the fault-free wall time).
        let wall = run_parallel_md(&sys, &cfg).wall_time;
        let fault = FaultConfig::new(FaultPlan::none().with_crash(2, 0.5 * wall));
        let ft = run_parallel_md_faulty(&sys, &cfg, &fault).unwrap();
        assert_eq!(ft.crashed_ranks, vec![2]);
        assert_eq!(ft.survivors, 2);
        assert!(ft.completed, "survivors finish all steps");
        assert!(ft.recoveries >= 1);
        assert!(ft.recovery_time > 0.0, "recovery is booked time");
        assert_eq!(ft.report.step_energies.len(), 4);
        // Replicated-data restart preserves the trajectory: the
        // re-run steps recompute the same physics.
        let plain = run_parallel_md(&sys, &cfg);
        let max_dev = ft
            .report
            .final_positions
            .iter()
            .zip(&plain.final_positions)
            .map(|(a, b)| (*a - *b).norm())
            .fold(0.0f64, f64::max);
        assert!(max_dev < 1e-7, "max deviation {max_dev}");
    }

    #[test]
    fn immediate_crash_restarts_from_step_zero() {
        let sys = test_system();
        let cfg = test_cfg(4, 2);
        let fault = FaultConfig::new(FaultPlan::none().with_crash(1, 0.0));
        let ft = run_parallel_md_faulty(&sys, &cfg, &fault).unwrap();
        assert_eq!(ft.crashed_ranks, vec![1]);
        assert_eq!(ft.survivors, 3);
        assert!(ft.completed);
        assert_eq!(ft.report.step_energies.len(), 2);
    }

    #[test]
    fn faulty_runs_replay_bit_identically() {
        let sys = test_system();
        let cfg = test_cfg(3, 3);
        let wall = run_parallel_md(&sys, &cfg).wall_time;
        let fault = FaultConfig::new(
            FaultPlan::none()
                .with_loss(0.05)
                .with_straggler(0, 1.5)
                .with_crash(2, 0.5 * wall),
        );
        let run = || run_parallel_md_faulty(&sys, &cfg, &fault).unwrap();
        let (a, b) = (run(), run());
        assert_eq!(a.report.wall_time, b.report.wall_time);
        assert_eq!(a.report.final_positions, b.report.final_positions);
        assert_eq!(a.recovery_time, b.recovery_time);
        assert_eq!(a.crashed_ranks, b.crashed_ranks);
    }
}
