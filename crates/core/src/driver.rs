//! The parallel molecular dynamics driver: runs CHARMM-style
//! replicated-data MD on the virtual cluster and collects the
//! phase-resolved timings the paper reports.

use crate::classic::classic_energy_parallel_with;
use crate::pme_par::ParallelPme;
use crate::pme_spatial::SpatialPme;
use crate::report::{RunReport, StepEnergies};
use cpc_cluster::{run_cluster, ClusterConfig, Phase};
use cpc_md::energy::EnergyModel;
use cpc_md::neighbor::NeighborList;
use cpc_md::nonbonded::NonbondedOptions;
use cpc_md::units::ACCEL_CONV;
use cpc_md::{System, Vec3};
use cpc_mpi::{CombineAlgo, Comm, Middleware};

/// Tunable collective-algorithm choices (the design decisions the
/// ablation benches compare). Defaults model the paper-era CHARMM:
/// a master-based force combine and a ring-summed charge grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommTuning {
    /// Algorithm for the force/energy combine closing each phase.
    pub force_combine: CombineAlgo,
    /// Algorithm for the PME charge-grid global sum.
    pub grid_sum: CombineAlgo,
}

impl Default for CommTuning {
    fn default() -> Self {
        CommTuning {
            force_combine: CombineAlgo::Flat,
            grid_sum: CombineAlgo::Ring,
        }
    }
}

/// Which parallel PME implementation the driver runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PmeImpl {
    /// CHARMM-style replicated-data PME (the paper's subject).
    #[default]
    Replicated,
    /// Spatially decomposed PME (the ablation: halo exchanges instead
    /// of full-mesh traffic).
    Spatial,
}

/// Configuration of one parallel MD measurement run.
#[derive(Debug, Clone, Copy)]
pub struct MdConfig {
    /// Energy model (classic or PME) — the paper's algorithmic factor.
    pub model: EnergyModel,
    /// Middleware factor.
    pub middleware: Middleware,
    /// Platform factors (ranks, network, CPUs per node).
    pub cluster: ClusterConfig,
    /// Number of MD steps (the paper measures 10).
    pub steps: usize,
    /// Timestep in ps.
    pub dt: f64,
    /// Collective-algorithm tuning (ablation hook).
    pub tuning: CommTuning,
    /// Parallel PME implementation.
    pub pme_impl: PmeImpl,
}

impl MdConfig {
    /// The paper's measurement protocol: 10 MD steps at 1 fs.
    pub fn paper_protocol(
        model: EnergyModel,
        middleware: Middleware,
        cluster: ClusterConfig,
    ) -> Self {
        MdConfig {
            model,
            middleware,
            cluster,
            steps: 10,
            dt: 0.001,
            tuning: CommTuning::default(),
            pme_impl: PmeImpl::default(),
        }
    }
}

/// Neighbour-list skin used by the parallel engine (matches the
/// sequential [`cpc_md::Evaluator`]).
const SKIN: f64 = 2.0;

/// Runs the parallel MD measurement and returns the aggregated report.
///
/// Every rank simulates the full replicated system; work is partitioned
/// exactly as in replicated-data CHARMM. The trajectory is identical
/// (up to floating-point reassociation) to the sequential engine.
pub fn run_parallel_md(system: &System, cfg: &MdConfig) -> RunReport {
    let opts = match cfg.model {
        EnergyModel::Classic => NonbondedOptions::classic(),
        EnergyModel::Pme(p) => NonbondedOptions::pme_direct(p.beta),
    };
    let p = cfg.cluster.ranks;
    let model = cfg.model;
    let steps = cfg.steps;
    let dt = cfg.dt;
    let middleware = cfg.middleware;
    let tuning = cfg.tuning;
    let pme_impl = cfg.pme_impl;

    let outcomes = run_cluster(cfg.cluster, |ctx| {
        let cost = ctx.config().cost;
        let mut comm = Comm::new(ctx, middleware);
        let mut sys = system.clone();
        enum PmeEngine {
            Replicated(ParallelPme),
            Spatial(SpatialPme),
        }
        let ppme = match model {
            EnergyModel::Pme(params) => Some(match pme_impl {
                PmeImpl::Replicated => PmeEngine::Replicated(
                    ParallelPme::new(params, p)
                        .with_grid_sum(tuning.grid_sum)
                        .with_force_combine(tuning.force_combine),
                ),
                PmeImpl::Spatial => PmeEngine::Spatial(
                    SpatialPme::new(params, p).with_force_combine(tuning.force_combine),
                ),
            }),
            EnergyModel::Classic => None,
        };

        // Initial neighbour list (cost shared: the list build is
        // distributed across ranks in parallel CHARMM).
        comm.ctx().set_phase(Phase::Classic);
        let mut list =
            NeighborList::build(&sys.topology, &sys.pbox, &sys.positions, opts.cutoff, SKIN);
        comm.ctx()
            .charge_compute(list.pairs.len() as f64 * 2.5 * cost.list_build_pair / p as f64);

        let mut energies_log = Vec::with_capacity(steps);

        // One full force evaluation before the loop (velocity Verlet
        // needs forces at t = 0).
        let eval =
            |comm: &mut Comm<'_>, sys: &System, list: &mut NeighborList| -> (Vec<Vec3>, f64, f64) {
                // List maintenance.
                comm.ctx().set_phase(Phase::Classic);
                if list.needs_rebuild(&sys.pbox, &sys.positions) {
                    list.rebuild(&sys.topology, &sys.pbox, &sys.positions);
                    comm.ctx().charge_compute(
                        list.pairs.len() as f64 * 2.5 * cost.list_build_pair / p as f64,
                    );
                }
                // Synchronization point entering the energy calculation.
                comm.barrier();
                let classic = classic_energy_parallel_with(
                    comm,
                    sys,
                    &list.pairs,
                    &opts,
                    &cost,
                    tuning.force_combine,
                );
                let classic_energy = classic.energy();
                let mut forces = classic.forces;
                let mut pme_energy = 0.0;
                if let Some(ppme) = &ppme {
                    let kr = match ppme {
                        PmeEngine::Replicated(e) => e.energy_forces(comm, sys, &cost),
                        PmeEngine::Spatial(e) => e.energy_forces(comm, sys, &cost),
                    };
                    for (f, kf) in forces.iter_mut().zip(&kr.forces) {
                        *f += *kf;
                    }
                    pme_energy = kr.energy();
                    comm.barrier();
                }
                (forces, classic_energy, pme_energy)
            };

        let (mut forces, _, _) = eval(&mut comm, &sys, &mut list);

        for _ in 0..steps {
            // Half kick + drift. As in parallel CHARMM, each rank
            // integrates its own atom block, then the updated
            // coordinates are exchanged globally.
            comm.ctx().set_phase(Phase::Integrate);
            let n = sys.n_atoms();
            let my_atoms = crate::decomp::block_range(n, p, comm.rank());
            for i in my_atoms.clone() {
                let inv_m = ACCEL_CONV / sys.topology.atoms[i].class.mass();
                let v_half = sys.velocities[i] + forces[i] * (0.5 * dt * inv_m);
                sys.velocities[i] = v_half;
                sys.positions[i] += v_half * dt;
            }
            comm.ctx()
                .charge_compute(my_atoms.len() as f64 * cost.integrate_atom);

            // Coordinate exchange: every rank needs all positions for
            // the replicated energy evaluation.
            let mine: Vec<f64> = sys.positions[my_atoms.clone()]
                .iter()
                .flat_map(|v| [v.x, v.y, v.z])
                .collect();
            let parts = comm.allgather(mine);
            for (src, part) in parts.iter().enumerate() {
                let range = crate::decomp::block_range(n, p, src);
                for (k, i) in range.enumerate() {
                    sys.positions[i] = Vec3::new(part[3 * k], part[3 * k + 1], part[3 * k + 2]);
                }
            }

            // New forces.
            let (new_forces, e_classic, e_pme) = eval(&mut comm, &sys, &mut list);
            forces = new_forces;

            // Second half kick (own block), then velocity exchange so
            // the kinetic energy below is globally consistent.
            comm.ctx().set_phase(Phase::Integrate);
            for i in my_atoms.clone() {
                let inv_m = ACCEL_CONV / sys.topology.atoms[i].class.mass();
                sys.velocities[i] += forces[i] * (0.5 * dt * inv_m);
            }
            comm.ctx()
                .charge_compute(my_atoms.len() as f64 * cost.integrate_atom);
            let mine: Vec<f64> = sys.velocities[my_atoms.clone()]
                .iter()
                .flat_map(|v| [v.x, v.y, v.z])
                .collect();
            let parts = comm.allgather(mine);
            for (src, part) in parts.iter().enumerate() {
                let range = crate::decomp::block_range(n, p, src);
                for (k, i) in range.enumerate() {
                    sys.velocities[i] = Vec3::new(part[3 * k], part[3 * k + 1], part[3 * k + 2]);
                }
            }

            energies_log.push(StepEnergies {
                classic: e_classic,
                pme: e_pme,
                kinetic: sys.kinetic_energy(),
            });
        }
        (energies_log, sys.positions, sys.velocities)
    });

    RunReport::from_outcomes(cfg, outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpc_cluster::NetworkKind;
    use cpc_fft::Dims3;
    use cpc_md::builder::water_box;
    use cpc_md::dynamics::Simulation;
    use cpc_md::pme::PmeParams;

    fn test_system() -> System {
        let mut sys = water_box(2, 3.1);
        cpc_md::minimize::minimize(&mut sys, EnergyModel::Classic, 40);
        sys.assign_velocities(150.0, 3);
        sys
    }

    #[test]
    fn parallel_trajectory_matches_sequential_classic() {
        let sys = test_system();
        let mut seq = Simulation::new(sys.clone(), EnergyModel::Classic, 0.001);
        seq.run(5);

        for p in [1usize, 2, 4] {
            let cfg = MdConfig {
                steps: 5,
                ..MdConfig::paper_protocol(
                    EnergyModel::Classic,
                    Middleware::Mpi,
                    ClusterConfig::uni(p, NetworkKind::ScoreGigE),
                )
            };
            let report = run_parallel_md(&sys, &cfg);
            let max_dev = report
                .final_positions
                .iter()
                .zip(&seq.system.positions)
                .map(|(a, b)| (*a - *b).norm())
                .fold(0.0f64, f64::max);
            assert!(max_dev < 1e-7, "p={p}: max deviation {max_dev}");
        }
    }

    #[test]
    fn parallel_trajectory_matches_sequential_pme() {
        let sys = test_system();
        let params = PmeParams {
            grid: Dims3::new(24, 24, 24),
            order: 4,
            beta: 0.34,
        };
        let mut seq = Simulation::new(sys.clone(), EnergyModel::Pme(params), 0.001);
        seq.run(3);

        let cfg = MdConfig {
            steps: 3,
            ..MdConfig::paper_protocol(
                EnergyModel::Pme(params),
                Middleware::Mpi,
                ClusterConfig::uni(3, NetworkKind::MyrinetGm),
            )
        };
        let report = run_parallel_md(&sys, &cfg);
        let max_dev = report
            .final_positions
            .iter()
            .zip(&seq.system.positions)
            .map(|(a, b)| (*a - *b).norm())
            .fold(0.0f64, f64::max);
        assert!(max_dev < 1e-6, "max deviation {max_dev}");
    }

    #[test]
    fn report_has_phase_times() {
        let sys = test_system();
        let params = PmeParams {
            grid: Dims3::new(24, 24, 24),
            order: 4,
            beta: 0.34,
        };
        let cfg = MdConfig {
            steps: 2,
            ..MdConfig::paper_protocol(
                EnergyModel::Pme(params),
                Middleware::Mpi,
                ClusterConfig::uni(4, NetworkKind::TcpGigE),
            )
        };
        let report = run_parallel_md(&sys, &cfg);
        assert!(report.classic_time() > 0.0);
        assert!(report.pme_time() > 0.0);
        assert!(report.wall_time > 0.0);
        assert_eq!(report.step_energies.len(), 2);
        // With 4 ranks on TCP there is real communication.
        let pme = report.phase_breakdown(Phase::Pme);
        assert!(pme.comm > 0.0);
    }

    #[test]
    fn run_is_deterministic() {
        let sys = test_system();
        let cfg = MdConfig {
            steps: 2,
            ..MdConfig::paper_protocol(
                EnergyModel::Classic,
                Middleware::Cmpi,
                ClusterConfig::uni(4, NetworkKind::TcpGigE),
            )
        };
        let a = run_parallel_md(&sys, &cfg);
        let b = run_parallel_md(&sys, &cfg);
        assert_eq!(a.wall_time, b.wall_time);
        assert_eq!(a.classic_time(), b.classic_time());
        assert_eq!(a.final_positions, b.final_positions);
    }

    #[test]
    fn spatial_pme_driver_matches_sequential_trajectory() {
        let sys = test_system();
        let params = PmeParams {
            grid: Dims3::new(24, 24, 24),
            order: 4,
            beta: 0.34,
        };
        let mut seq = Simulation::new(sys.clone(), EnergyModel::Pme(params), 0.001);
        seq.run(3);
        let cfg = MdConfig {
            steps: 3,
            pme_impl: PmeImpl::Spatial,
            ..MdConfig::paper_protocol(
                EnergyModel::Pme(params),
                Middleware::Mpi,
                ClusterConfig::uni(4, NetworkKind::TcpGigE),
            )
        };
        let report = run_parallel_md(&sys, &cfg);
        let max_dev = report
            .final_positions
            .iter()
            .zip(&seq.system.positions)
            .map(|(a, b)| (*a - *b).norm())
            .fold(0.0f64, f64::max);
        assert!(max_dev < 1e-6, "max deviation {max_dev}");
        // And it is faster on TCP than the replicated-data engine.
        let repl = run_parallel_md(
            &sys,
            &MdConfig {
                steps: 3,
                ..MdConfig::paper_protocol(
                    EnergyModel::Pme(params),
                    Middleware::Mpi,
                    ClusterConfig::uni(4, NetworkKind::TcpGigE),
                )
            },
        );
        assert!(
            report.pme_time() < repl.pme_time(),
            "spatial {} vs replicated {}",
            report.pme_time(),
            repl.pme_time()
        );
    }

    #[test]
    fn collective_tuning_changes_time_not_physics() {
        let sys = test_system();
        let params = PmeParams {
            grid: Dims3::new(24, 24, 24),
            order: 4,
            beta: 0.34,
        };
        let run = |tuning: CommTuning| {
            let cfg = MdConfig {
                steps: 2,
                tuning,
                ..MdConfig::paper_protocol(
                    EnergyModel::Pme(params),
                    Middleware::Mpi,
                    ClusterConfig::uni(4, NetworkKind::TcpGigE),
                )
            };
            run_parallel_md(&sys, &cfg)
        };
        use cpc_mpi::CombineAlgo;
        let flat = run(CommTuning::default());
        let tree = run(CommTuning {
            force_combine: CombineAlgo::Tree,
            grid_sum: CombineAlgo::Tree,
        });
        let ring = run(CommTuning {
            force_combine: CombineAlgo::Ring,
            grid_sum: CombineAlgo::Ring,
        });
        // Physics identical (up to summation order)...
        for other in [&tree, &ring] {
            let dev = flat
                .final_positions
                .iter()
                .zip(&other.final_positions)
                .map(|(a, b)| (*a - *b).norm())
                .fold(0.0f64, f64::max);
            assert!(dev < 1e-9, "deviation {dev}");
        }
        // ...but timing differs (the algorithms move different volumes).
        assert_ne!(flat.wall_time, tree.wall_time);
        assert_ne!(tree.wall_time, ring.wall_time);
    }

    #[test]
    fn dual_processor_runs() {
        let sys = test_system();
        let cfg = MdConfig {
            steps: 2,
            ..MdConfig::paper_protocol(
                EnergyModel::Classic,
                Middleware::Mpi,
                ClusterConfig::dual(4, NetworkKind::TcpGigE),
            )
        };
        let report = run_parallel_md(&sys, &cfg);
        assert!(report.wall_time > 0.0);
        assert_eq!(report.cluster.nodes(), 2);
    }
}
