//! Chaos harness: invariant oracles over fault-tolerant runs and a
//! delta-debugging minimizer for failing fault schedules.
//!
//! A [`ChaosHarness`] owns one workload (system + config) and its
//! fault-free **golden** run. [`ChaosHarness::check`] then executes an
//! arbitrary [`FaultPlan`] three ways — a full run, a truncated run,
//! and a resumed-from-disk continuation — and evaluates five oracles:
//!
//! 1. **Termination** — every run returns (`Err(SimError::Stalled)`
//!    from the engine's stall watchdog counts as a violation, not a
//!    hang).
//! 2. **Completion / golden match** — a survivable run finishes all
//!    steps and its final state matches the golden trajectory within a
//!    tolerance derived from the plan: bit-identical when nothing
//!    perturbed the physics, [`CRASH_RECOVERY_TOLERANCE`] when a
//!    communicator shrink reassociated the floating-point reductions,
//!    [`BENIGN_SDC_TOLERANCE`] when a benign bit flip fired.
//! 3. **Resume equivalence** — a run interrupted at the halfway point
//!    and resumed from its durable checkpoints ends within the same
//!    tolerance of the uninterrupted run.
//! 4. **Recovery accounting** — recovery time is positive exactly when
//!    recovery episodes happened, and stays within a budget scaled by
//!    the plan's own slowdown factors.
//! 5. **SDC detected-or-benign** — after a silent bit flip, either
//!    something detected it (the numerical watchdog or an ABFT
//!    checksum) or the final deviation is below the benign bound.
//! 6. **ABFT detection** — with the ABFT checksums armed (the harness
//!    default), *every* fired bit flip must raise at least one
//!    [`Corruption`](cpc_md::abft::Corruption) verdict — including the
//!    gray zone between benign and watchdog-detectable that
//!    [`FaultSpace`](cpc_cluster::FaultSpace) now samples. Zero
//!    detections after a fired flip is an ABFT escape.
//!
//! On violation, [`minimize`] shrinks the schedule with the classic
//! ddmin algorithm (drop event subsets, then halve scalar severities)
//! to a minimal plan that still fails, and [`Reproducer`] serializes
//! it — plus the violations it provokes — as a replayable JSON
//! artifact.
//!
//! Everything here is deterministic: the harness draws no randomness
//! and stamps no wall-clock time, so the same plan yields the same
//! verdict byte-for-byte on every machine.

use crate::ckpt::DurableConfig;
use crate::driver::MdConfig;
use crate::recover::{run_parallel_md_faulty, AbftConfig, FaultConfig, FtReport, RecoveryConfig};
use cpc_cluster::{
    ComposedPlan, FaultPlan, Layer, LinkDegradation, RankCrash, SdcFault, StorageFault, Straggler,
    LAYERS,
};
use cpc_md::System;
use cpc_vfs::DiskCounters;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;

/// Maximum final-state deviation (max over atoms of the position /
/// velocity error norm) attributable to one or more *benign* SDC bit
/// flips — low-mantissa corruptions the watchdog is not expected to
/// see. Relative errors of ~6e-11 per flip grow only polynomially over
/// the short chaotic workloads, so anything past this bound means a
/// non-benign corruption went undetected.
pub const BENIGN_SDC_TOLERANCE: f64 = 1e-7;

/// Maximum final-state deviation attributable to crash recovery: after
/// a communicator shrink the force reductions reassociate, so re-run
/// steps differ from the golden run by floating-point noise (observed
/// ~1e-7 on the reference workloads; the bound leaves two orders of
/// headroom without masking real corruption, which shows up orders of
/// magnitude larger).
pub const CRASH_RECOVERY_TOLERANCE: f64 = 1e-5;

/// Maximum final-state deviation attributable to degraded-mode
/// rebalancing: moving the pair-list cuts reassociates the per-rank
/// force partial sums exactly like a communicator shrink does, so the
/// bound matches [`CRASH_RECOVERY_TOLERANCE`] in magnitude.
pub const REBALANCE_TOLERANCE: f64 = 1e-5;

/// The straggler-mitigation oracle's bar: with a persistent straggler
/// active from step 0, the adaptive run's wall-time overhead must stay
/// below this fraction of the static (rebalancing-disabled) overhead.
pub const ADAPTIVE_OVERHEAD_RATIO: f64 = 0.6;

/// Minimum static overhead for the ratio check to apply. Comm-bound
/// workloads hide a slow CPU entirely behind the collective incasts
/// (static overhead of a 2x straggler on the tiny chaos water box is
/// ~0.3%), and no re-cut of the compute can reclaim what the network
/// is spending — demanding a ratio there would only measure noise.
const MITIGATION_MIN_STATIC_OVERHEAD: f64 = 0.05;

/// Fixed per-episode recovery allowance (virtual seconds) on top of
/// the golden-wall-scaled share: membership agreement is latency-bound
/// and does not vanish for tiny workloads.
const RECOVERY_EPISODE_FLOOR: f64 = 5e-3;

/// One invariant violation observed while checking a fault schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Violation {
    /// The plan failed validation against the cluster: nothing ran.
    InvalidPlan {
        /// The validation error.
        error: String,
    },
    /// A run errored out instead of finishing — including the engine's
    /// stall watchdog firing on a would-be infinite hang.
    NonTermination {
        /// Which run: `full`, `truncated`, or `resumed`.
        stage: String,
        /// The `SimError` rendered as text.
        error: String,
    },
    /// A run terminated but did not complete all steps (diverged,
    /// unrecoverable restore, or survivors lost the trajectory).
    Incomplete {
        /// Which run: `full`, `truncated`, or `resumed`.
        stage: String,
        /// Whether the driver classified the run as diverged.
        diverged: bool,
        /// The restore failure, when resume found only corrupt state.
        restore_failure: Option<String>,
    },
    /// A rank crashed that the plan never scheduled to crash.
    UnplannedCrash {
        /// Which run: `full`, `truncated`, or `resumed`.
        stage: String,
        /// The offending engine ranks.
        ranks: Vec<usize>,
    },
    /// The recovered final state deviates from the golden run by more
    /// than the plan's tolerance.
    StateDivergence {
        /// Max over atoms of the position/velocity error norm.
        max_deviation: f64,
        /// The tolerance the plan earned (see module docs).
        tolerance: f64,
    },
    /// An SDC flip fired, nothing detected it, and the final state
    /// deviates beyond the benign bound: the corruption was silent and
    /// harmful.
    SilentCorruption {
        /// Max over atoms of the position/velocity error norm.
        max_deviation: f64,
        /// The benign bound that was exceeded.
        tolerance: f64,
    },
    /// Recovery bookkeeping is inconsistent: episodes without booked
    /// recovery time, or recovery time without episodes.
    RecoveryAccounting {
        /// Recovery episodes (crash recoveries + watchdog rollbacks +
        /// graceful evictions).
        episodes: usize,
        /// Virtual seconds booked under the recovery phase.
        recovery_time: f64,
    },
    /// Recovery time exceeded the budget the plan earns from its own
    /// episode count and slowdown factors.
    RecoveryBudget {
        /// Virtual seconds booked under the recovery phase.
        recovery_time: f64,
        /// The budget that was exceeded.
        budget: f64,
        /// Recovery episodes the budget was scaled by.
        episodes: usize,
    },
    /// A straggler-only plan was mishandled by the degradation ladder:
    /// the run rolled back (stragglers must be absorbed by rebalancing
    /// or eviction, never by rollback), or adaptive rebalancing failed
    /// to reclaim enough of the static-decomposition overhead.
    StragglerMitigation {
        /// Rollback episodes (crash recoveries + watchdog trips) the
        /// straggler provoked; must be zero.
        rollbacks: usize,
        /// Wall-time overhead of the adaptive run vs the golden run.
        adaptive_overhead: f64,
        /// Wall-time overhead of the rebalancing-disabled reference.
        static_overhead: f64,
        /// The ratio bound the adaptive overhead had to beat.
        ratio_bound: f64,
    },
    /// ABFT was armed, one or more SDC flips fired, and not a single
    /// checksum verdict was raised: a corruption escaped the ABFT
    /// layer entirely (the regression this oracle exists to trap —
    /// with a correct ABFT implementation it never fires).
    UndetectedSdc {
        /// SDC flips that fired in the full run.
        fired: usize,
        /// ABFT detections in the full run (zero, by construction).
        detected: usize,
    },
    /// The resumed run's final state deviates from the uninterrupted
    /// run beyond the plan's tolerance: durable checkpoints do not
    /// reproduce the trajectory.
    ResumeDivergence {
        /// Max over atoms of the position/velocity error norm.
        max_deviation: f64,
        /// The tolerance the plan earned.
        tolerance: f64,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::InvalidPlan { error } => write!(f, "invalid plan: {error}"),
            Violation::NonTermination { stage, error } => {
                write!(f, "{stage} run did not terminate cleanly: {error}")
            }
            Violation::Incomplete {
                stage,
                diverged,
                restore_failure,
            } => {
                write!(f, "{stage} run incomplete (diverged: {diverged}")?;
                if let Some(r) = restore_failure {
                    write!(f, ", restore failure: {r}")?;
                }
                write!(f, ")")
            }
            Violation::UnplannedCrash { stage, ranks } => {
                write!(f, "{stage} run: unplanned crash of ranks {ranks:?}")
            }
            Violation::StateDivergence {
                max_deviation,
                tolerance,
            } => write!(
                f,
                "final state deviates from golden by {max_deviation:e} (tolerance {tolerance:e})"
            ),
            Violation::SilentCorruption {
                max_deviation,
                tolerance,
            } => write!(
                f,
                "undetected SDC: deviation {max_deviation:e} exceeds benign bound {tolerance:e}"
            ),
            Violation::RecoveryAccounting {
                episodes,
                recovery_time,
            } => write!(
                f,
                "recovery accounting inconsistent: {episodes} episodes, {recovery_time:e} s booked"
            ),
            Violation::RecoveryBudget {
                recovery_time,
                budget,
                episodes,
            } => write!(
                f,
                "recovery time {recovery_time:e} s exceeds budget {budget:e} s ({episodes} episodes)"
            ),
            Violation::StragglerMitigation {
                rollbacks,
                adaptive_overhead,
                static_overhead,
                ratio_bound,
            } => {
                if *rollbacks > 0 {
                    write!(f, "straggler provoked {rollbacks} rollback episode(s)")
                } else {
                    write!(
                        f,
                        "adaptive overhead {adaptive_overhead:.4} not below {ratio_bound} x static overhead {static_overhead:.4}"
                    )
                }
            }
            Violation::UndetectedSdc { fired, detected } => write!(
                f,
                "ABFT escape: {fired} SDC flip(s) fired, {detected} detected"
            ),
            Violation::ResumeDivergence {
                max_deviation,
                tolerance,
            } => write!(
                f,
                "resumed run deviates from uninterrupted by {max_deviation:e} (tolerance {tolerance:e})"
            ),
        }
    }
}

/// The verdict [`ChaosHarness::check`] returns for one schedule.
/// Fully deterministic for a given workload and plan, and JSON-stable
/// (non-finite floats are clamped), so campaign journals are
/// byte-identical across reruns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleReport {
    /// Every oracle violation observed (empty means the schedule
    /// passed).
    pub violations: Vec<Violation>,
    /// Fault events in the plan (see [`flatten`]).
    pub events: usize,
    /// Ranks that crashed in the full run.
    pub crashed: usize,
    /// Crash-recovery episodes in the full run.
    pub recoveries: usize,
    /// Numerical-watchdog rollbacks in the full run.
    pub watchdog_trips: usize,
    /// Straggler-driven re-cuts of the work partition in the full run.
    pub rebalances: usize,
    /// Detector-driven graceful evictions in the full run.
    pub evictions: usize,
    /// SDC events that fired in the full run.
    pub sdc_events: usize,
    /// ABFT corruption verdicts raised in the full run (0 when the
    /// harness runs with ABFT disarmed).
    pub abft_detections: usize,
    /// ABFT targeted repairs/recomputes in the full run.
    pub abft_recomputes: usize,
    /// Final-state deviation of the full run from the golden run.
    pub max_deviation: f64,
    /// Final-state deviation of the resumed run from the full run.
    pub resume_deviation: f64,
    /// Virtual wall time of the full run, seconds.
    pub wall_time: f64,
}

impl ScheduleReport {
    /// True when every oracle held.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// One atomic fault event of a flattened plan — the unit the
/// delta-debugging minimizer adds and removes.
#[derive(Debug, Clone, PartialEq)]
pub enum ChaosEvent {
    /// Baseline message loss.
    Loss {
        /// The loss probability.
        loss: f64,
    },
    /// A link-degradation window.
    Degradation {
        /// The window.
        degradation: LinkDegradation,
    },
    /// A straggler node.
    Straggler {
        /// The straggler.
        straggler: Straggler,
    },
    /// A rank crash.
    Crash {
        /// The crash.
        crash: RankCrash,
    },
    /// A storage fault against a durable checkpoint write.
    Storage {
        /// The fault.
        storage: StorageFault,
    },
    /// A silent-data-corruption bit flip.
    Sdc {
        /// The flip.
        sdc: SdcFault,
    },
}

/// Flattens a plan into its atomic fault events (the plan-wide
/// `watchdog_timeout` / `max_retransmits` knobs are carried separately
/// by [`rebuild`]).
pub fn flatten(plan: &FaultPlan) -> Vec<ChaosEvent> {
    let mut events = Vec::new();
    if plan.loss > 0.0 {
        events.push(ChaosEvent::Loss { loss: plan.loss });
    }
    for d in &plan.degradations {
        events.push(ChaosEvent::Degradation { degradation: *d });
    }
    for s in &plan.stragglers {
        events.push(ChaosEvent::Straggler { straggler: *s });
    }
    for c in &plan.crashes {
        events.push(ChaosEvent::Crash { crash: *c });
    }
    for s in &plan.storage {
        events.push(ChaosEvent::Storage { storage: *s });
    }
    for s in &plan.sdc {
        events.push(ChaosEvent::Sdc { sdc: *s });
    }
    events
}

/// Rebuilds a plan from a subset of events, inheriting the plan-wide
/// knobs from `template`.
pub fn rebuild(events: &[ChaosEvent], template: &FaultPlan) -> FaultPlan {
    let mut plan = FaultPlan::none();
    plan.watchdog_timeout = template.watchdog_timeout;
    plan.max_retransmits = template.max_retransmits;
    for e in events {
        match e {
            ChaosEvent::Loss { loss } => plan.loss = *loss,
            ChaosEvent::Degradation { degradation } => plan.degradations.push(*degradation),
            ChaosEvent::Straggler { straggler } => plan.stragglers.push(*straggler),
            ChaosEvent::Crash { crash } => plan.crashes.push(*crash),
            ChaosEvent::Storage { storage } => plan.storage.push(*storage),
            ChaosEvent::Sdc { sdc } => plan.sdc.push(*sdc),
        }
    }
    plan
}

/// A softened copy of an event (severity halved toward harmless), or
/// `None` when the event has no meaningful scalar severity left.
fn soften(event: &ChaosEvent) -> Option<ChaosEvent> {
    match event {
        ChaosEvent::Loss { loss } if *loss > 2e-3 => Some(ChaosEvent::Loss { loss: loss / 2.0 }),
        ChaosEvent::Degradation { degradation } => {
            let softer = LinkDegradation {
                extra_loss: degradation.extra_loss / 2.0,
                wire_factor: 1.0 + (degradation.wire_factor - 1.0) / 2.0,
                ..*degradation
            };
            (degradation.extra_loss > 2e-3 || degradation.wire_factor - 1.0 > 1e-2).then_some(
                ChaosEvent::Degradation {
                    degradation: softer,
                },
            )
        }
        ChaosEvent::Straggler { straggler } if straggler.slowdown - 1.0 > 1e-2 => {
            Some(ChaosEvent::Straggler {
                straggler: Straggler {
                    slowdown: 1.0 + (straggler.slowdown - 1.0) / 2.0,
                    ..*straggler
                },
            })
        }
        _ => None,
    }
}

/// Delta-debugging minimization: given a plan whose schedule makes
/// `fails` return true, returns a (locally) minimal plan that still
/// fails, plus the number of `fails` probes spent.
///
/// Phase one is the classic ddmin loop over the flattened event list:
/// remove complements of progressively finer chunks, keeping any
/// reduced schedule that still fails, until single-event removal no
/// longer helps. Phase two repeatedly halves scalar severities (loss
/// probability, degradation factors, straggler slowdown) while the
/// failure persists. Both phases are deterministic.
pub fn minimize<F>(plan: &FaultPlan, mut fails: F) -> (FaultPlan, usize)
where
    F: FnMut(&FaultPlan) -> bool,
{
    let mut events = flatten(plan);
    let mut probes = 0usize;

    // Phase 1: ddmin complement removal.
    let mut n = 2usize;
    while events.len() >= 2 {
        let chunk = events.len().div_ceil(n);
        let mut reduced = false;
        for i in 0..n {
            let (lo, hi) = (i * chunk, ((i + 1) * chunk).min(events.len()));
            if lo >= hi {
                continue;
            }
            let complement: Vec<ChaosEvent> =
                events[..lo].iter().chain(&events[hi..]).cloned().collect();
            if complement.is_empty() {
                continue;
            }
            probes += 1;
            if fails(&rebuild(&complement, plan)) {
                events = complement;
                reduced = true;
                break;
            }
        }
        if reduced {
            n = n.saturating_sub(1).max(2);
        } else {
            if n >= events.len() {
                break;
            }
            n = (n * 2).min(events.len());
        }
    }
    // A single surviving event might still be removable entirely (the
    // failure could be plan-independent); ddmin never probes the empty
    // schedule, and neither do we — an empty plan failing means the
    // workload itself is broken, which check() reports on its own.

    // Phase 2: halve scalar severities to a fixpoint (capped).
    for _ in 0..6 {
        let mut changed = false;
        for i in 0..events.len() {
            if let Some(softer) = soften(&events[i]) {
                let mut candidate = events.clone();
                candidate[i] = softer;
                probes += 1;
                if fails(&rebuild(&candidate, plan)) {
                    events = candidate;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    (rebuild(&events, plan), probes)
}

/// A minimized failing schedule, serialized as a replayable artifact:
/// feed [`Reproducer::plan`] back to [`ChaosHarness::check`] (same
/// workload shape) and the same violations fire.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Reproducer {
    /// Campaign seed the failing schedule was sampled with (0 for
    /// hand-planted schedules).
    pub seed: u64,
    /// Campaign index of the failing schedule.
    pub index: u64,
    /// Cluster ranks of the workload.
    pub ranks: usize,
    /// Cluster nodes of the workload.
    pub nodes: usize,
    /// MD steps of the workload.
    pub steps: usize,
    /// Whether the ABFT checksums were armed in the harness that
    /// produced this reproducer — replay must match, because an armed
    /// engine repairs the very corruptions a disarmed-engine
    /// reproducer exists to provoke.
    pub abft: bool,
    /// Fault events remaining after minimization.
    pub events: usize,
    /// Oracle probes the minimizer spent.
    pub probes: usize,
    /// The violations the minimized plan provokes.
    pub violations: Vec<Violation>,
    /// The minimized plan itself.
    pub plan: FaultPlan,
}

impl Reproducer {
    /// Serializes the reproducer as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("reproducer serializes")
    }

    /// Parses a reproducer back from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

/// Clamps non-finite floats so every journaled verdict survives a JSON
/// round trip (the JSON layer has no NaN/inf).
fn finite(x: f64) -> f64 {
    if x.is_finite() {
        x
    } else {
        f64::MAX
    }
}

/// Max over atoms of the error norm between two state arrays; `MAX`
/// when the lengths differ (a lost trajectory is maximal deviation).
fn state_deviation(a: &FtReport, b: &FtReport) -> f64 {
    if a.report.final_positions.len() != b.report.final_positions.len() {
        return f64::MAX;
    }
    let pos = a
        .report
        .final_positions
        .iter()
        .zip(&b.report.final_positions)
        .map(|(x, y)| (*x - *y).norm())
        .fold(0.0f64, f64::max);
    let vel = a
        .report
        .final_velocities
        .iter()
        .zip(&b.report.final_velocities)
        .map(|(x, y)| (*x - *y).norm())
        .fold(0.0f64, f64::max);
    finite(pos.max(vel))
}

/// One workload plus its golden run: the fixture every oracle is
/// evaluated against.
pub struct ChaosHarness {
    system: System,
    cfg: MdConfig,
    scratch: PathBuf,
    recovery: RecoveryConfig,
    abft: AbftConfig,
    golden: FtReport,
}

impl ChaosHarness {
    /// Builds the harness by executing the fault-free golden run of
    /// `(system, cfg)`. `scratch` is a directory for the durable
    /// checkpoints of chaotic runs; it is created (and its per-run
    /// subdirectories wiped) as needed. The ABFT checksums are armed:
    /// the harness checks the engine as it ships, and the
    /// [`Violation::UndetectedSdc`] oracle needs them live.
    pub fn new(
        system: System,
        cfg: MdConfig,
        scratch: impl Into<PathBuf>,
    ) -> Result<Self, cpc_cluster::SimError> {
        Self::with_recovery(system, cfg, scratch, RecoveryConfig::default())
    }

    /// [`ChaosHarness::new`] with an explicit adaptive-recovery
    /// configuration. The same configuration drives the golden run and
    /// every chaotic run, so heartbeat cadence and detector traffic
    /// never show up as a timing difference between them.
    pub fn with_recovery(
        system: System,
        cfg: MdConfig,
        scratch: impl Into<PathBuf>,
        recovery: RecoveryConfig,
    ) -> Result<Self, cpc_cluster::SimError> {
        Self::with_options(system, cfg, scratch, recovery, AbftConfig::armed())
    }

    /// [`ChaosHarness::with_recovery`] with an explicit ABFT
    /// configuration. Pass [`AbftConfig::default`] (disarmed) to test
    /// the pre-ABFT engine — the configuration that keeps the
    /// gray-zone planted bugs silent so the `SilentCorruption` oracle
    /// and the minimizer can be validated against them.
    pub fn with_options(
        system: System,
        cfg: MdConfig,
        scratch: impl Into<PathBuf>,
        recovery: RecoveryConfig,
        abft: AbftConfig,
    ) -> Result<Self, cpc_cluster::SimError> {
        let fault = FaultConfig::default()
            .with_recovery(recovery)
            .with_abft(abft);
        let golden = run_parallel_md_faulty(&system, &cfg, &fault)?;
        Ok(ChaosHarness {
            system,
            cfg,
            scratch: scratch.into(),
            recovery,
            abft,
            golden,
        })
    }

    /// The golden (fault-free) run.
    pub fn golden(&self) -> &FtReport {
        &self.golden
    }

    /// Virtual wall time of the golden run, seconds — the horizon a
    /// [`FaultSpace`](cpc_cluster::FaultSpace) should be built with.
    pub fn golden_wall(&self) -> f64 {
        self.golden.report.wall_time
    }

    /// The workload configuration under test.
    pub fn cfg(&self) -> &MdConfig {
        &self.cfg
    }

    fn run_dir(&self, tag: &str) -> PathBuf {
        let dir = self.scratch.join(tag);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// The final-state tolerance a plan earns against the golden run:
    /// zero unless something reassociated the arithmetic (crash
    /// recovery, a rebalancing re-cut, a graceful eviction) or an SDC
    /// flip perturbed the state.
    fn tolerance_vs_golden(&self, ft: &FtReport) -> f64 {
        let mut tol = 0.0;
        if !ft.crashed_ranks.is_empty() {
            tol += CRASH_RECOVERY_TOLERANCE;
        }
        if ft.evictions > 0 {
            tol += CRASH_RECOVERY_TOLERANCE;
        }
        if ft.rebalances > 0 {
            tol += REBALANCE_TOLERANCE;
        }
        if ft.sdc_events > 0 {
            tol += BENIGN_SDC_TOLERANCE;
        }
        tol
    }

    /// True when `plan` perturbs only CPU speed: no message loss, link
    /// degradations, crashes, storage faults, or bit flips. This is
    /// the regime the degradation ladder must absorb without ever
    /// rolling back.
    fn straggler_only(plan: &FaultPlan) -> bool {
        plan.loss == 0.0
            && plan.degradations.is_empty()
            && plan.crashes.is_empty()
            && plan.storage.is_empty()
            && plan.sdc.is_empty()
            && !plan.stragglers.is_empty()
    }

    /// Recovery-time budget for `episodes` episodes under `plan`: each
    /// episode may cost a share of the golden wall (rollback copies,
    /// membership agreement, engine rebuild) inflated by the plan's own
    /// slowdown factors, plus a latency floor.
    fn recovery_budget(&self, plan: &FaultPlan, episodes: usize) -> f64 {
        let straggle = plan
            .stragglers
            .iter()
            .map(|s| s.slowdown)
            .fold(1.0f64, f64::max);
        let wire = plan
            .degradations
            .iter()
            .map(|d| d.wire_factor)
            .fold(1.0f64, f64::max);
        episodes as f64 * straggle * wire * (0.5 * self.golden_wall() + RECOVERY_EPISODE_FLOOR)
    }

    /// Checks every plan-crashed rank actually scheduled to crash.
    fn unplanned_crash(stage: &str, plan: &FaultPlan, ft: &FtReport) -> Option<Violation> {
        let unplanned: Vec<usize> = ft
            .crashed_ranks
            .iter()
            .copied()
            .filter(|r| !plan.crashes.iter().any(|c| c.rank == *r))
            .collect();
        (!unplanned.is_empty()).then(|| Violation::UnplannedCrash {
            stage: stage.to_string(),
            ranks: unplanned,
        })
    }

    /// Evaluates every oracle against `plan`. Deterministic: the same
    /// plan always yields the same report.
    pub fn check(&self, plan: &FaultPlan) -> ScheduleReport {
        let events = flatten(plan).len();
        let mut report = ScheduleReport {
            violations: Vec::new(),
            events,
            crashed: 0,
            recoveries: 0,
            watchdog_trips: 0,
            rebalances: 0,
            evictions: 0,
            sdc_events: 0,
            abft_detections: 0,
            abft_recomputes: 0,
            max_deviation: 0.0,
            resume_deviation: 0.0,
            wall_time: 0.0,
        };

        if let Err(e) = plan.validate(self.cfg.cluster.ranks, self.cfg.cluster.nodes()) {
            report.violations.push(Violation::InvalidPlan { error: e });
            return report;
        }

        // --- Full run, durable checkpoints armed. ---
        let fault = FaultConfig::new(plan.clone())
            .with_recovery(self.recovery)
            .with_abft(self.abft)
            .with_durable(DurableConfig::new(self.run_dir("full")).with_keep(16));
        let full = match run_parallel_md_faulty(&self.system, &self.cfg, &fault) {
            Ok(ft) => ft,
            Err(e) => {
                report.violations.push(Violation::NonTermination {
                    stage: "full".into(),
                    error: e.to_string(),
                });
                return report;
            }
        };
        report.crashed = full.crashed_ranks.len();
        report.recoveries = full.recoveries;
        report.watchdog_trips = full.watchdog_trips;
        report.rebalances = full.rebalances;
        report.evictions = full.evictions;
        report.sdc_events = full.sdc_events;
        report.abft_detections = full.abft_detections;
        report.abft_recomputes = full.abft_recomputes;
        report.wall_time = finite(full.report.wall_time);

        if let Some(v) = Self::unplanned_crash("full", plan, &full) {
            report.violations.push(v);
        }
        if !full.completed {
            report.violations.push(Violation::Incomplete {
                stage: "full".into(),
                diverged: full.diverged,
                restore_failure: full.restore_failure.clone(),
            });
            return report;
        }

        // --- Golden-match / SDC oracle. ---
        let max_dev = state_deviation(&full, &self.golden);
        report.max_deviation = max_dev;
        let tol = self.tolerance_vs_golden(&full);
        if max_dev > tol {
            let silent = full.sdc_events > 0
                && full.watchdog_trips == 0
                && full.abft_detections == 0
                && full.crashed_ranks.is_empty();
            report.violations.push(if silent {
                Violation::SilentCorruption {
                    max_deviation: max_dev,
                    tolerance: tol,
                }
            } else {
                Violation::StateDivergence {
                    max_deviation: max_dev,
                    tolerance: tol,
                }
            });
        }

        // --- ABFT-detection oracle: armed checksums must raise at
        // least one verdict for any fired flip — benign, detectable, or
        // gray — because a bit flip always changes a bit-exact digest.
        // Zero verdicts after a fired flip is an ABFT escape, however
        // small the final deviation happens to be. ---
        if self.abft.enabled && full.sdc_events > 0 && full.abft_detections == 0 {
            report.violations.push(Violation::UndetectedSdc {
                fired: full.sdc_events,
                detected: full.abft_detections,
            });
        }

        // --- Recovery accounting and budget. Graceful evictions are
        // recovery episodes too: the shrink books agreement time even
        // though nothing rolled back. ---
        let episodes = full.recoveries + full.watchdog_trips + full.evictions;
        let consistent = (episodes > 0) == (full.recovery_time > 0.0);
        if !consistent {
            report.violations.push(Violation::RecoveryAccounting {
                episodes,
                recovery_time: finite(full.recovery_time),
            });
        }
        let budget = self.recovery_budget(plan, episodes);
        if full.recovery_time > budget {
            report.violations.push(Violation::RecoveryBudget {
                recovery_time: finite(full.recovery_time),
                budget: finite(budget),
                episodes,
            });
        }

        // --- Straggler-mitigation oracle: a plan that only slows CPUs
        // down must be absorbed by the degradation ladder's first two
        // rungs (rebalance, evict) — a rollback means the ladder
        // escalated past them. When a persistent straggler was active
        // from step 0 and the ladder chose rebalancing (no eviction),
        // the re-cut must also pay: rerun with rebalancing disabled
        // and demand the adaptive overhead beats the ratio bound —
        // unless the workload is comm-bound and the static run barely
        // noticed the slow node. ---
        if Self::straggler_only(plan) {
            let rollbacks = full.recoveries + full.watchdog_trips;
            let persistent = plan
                .stragglers
                .iter()
                .any(|s| s.slowdown >= 2.0 && s.start == 0.0 && s.end == f64::MAX);
            let mut adaptive_overhead = 0.0;
            let mut static_overhead = 0.0;
            let mut ratio_violated = false;
            if rollbacks == 0 && persistent && full.evictions == 0 {
                let static_fault = FaultConfig::new(plan.clone())
                    .with_recovery(RecoveryConfig {
                        rebalance: false,
                        ..self.recovery
                    })
                    .with_abft(self.abft)
                    .with_durable(DurableConfig::new(self.run_dir("static")).with_keep(16));
                if let Ok(st) = run_parallel_md_faulty(&self.system, &self.cfg, &static_fault) {
                    if st.completed {
                        let golden = self.golden_wall();
                        adaptive_overhead = full.report.wall_time / golden - 1.0;
                        static_overhead = st.report.wall_time / golden - 1.0;
                        ratio_violated = static_overhead > MITIGATION_MIN_STATIC_OVERHEAD
                            && adaptive_overhead >= ADAPTIVE_OVERHEAD_RATIO * static_overhead;
                    }
                }
            }
            if rollbacks > 0 || ratio_violated {
                report.violations.push(Violation::StragglerMitigation {
                    rollbacks,
                    adaptive_overhead: finite(adaptive_overhead),
                    static_overhead: finite(static_overhead),
                    ratio_bound: ADAPTIVE_OVERHEAD_RATIO,
                });
            }
        }

        // --- Resume equivalence: interrupt at the halfway point, then
        // resume from the durable checkpoints and compare to the
        // uninterrupted full run. ---
        if self.cfg.steps >= 2 {
            let dir = self.run_dir("resume");
            let truncated_cfg = MdConfig {
                steps: self.cfg.steps / 2,
                ..self.cfg
            };
            let truncated_fault = FaultConfig::new(plan.clone())
                .with_recovery(self.recovery)
                .with_abft(self.abft)
                .with_durable(DurableConfig::new(&dir).with_keep(16));
            match run_parallel_md_faulty(&self.system, &truncated_cfg, &truncated_fault) {
                Err(e) => report.violations.push(Violation::NonTermination {
                    stage: "truncated".into(),
                    error: e.to_string(),
                }),
                Ok(truncated) if !truncated.completed => {
                    report.violations.push(Violation::Incomplete {
                        stage: "truncated".into(),
                        diverged: truncated.diverged,
                        restore_failure: truncated.restore_failure.clone(),
                    })
                }
                Ok(truncated) => {
                    let resumed_fault = FaultConfig::new(plan.clone())
                        .with_recovery(self.recovery)
                        .with_abft(self.abft)
                        .with_durable(DurableConfig::new(&dir).with_keep(16).with_resume(true));
                    match run_parallel_md_faulty(&self.system, &self.cfg, &resumed_fault) {
                        Err(e) => report.violations.push(Violation::NonTermination {
                            stage: "resumed".into(),
                            error: e.to_string(),
                        }),
                        Ok(resumed) => {
                            if let Some(v) = Self::unplanned_crash("resumed", plan, &resumed) {
                                report.violations.push(v);
                            }
                            if !resumed.completed {
                                report.violations.push(Violation::Incomplete {
                                    stage: "resumed".into(),
                                    diverged: resumed.diverged,
                                    restore_failure: resumed.restore_failure.clone(),
                                });
                            } else {
                                let dev = state_deviation(&resumed, &full);
                                report.resume_deviation = dev;
                                // Both runs recover independently, so
                                // each may sit a full tolerance from
                                // the golden trajectory — on opposite
                                // sides.
                                let crash_in_either = !full.crashed_ranks.is_empty()
                                    || !truncated.crashed_ranks.is_empty()
                                    || !resumed.crashed_ranks.is_empty()
                                    || full.evictions > 0
                                    || truncated.evictions > 0
                                    || resumed.evictions > 0;
                                let sdc_in_either = full.sdc_events > 0 || resumed.sdc_events > 0;
                                let rebalance_in_either = full.rebalances > 0
                                    || truncated.rebalances > 0
                                    || resumed.rebalances > 0;
                                let mut rtol = 0.0;
                                if crash_in_either {
                                    rtol += 2.0 * CRASH_RECOVERY_TOLERANCE;
                                }
                                if rebalance_in_either {
                                    rtol += 2.0 * REBALANCE_TOLERANCE;
                                }
                                if sdc_in_either {
                                    rtol += 2.0 * BENIGN_SDC_TOLERANCE;
                                }
                                if dev > rtol {
                                    report.violations.push(Violation::ResumeDivergence {
                                        max_deviation: dev,
                                        tolerance: rtol,
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }

        report
    }

    /// Minimizes a failing plan against this harness's oracles and
    /// packages it as a [`Reproducer`]. `seed`/`index` only annotate
    /// the artifact.
    pub fn minimize_to_reproducer(&self, plan: &FaultPlan, seed: u64, index: u64) -> Reproducer {
        let (min_plan, probes) = minimize(plan, |p| !self.check(p).violations.is_empty());
        let violations = self.check(&min_plan).violations;
        Reproducer {
            seed,
            index,
            ranks: self.cfg.cluster.ranks,
            nodes: self.cfg.cluster.nodes(),
            steps: self.cfg.steps,
            abft: self.abft.enabled,
            events: flatten(&min_plan).len(),
            probes,
            violations,
            plan: min_plan,
        }
    }
}

/// Cross-incarnation accounting for one campaign run through the
/// crash-safe job service (`cpc-workload`): every execution, cache
/// hit, journal pre-seed, reclaimed lease and injected-fault side
/// effect, summed over all incarnations of the service, plus the
/// FNV-1a digests of the final results artifact and of an
/// uninterrupted reference run. [`check_service_ledger`] turns a
/// ledger into oracle verdicts.
///
/// Concrete (non-generic) and serializable so chaos campaigns can
/// journal verdicts the same way they journal schedule reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ServiceLedger {
    /// Cells the campaign comprises.
    pub total_cells: usize,
    /// Cells with a durable result when the service drained.
    pub completed: usize,
    /// Cells dead-lettered after exhausting their retry budget.
    pub abandoned: usize,
    /// Fresh simulations across all incarnations (the work actually
    /// done; the no-duplicate-execution oracle bounds this).
    pub executed: usize,
    /// Executions whose result never became durable (worker killed
    /// mid-cell) — each one licenses exactly one re-execution.
    pub lost_executions: usize,
    /// Durable results destroyed by injected storage faults (torn
    /// results-journal writes) — each licenses one re-execution.
    pub destroyed_results: usize,
    /// Cells served from the recovered journal prefix without
    /// re-dispatch.
    pub journal_preseeded: usize,
    /// Cells served from the content-addressed cache without
    /// re-simulation.
    pub cache_hits: usize,
    /// Cache entries whose checksum caught at-rest damage (the entry
    /// was quarantined and the cell re-derived).
    pub cache_corruption_caught: usize,
    /// Leases reclaimed from dead incarnations at recovery.
    pub reclaimed_leases: usize,
    /// Torn/damaged journal lines dropped across queue shards and the
    /// results journal.
    pub dropped_lines: usize,
    /// Duplicate result records scrubbed by keyed journal resume.
    pub duplicate_results: usize,
    /// Stale-lease completions presented to the queue.
    pub stale_presented: usize,
    /// Stale-lease completions the queue rejected (must equal
    /// `stale_presented`).
    pub stale_rejected: usize,
    /// Service incarnations (1 = never killed).
    pub incarnations: usize,
    /// Process kills the schedule actually delivered.
    pub kills: usize,
    /// FNV-1a digest of the final results artifact; `None` when the
    /// artifact was missing or unreadable — which the byte-identity
    /// oracle treats as a violation, never as a match.
    pub artifact_digest: Option<u64>,
    /// Same digest from the uninterrupted reference run.
    pub reference_digest: Option<u64>,
}

/// One violation of the job-service invariants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ServiceViolation {
    /// A cell vanished: the drained service holds fewer durable
    /// results than the campaign has cells (excluding dead-letters,
    /// which are themselves forbidden under the sampled fault space).
    LostCell {
        /// Cells with durable results.
        completed: usize,
        /// Cells dead-lettered.
        abandoned: usize,
        /// Cells the campaign comprises.
        total: usize,
    },
    /// More fresh executions than the schedule licenses: some cell
    /// with a durable (or cacheable) result was re-simulated.
    DuplicateExecution {
        /// Fresh executions observed.
        executed: usize,
        /// The bound: `total + lost_executions + destroyed_results`.
        allowance: usize,
    },
    /// The killed-and-resumed campaign's artifact differs from the
    /// uninterrupted run's — or either artifact was missing/unreadable
    /// (`None`), which can never count as byte-identical.
    ArtifactMismatch {
        /// Digest of the chaos run's artifact (`None` = unreadable).
        artifact: Option<u64>,
        /// Digest of the reference run's artifact (`None` = unreadable).
        reference: Option<u64>,
    },
    /// A stale or duplicate lease completion was accepted instead of
    /// rejected: double-counted work.
    StaleLeaseAccepted {
        /// Stale completions presented.
        presented: usize,
        /// Stale completions rejected.
        rejected: usize,
    },
}

impl std::fmt::Display for ServiceViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceViolation::LostCell {
                completed,
                abandoned,
                total,
            } => write!(
                f,
                "lost cell: {completed} completed + {abandoned} abandoned of {total}"
            ),
            ServiceViolation::DuplicateExecution {
                executed,
                allowance,
            } => write!(
                f,
                "duplicate execution: {executed} ran, {allowance} allowed"
            ),
            ServiceViolation::ArtifactMismatch {
                artifact,
                reference,
            } => write!(
                f,
                "artifact mismatch: {} != reference {}",
                fmt_digest(*artifact),
                fmt_digest(*reference)
            ),
            ServiceViolation::StaleLeaseAccepted {
                presented,
                rejected,
            } => write!(f, "stale lease accepted: {rejected}/{presented} rejected"),
        }
    }
}

/// Renders an artifact digest for violation messages (`None` = the
/// file could not be read, which is itself a reportable state).
fn fmt_digest(d: Option<u64>) -> String {
    match d {
        Some(d) => format!("{d:016x}"),
        None => "<unreadable>".to_string(),
    }
}

/// The two service-level oracles of the kill-resume property, as pure
/// functions of the ledger:
///
/// 1. **No lost cell, no duplicate execution.** Every cell ends with
///    exactly one durable result, and the number of fresh executions
///    never exceeds `total + lost_executions + destroyed_results` —
///    the only re-runs a crash schedule licenses are cells whose
///    result it actually destroyed (a worker killed mid-cell, a torn
///    results-journal write). Completed work behind a kill must be
///    served from the journal prefix or the cache, never re-simulated.
/// 2. **Byte-identical artifact after kill-resume.** The drained
///    campaign's results artifact digests identically to an
///    uninterrupted run's: recovery is invisible in the output.
///
/// Stale-lease accounting rides along: every stale completion
/// presented must have been rejected.
pub fn check_service_ledger(ledger: &ServiceLedger) -> Vec<ServiceViolation> {
    let mut violations = Vec::new();
    if ledger.completed + ledger.abandoned < ledger.total_cells || ledger.abandoned > 0 {
        violations.push(ServiceViolation::LostCell {
            completed: ledger.completed,
            abandoned: ledger.abandoned,
            total: ledger.total_cells,
        });
    }
    let allowance = ledger.total_cells + ledger.lost_executions + ledger.destroyed_results;
    if ledger.executed > allowance {
        violations.push(ServiceViolation::DuplicateExecution {
            executed: ledger.executed,
            allowance,
        });
    }
    // An unreadable artifact (`None`) is always a violation: two
    // missing files must never compare "byte-identical".
    if ledger.artifact_digest.is_none()
        || ledger.reference_digest.is_none()
        || ledger.artifact_digest != ledger.reference_digest
    {
        violations.push(ServiceViolation::ArtifactMismatch {
            artifact: ledger.artifact_digest,
            reference: ledger.reference_digest,
        });
    }
    if ledger.stale_rejected != ledger.stale_presented {
        violations.push(ServiceViolation::StaleLeaseAccepted {
            presented: ledger.stale_presented,
            rejected: ledger.stale_rejected,
        });
    }
    violations
}

/// The artifact digest one thread count of the fault-free sweep
/// produced (a struct rather than a tuple so the serde shim journals
/// it by field name).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ThreadDigest {
    /// Worker threads the pool ran.
    pub threads: usize,
    /// FNV-1a digest of the resulting artifact (`None` = unreadable).
    pub digest: Option<u64>,
}

/// Accounting for one campaign run on the `cpc-pool` work-stealing
/// executor under an adversarial schedule (steal storms, injected
/// worker pauses and panics, thread-count changes mid-campaign, lease
/// expiry racing a slow worker). Aggregates the pooled service
/// outcome, the pool's own counters, the fault-free thread sweep and
/// the post-chaos reusability probe. [`check_sched_ledger`] turns a
/// ledger into oracle verdicts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct SchedLedger {
    /// Cells the campaign comprises.
    pub total_cells: usize,
    /// Cells with a durable result when the chaos run drained.
    pub completed: usize,
    /// Cells dead-lettered.
    pub abandoned: usize,
    /// Committed fresh executions (a panicked attempt is counted in
    /// `panics_caught`, never here).
    pub executed: usize,
    /// Worker threads the chaos plan prescribed (after any mid-run
    /// thread-count change).
    pub threads: usize,
    /// Tasks the pool executed across the chaos run.
    pub pool_tasks: usize,
    /// Successful steals the pool observed (organic + storm).
    pub steals: usize,
    /// Worker panics the plan injected.
    pub panics_injected: usize,
    /// Panics the pool contained (must equal the injected count —
    /// a missing one escaped the `catch_unwind` boundary).
    pub panics_caught: usize,
    /// Leases reclaimed through the expiry path while recovering
    /// panicked cells.
    pub panic_reclaimed: usize,
    /// Injected pauses actually taken at yield points.
    pub pauses_taken: usize,
    /// Stale-lease completions presented to the queue.
    pub stale_presented: usize,
    /// Stale-lease completions the queue rejected.
    pub stale_rejected: usize,
    /// Result lines in the final artifact (exactly one per cell, or
    /// a task was lost / doubly committed).
    pub journal_lines: usize,
    /// Whether the pool's stall watchdog convicted the run.
    pub stalled: bool,
    /// Whether the chaos pool executed a fresh probe batch afterward
    /// (a panicked worker must never poison the pool).
    pub pool_reusable: bool,
    /// FNV-1a digest of the chaos run's artifact.
    pub artifact_digest: Option<u64>,
    /// Digest of the serial (sequential-step) reference artifact.
    pub reference_digest: Option<u64>,
    /// Fault-free sweep digests, one per thread count.
    pub thread_digests: Vec<ThreadDigest>,
}

/// One violation of the deterministic-scheduling invariants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SchedViolation {
    /// A cell vanished: fewer durable results than campaign cells.
    LostTask {
        /// Cells with durable results.
        completed: usize,
        /// Cells dead-lettered.
        abandoned: usize,
        /// Cells the campaign comprises.
        total: usize,
    },
    /// The artifact holds more or fewer result lines than the
    /// campaign has cells: a task committed twice or not at all.
    DoubleCommit {
        /// Result lines in the artifact.
        journal_lines: usize,
        /// Cells the campaign comprises.
        total: usize,
    },
    /// More committed executions than cells: some cell re-ran with
    /// its result already durable.
    DuplicateExecution {
        /// Committed executions observed.
        executed: usize,
        /// The bound (one per cell).
        allowance: usize,
    },
    /// The pool's stall watchdog convicted the schedule: a deadlock
    /// or unbounded stall under chaos.
    Deadlocked {
        /// Cells completed before the stall.
        completed: usize,
        /// Cells the campaign comprises.
        total: usize,
    },
    /// The chaos run's artifact differs from the serial reference —
    /// or either was unreadable, which never counts as identical.
    ArtifactMismatch {
        /// Digest of the chaos run's artifact.
        artifact: Option<u64>,
        /// Digest of the serial reference artifact.
        reference: Option<u64>,
    },
    /// A fault-free run at some thread count produced different
    /// artifact bytes than the serial reference.
    ThreadCountMismatch {
        /// The divergent thread count.
        threads: usize,
        /// Its artifact digest.
        digest: Option<u64>,
        /// The serial reference digest.
        reference: Option<u64>,
    },
    /// An injected worker panic escaped containment or its cell was
    /// never reclaimed through the lease path.
    PanicNotContained {
        /// Panics the plan injected.
        injected: usize,
        /// Panics the pool caught.
        caught: usize,
        /// Leases reclaimed recovering them.
        reclaimed: usize,
    },
    /// The pool refused work after a contained panic: a poisoned
    /// executor.
    PoolPoisoned,
    /// A stale lease completion was accepted instead of rejected.
    StaleLeaseAccepted {
        /// Stale completions presented.
        presented: usize,
        /// Stale completions rejected.
        rejected: usize,
    },
}

impl std::fmt::Display for SchedViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedViolation::LostTask {
                completed,
                abandoned,
                total,
            } => write!(
                f,
                "lost task: {completed} completed + {abandoned} abandoned of {total}"
            ),
            SchedViolation::DoubleCommit {
                journal_lines,
                total,
            } => write!(
                f,
                "commit miscount: {journal_lines} artifact lines for {total} cells"
            ),
            SchedViolation::DuplicateExecution {
                executed,
                allowance,
            } => write!(
                f,
                "duplicate execution: {executed} committed, {allowance} allowed"
            ),
            SchedViolation::Deadlocked { completed, total } => {
                write!(
                    f,
                    "stalled: watchdog convicted at {completed}/{total} cells"
                )
            }
            SchedViolation::ArtifactMismatch {
                artifact,
                reference,
            } => write!(
                f,
                "artifact mismatch: {} != reference {}",
                fmt_digest(*artifact),
                fmt_digest(*reference)
            ),
            SchedViolation::ThreadCountMismatch {
                threads,
                digest,
                reference,
            } => write!(
                f,
                "threads={threads} artifact {} != reference {}",
                fmt_digest(*digest),
                fmt_digest(*reference)
            ),
            SchedViolation::PanicNotContained {
                injected,
                caught,
                reclaimed,
            } => write!(
                f,
                "panic not contained: {caught}/{injected} caught, {reclaimed} leases reclaimed"
            ),
            SchedViolation::PoolPoisoned => write!(f, "pool poisoned after contained panic"),
            SchedViolation::StaleLeaseAccepted {
                presented,
                rejected,
            } => write!(f, "stale lease accepted: {rejected}/{presented} rejected"),
        }
    }
}

/// The cross-thread determinism oracles, as pure functions of the
/// ledger:
///
/// 1. **No lost or doubly-committed task.** Every cell ends with
///    exactly one durable result line, and committed executions never
///    exceed one per cell — whatever the interleaving did.
/// 2. **Byte-identical artifacts.** The chaos run and every
///    fault-free thread count produce the serial reference's exact
///    bytes: thread count and interleaving are invisible in output.
/// 3. **No deadlock.** The stall watchdog never convicts.
/// 4. **Contained panics.** Every injected worker panic is caught at
///    the task boundary, its cell reclaimed through the lease-expiry
///    path, and the pool stays usable afterward.
pub fn check_sched_ledger(ledger: &SchedLedger) -> Vec<SchedViolation> {
    let mut violations = Vec::new();
    if ledger.completed + ledger.abandoned < ledger.total_cells || ledger.abandoned > 0 {
        violations.push(SchedViolation::LostTask {
            completed: ledger.completed,
            abandoned: ledger.abandoned,
            total: ledger.total_cells,
        });
    }
    if ledger.journal_lines != ledger.total_cells {
        violations.push(SchedViolation::DoubleCommit {
            journal_lines: ledger.journal_lines,
            total: ledger.total_cells,
        });
    }
    if ledger.executed > ledger.total_cells {
        violations.push(SchedViolation::DuplicateExecution {
            executed: ledger.executed,
            allowance: ledger.total_cells,
        });
    }
    if ledger.stalled {
        violations.push(SchedViolation::Deadlocked {
            completed: ledger.completed,
            total: ledger.total_cells,
        });
    }
    if ledger.artifact_digest.is_none()
        || ledger.reference_digest.is_none()
        || ledger.artifact_digest != ledger.reference_digest
    {
        violations.push(SchedViolation::ArtifactMismatch {
            artifact: ledger.artifact_digest,
            reference: ledger.reference_digest,
        });
    }
    for td in &ledger.thread_digests {
        if td.digest.is_none() || td.digest != ledger.reference_digest {
            violations.push(SchedViolation::ThreadCountMismatch {
                threads: td.threads,
                digest: td.digest,
                reference: ledger.reference_digest,
            });
        }
    }
    if ledger.panics_caught != ledger.panics_injected
        || (ledger.panics_injected > 0 && ledger.panic_reclaimed == 0)
    {
        violations.push(SchedViolation::PanicNotContained {
            injected: ledger.panics_injected,
            caught: ledger.panics_caught,
            reclaimed: ledger.panic_reclaimed,
        });
    }
    if !ledger.pool_reusable {
        violations.push(SchedViolation::PoolPoisoned);
    }
    if ledger.stale_rejected != ledger.stale_presented {
        violations.push(SchedViolation::StaleLeaseAccepted {
            presented: ledger.stale_presented,
            rejected: ledger.stale_rejected,
        });
    }
    violations
}

/// Cross-incarnation accounting for one campaign driven through the
/// HTTP/JSON gateway (`cpc-gateway`) under transport-level chaos:
/// the service-level cell accounting of [`ServiceLedger`] plus the
/// transport book — connections opened/closed, requests parsed,
/// malformed/overload rejections, deadline discipline, panics.
/// [`check_gateway_ledger`] turns a ledger into oracle verdicts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct GatewayLedger {
    /// Cells the campaign comprises.
    pub total_cells: usize,
    /// Cells with a durable result when the gateway drained.
    pub completed: usize,
    /// Cells dead-lettered (forbidden under the sampled space).
    pub abandoned: usize,
    /// Fresh simulations across all gateway incarnations.
    pub executed: usize,
    /// Executions whose result never became durable (gateway killed
    /// before the journal append) — each licenses one re-execution.
    pub lost_executions: usize,
    /// Connections the fault injector opened against the gateway.
    pub conns_opened: usize,
    /// Connections closed (handler returned and the stream dropped)
    /// by the end of the campaign. Must equal `conns_opened`: a
    /// missing close is a leaked fd.
    pub conns_closed: usize,
    /// Requests that parsed completely and reached a route.
    pub requests: usize,
    /// Malformed / oversized / truncated / timed-out requests the
    /// gateway answered with a 4xx (or aborted cleanly).
    pub rejected: usize,
    /// Requests shed with 429/503 + `Retry-After` under overload or
    /// drain.
    pub shed: usize,
    /// Read or write operations the gateway issued *after* the
    /// connection's deadline had already passed. Must be zero: a
    /// slowloris client must not drag a handler past its deadline.
    pub deadline_overruns: usize,
    /// Handler panics caught by the chaos driver. Must be zero.
    pub panics: usize,
    /// Gateway process kills the schedule delivered.
    pub kills: usize,
    /// Gateway incarnations (1 = never killed).
    pub incarnations: usize,
    /// FNV-1a digest of the campaign's results journal (`None` =
    /// unreadable, which is always a violation).
    pub artifact_digest: Option<u64>,
    /// Same digest from the direct (no-gateway) reference run.
    pub reference_digest: Option<u64>,
}

/// One violation of the gateway invariants under transport chaos.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum GatewayViolation {
    /// A connection handler panicked.
    Panic {
        /// Panics caught.
        count: usize,
    },
    /// Connections opened and closed diverge: a leaked fd.
    FdLeak {
        /// Connections opened.
        opened: usize,
        /// Connections closed.
        closed: usize,
    },
    /// A handler kept reading or writing past its deadline.
    DeadlineOverrun {
        /// Operations issued after the deadline.
        count: usize,
    },
    /// A cell vanished (or was dead-lettered) across the campaign.
    LostCell {
        /// Cells with durable results.
        completed: usize,
        /// Cells dead-lettered.
        abandoned: usize,
        /// Cells the campaign comprises.
        total: usize,
    },
    /// More fresh executions than kills license: a doubly-executed
    /// cell.
    DuplicateExecution {
        /// Fresh executions observed.
        executed: usize,
        /// The bound: `total + lost_executions`.
        allowance: usize,
    },
    /// The gateway-path artifact differs from the direct-path
    /// reference (or either was unreadable).
    ArtifactMismatch {
        /// Digest of the gateway run's artifact (`None` = unreadable).
        artifact: Option<u64>,
        /// Digest of the reference artifact (`None` = unreadable).
        reference: Option<u64>,
    },
}

impl std::fmt::Display for GatewayViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GatewayViolation::Panic { count } => write!(f, "handler panicked {count} time(s)"),
            GatewayViolation::FdLeak { opened, closed } => {
                write!(f, "fd leak: {opened} opened, {closed} closed")
            }
            GatewayViolation::DeadlineOverrun { count } => {
                write!(f, "deadline overrun: {count} op(s) past the deadline")
            }
            GatewayViolation::LostCell {
                completed,
                abandoned,
                total,
            } => write!(
                f,
                "lost cell: {completed} completed + {abandoned} abandoned of {total}"
            ),
            GatewayViolation::DuplicateExecution {
                executed,
                allowance,
            } => write!(
                f,
                "duplicate execution: {executed} ran, {allowance} allowed"
            ),
            GatewayViolation::ArtifactMismatch {
                artifact,
                reference,
            } => write!(
                f,
                "artifact mismatch: {} != reference {}",
                fmt_digest(*artifact),
                fmt_digest(*reference)
            ),
        }
    }
}

/// The gateway chaos oracles, as pure functions of the ledger:
///
/// 1. **No panic** — every misbehaving client is answered or dropped,
///    never a crash.
/// 2. **No fd leak** — every connection the injector opened was
///    closed by campaign end.
/// 3. **No request outlives its deadline** — once a connection's
///    read/write deadline passes, the handler issues no further I/O
///    on it.
/// 4. **No lost or doubly-executed cell** — the service oracles hold
///    through the HTTP path: every cell durable exactly once, and
///    fresh executions never exceed `total + lost_executions`.
/// 5. **Byte-identical artifact** — the campaign journal produced
///    through the gateway (including kill-resume through HTTP)
///    digests identically to the direct-path reference; an unreadable
///    artifact is a violation, never a match.
pub fn check_gateway_ledger(ledger: &GatewayLedger) -> Vec<GatewayViolation> {
    let mut violations = Vec::new();
    if ledger.panics > 0 {
        violations.push(GatewayViolation::Panic {
            count: ledger.panics,
        });
    }
    if ledger.conns_opened != ledger.conns_closed {
        violations.push(GatewayViolation::FdLeak {
            opened: ledger.conns_opened,
            closed: ledger.conns_closed,
        });
    }
    if ledger.deadline_overruns > 0 {
        violations.push(GatewayViolation::DeadlineOverrun {
            count: ledger.deadline_overruns,
        });
    }
    if ledger.completed + ledger.abandoned < ledger.total_cells || ledger.abandoned > 0 {
        violations.push(GatewayViolation::LostCell {
            completed: ledger.completed,
            abandoned: ledger.abandoned,
            total: ledger.total_cells,
        });
    }
    let allowance = ledger.total_cells + ledger.lost_executions;
    if ledger.executed > allowance {
        violations.push(GatewayViolation::DuplicateExecution {
            executed: ledger.executed,
            allowance,
        });
    }
    if ledger.artifact_digest.is_none()
        || ledger.reference_digest.is_none()
        || ledger.artifact_digest != ledger.reference_digest
    {
        violations.push(GatewayViolation::ArtifactMismatch {
            artifact: ledger.artifact_digest,
            reference: ledger.reference_digest,
        });
    }
    violations
}

/// Cross-incarnation accounting for one campaign run against a
/// fault-injected filesystem (`cpc-vfs::SimFs`): cell and execution
/// counts summed over every incarnation — power-cut restarts, ENOSPC
/// quiesce/lift cycles, transient-error retries — plus the
/// filesystem's own fault counters and the artifact digests.
/// [`check_disk_ledger`] turns a ledger into oracle verdicts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct DiskLedger {
    /// Cells the campaign comprises.
    pub total_cells: usize,
    /// Cells with a durable result when the campaign drained.
    pub completed: usize,
    /// Cells dead-lettered (forbidden under the sampled space).
    pub abandoned: usize,
    /// Fresh simulations across all incarnations.
    pub executed: usize,
    /// Executions whose durability is unlicensed to assume: the step
    /// that ran them failed before acknowledging, so the schedule
    /// licenses exactly one re-execution each.
    pub lost_executions: usize,
    /// Service incarnations (1 = fault-free).
    pub incarnations: usize,
    /// Power-cut restarts the driver performed.
    pub restarts: usize,
    /// Persistent-ENOSPC lifts the driver performed after observing
    /// the service quiesce.
    pub enospc_lifts: usize,
    /// Transient I/O errors (EIO, short write, failed rename) the
    /// driver retried past.
    pub io_retries: usize,
    /// Results that were durably acknowledged and then missing after a
    /// restart — the acked-then-lost count, always a violation.
    pub acked_then_lost: usize,
    /// Recovered results that differ from a fresh re-execution of
    /// their cell — corrupt bytes accepted as valid, always a
    /// violation.
    pub corrupt_accepted: usize,
    /// Panics caught while stepping the service under disk faults.
    pub panics: usize,
    /// The simulated disk's own accounting: ops, faults fired, and the
    /// poisoned-publish count (a rename that published a file whose
    /// fsync had failed — post-failed-fsync trust).
    pub disk: DiskCounters,
    /// FNV-1a digest of the final results artifact (`None` =
    /// missing/unreadable, which never compares equal).
    pub artifact_digest: Option<u64>,
    /// Same digest from the fault-free reference run.
    pub reference_digest: Option<u64>,
}

/// One violation of the disk-fault durability invariants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DiskViolation {
    /// A cell vanished: fewer durable results than cells when the
    /// campaign drained (dead-letters are forbidden too).
    LostCell {
        /// Cells with durable results.
        completed: usize,
        /// Cells dead-lettered.
        abandoned: usize,
        /// Cells the campaign comprises.
        total: usize,
    },
    /// More fresh executions than the fault schedule licenses: a cell
    /// with a durably-acknowledged result was re-simulated.
    DuplicateExecution {
        /// Fresh executions observed.
        executed: usize,
        /// The bound: `total + lost_executions`.
        allowance: usize,
    },
    /// A durably-acknowledged result was missing after a restart: the
    /// ack was a lie (bytes were not on stable storage).
    AckedThenLost {
        /// Acked results that vanished.
        lost: usize,
    },
    /// A recovered result differs from a fresh re-execution of its
    /// cell: corrupt bytes were accepted as valid.
    CorruptAccepted {
        /// Corrupt results accepted.
        accepted: usize,
    },
    /// The service panicked under a disk fault instead of returning a
    /// typed error.
    Panicked {
        /// Panics caught.
        panics: usize,
    },
    /// A rename published a file whose fsync had failed — the
    /// fsyncgate case: retrying (or ignoring) a failed fsync and then
    /// trusting the file. The write path must abandon the file
    /// instead.
    PoisonedPublish {
        /// Poisoned publishes the filesystem observed.
        publishes: u64,
    },
    /// The drained campaign's artifact differs from the fault-free
    /// reference run's — or either was unreadable (`None`), which can
    /// never count as byte-identical.
    ArtifactMismatch {
        /// Digest of the chaos run's artifact (`None` = unreadable).
        artifact: Option<u64>,
        /// Digest of the reference run's artifact (`None` = unreadable).
        reference: Option<u64>,
    },
}

impl std::fmt::Display for DiskViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiskViolation::LostCell {
                completed,
                abandoned,
                total,
            } => write!(
                f,
                "lost cell: {completed} completed + {abandoned} abandoned of {total}"
            ),
            DiskViolation::DuplicateExecution {
                executed,
                allowance,
            } => write!(
                f,
                "duplicate execution: {executed} ran, {allowance} allowed"
            ),
            DiskViolation::AckedThenLost { lost } => {
                write!(f, "acked then lost: {lost} durable results vanished")
            }
            DiskViolation::CorruptAccepted { accepted } => {
                write!(
                    f,
                    "corrupt accept: {accepted} recovered results differ from re-execution"
                )
            }
            DiskViolation::Panicked { panics } => {
                write!(f, "panic under disk fault: {panics} caught")
            }
            DiskViolation::PoisonedPublish { publishes } => write!(
                f,
                "post-failed-fsync trust: {publishes} poisoned files published"
            ),
            DiskViolation::ArtifactMismatch {
                artifact,
                reference,
            } => write!(
                f,
                "artifact mismatch: {} != reference {}",
                fmt_digest(*artifact),
                fmt_digest(*reference)
            ),
        }
    }
}

/// The crash-consistency oracles of the disk-fault campaign, as pure
/// functions of the ledger:
///
/// 1. **No acked-then-lost.** A result acknowledged durable before a
///    power cut is still there after restart — both directly
///    (`acked_then_lost`) and through the execution bound (re-running
///    an acked cell exceeds the allowance).
/// 2. **No corrupt-accept.** Every recovered result matches a fresh
///    re-execution of its cell; damaged bytes are quarantined and
///    re-derived, never served.
/// 3. **No panic.** Every injected fault surfaces as a typed error.
/// 4. **No post-failed-fsync trust.** A file whose fsync failed is
///    abandoned, never renamed into place (`fsyncgate`).
/// 5. **Graceful completion.** Once faults clear, the campaign drains
///    every cell and the artifact digests identically to the
///    fault-free reference.
pub fn check_disk_ledger(ledger: &DiskLedger) -> Vec<DiskViolation> {
    let mut violations = Vec::new();
    if ledger.completed + ledger.abandoned < ledger.total_cells || ledger.abandoned > 0 {
        violations.push(DiskViolation::LostCell {
            completed: ledger.completed,
            abandoned: ledger.abandoned,
            total: ledger.total_cells,
        });
    }
    let allowance = ledger.total_cells + ledger.lost_executions;
    if ledger.executed > allowance {
        violations.push(DiskViolation::DuplicateExecution {
            executed: ledger.executed,
            allowance,
        });
    }
    if ledger.acked_then_lost > 0 {
        violations.push(DiskViolation::AckedThenLost {
            lost: ledger.acked_then_lost,
        });
    }
    if ledger.corrupt_accepted > 0 {
        violations.push(DiskViolation::CorruptAccepted {
            accepted: ledger.corrupt_accepted,
        });
    }
    if ledger.panics > 0 {
        violations.push(DiskViolation::Panicked {
            panics: ledger.panics,
        });
    }
    if ledger.disk.poisoned_publishes > 0 {
        violations.push(DiskViolation::PoisonedPublish {
            publishes: ledger.disk.poisoned_publishes,
        });
    }
    if ledger.artifact_digest.is_none()
        || ledger.reference_digest.is_none()
        || ledger.artifact_digest != ledger.reference_digest
    {
        violations.push(DiskViolation::ArtifactMismatch {
            artifact: ledger.artifact_digest,
            reference: ledger.reference_digest,
        });
    }
    violations
}

/// Every single-layer ledger of one composed chaos schedule absorbed
/// into a single book, plus the conductor's own ground-truth
/// execution accounting. Filled by `run_composed_chaos`
/// (`cpc-gateway`), convicted by [`check_cross_ledger`].
///
/// The sub-ledgers are kept to their own layers' contracts: the
/// service, transport and disk books sum the per-incarnation
/// outcome-derived counters exactly as their single-layer
/// drivers do (a service instance the gateway revives internally is
/// absorbed conservatively — its executions under-count, never
/// over-count), while `executed_true` counts **every** model
/// execution across every incarnation and revival via the
/// conductor's counting wrapper, and is bounded by the composed
/// re-execution license `exec_allowance`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct CrossLedger {
    /// MD-layer verdict (`None` when the MD layer is masked).
    pub md: Option<ScheduleReport>,
    /// Service-layer book (kills, torn writes, stale leases).
    pub service: ServiceLedger,
    /// Transport-layer book (the gateway's connection accounting).
    pub gateway: GatewayLedger,
    /// Disk-layer book (restarts, ENOSPC lifts, acked-then-lost).
    pub disk: DiskLedger,
    /// Scheduler-layer book (steals, pauses, panic containment).
    pub sched: SchedLedger,
    /// Armed events per layer, in [`LAYERS`] order
    /// (md, service, transport, disk, sched) — the pairwise
    /// interaction-coverage record of this schedule.
    pub layer_events: [usize; 5],
    /// Ground truth: model executions observed by the conductor's
    /// counting wrapper, across every incarnation and revival.
    pub executed_true: usize,
    /// The composed re-execution license: `total_cells` plus one
    /// stranded batch per incarnation/restart/retry boundary plus one
    /// re-execution per destroyed or dropped durable line, reclaimed
    /// lease, injected panic and stale lease. Computed by the
    /// conductor, which sees every boundary.
    pub exec_allowance: usize,
    /// FNV-1a digest of the drained campaign artifact.
    pub artifact_digest: Option<u64>,
    /// FNV-1a digest of the fault-free serial reference artifact.
    pub reference_digest: Option<u64>,
}

/// One violation of the composed chaos oracles: a single-layer
/// conviction lifted into its layer, or one of the cross-layer
/// interaction oracles only a composed schedule can exercise.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CrossViolation {
    /// An MD-layer oracle fired.
    Md {
        /// The underlying violation.
        violation: Violation,
    },
    /// A service-layer oracle fired.
    Service {
        /// The underlying violation.
        violation: ServiceViolation,
    },
    /// A transport-layer (gateway) oracle fired.
    Transport {
        /// The underlying violation.
        violation: GatewayViolation,
    },
    /// A disk-layer oracle fired.
    Disk {
        /// The underlying violation.
        violation: DiskViolation,
    },
    /// A scheduler-layer oracle fired.
    Sched {
        /// The underlying violation.
        violation: SchedViolation,
    },
    /// A durably-acknowledged result vanished while both a disk fault
    /// and a process kill were armed — the interaction the disk
    /// layer's own oracle cannot attribute: the loss needed a fault
    /// *and* a recovery racing it.
    AckedThenLostAcrossLayers {
        /// Acked results that vanished.
        lost: usize,
        /// Disk events armed in the schedule.
        disk_events: usize,
        /// Process kills (service + gateway) in the schedule.
        kills: usize,
    },
    /// Ground-truth executions exceeded the composed re-execution
    /// license — duplicate work that no single layer's book convicts
    /// (each absorbs only its own instances' counters).
    DuplicateExecutionAcrossLayers {
        /// Executions the conductor observed.
        executed: usize,
        /// The composed license.
        allowance: usize,
    },
    /// The drained artifact is not byte-identical to the fault-free
    /// serial reference — the composed end-to-end identity statement.
    DrainedArtifactDiverged {
        /// Digest of the drained artifact.
        artifact: Option<u64>,
        /// Digest of the reference artifact.
        reference: Option<u64>,
    },
}

impl std::fmt::Display for CrossViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CrossViolation::Md { violation } => write!(f, "md: {violation}"),
            CrossViolation::Service { violation } => write!(f, "service: {violation}"),
            CrossViolation::Transport { violation } => write!(f, "transport: {violation}"),
            CrossViolation::Disk { violation } => write!(f, "disk: {violation}"),
            CrossViolation::Sched { violation } => write!(f, "sched: {violation}"),
            CrossViolation::AckedThenLostAcrossLayers {
                lost,
                disk_events,
                kills,
            } => write!(
                f,
                "cross: {lost} acked results lost under {disk_events} disk events x {kills} kills"
            ),
            CrossViolation::DuplicateExecutionAcrossLayers {
                executed,
                allowance,
            } => write!(
                f,
                "cross: duplicate execution: {executed} ran, {allowance} licensed across layers"
            ),
            CrossViolation::DrainedArtifactDiverged {
                artifact,
                reference,
            } => write!(
                f,
                "cross: drained artifact {} != serial reference {}",
                fmt_digest(*artifact),
                fmt_digest(*reference)
            ),
        }
    }
}

/// Checks the union of every single-layer oracle plus the
/// cross-layer interaction oracles over one [`CrossLedger`].
///
/// The scheduler book is the one place the union is not verbatim:
/// its single-layer `DuplicateExecution` bound (`executed <=
/// total_cells`, no license term) presumes a kill-free, disk-free
/// world, and in a composed schedule kills and storage faults
/// legitimately license re-execution. That bound is filtered out
/// here and carried instead by [`CrossViolation::
/// DuplicateExecutionAcrossLayers`], whose allowance accounts for
/// every layer's licenses. Every other scheduler oracle (ordered
/// commits, deadlock, panic containment, pool reusability, stale
/// leases, artifact identity) applies unchanged.
pub fn check_cross_ledger(ledger: &CrossLedger) -> Vec<CrossViolation> {
    let mut violations = Vec::new();
    if let Some(md) = &ledger.md {
        violations.extend(
            md.violations
                .iter()
                .cloned()
                .map(|violation| CrossViolation::Md { violation }),
        );
    }
    violations.extend(
        check_service_ledger(&ledger.service)
            .into_iter()
            .map(|violation| CrossViolation::Service { violation }),
    );
    violations.extend(
        check_gateway_ledger(&ledger.gateway)
            .into_iter()
            .map(|violation| CrossViolation::Transport { violation }),
    );
    violations.extend(
        check_disk_ledger(&ledger.disk)
            .into_iter()
            .map(|violation| CrossViolation::Disk { violation }),
    );
    violations.extend(
        check_sched_ledger(&ledger.sched)
            .into_iter()
            .filter(|v| !matches!(v, SchedViolation::DuplicateExecution { .. }))
            .map(|violation| CrossViolation::Sched { violation }),
    );

    // Interaction oracle 1: acked-then-lost across a disk fault and a
    // process kill. (With only the disk layer armed the disk book's
    // own AckedThenLost conviction stands alone.)
    let kills = ledger.service.kills + ledger.gateway.kills;
    if ledger.disk.acked_then_lost > 0 && ledger.layer_events[3] > 0 && kills > 0 {
        violations.push(CrossViolation::AckedThenLostAcrossLayers {
            lost: ledger.disk.acked_then_lost,
            disk_events: ledger.layer_events[3],
            kills,
        });
    }
    // Interaction oracle 2: the global execution bound.
    if ledger.executed_true > ledger.exec_allowance {
        violations.push(CrossViolation::DuplicateExecutionAcrossLayers {
            executed: ledger.executed_true,
            allowance: ledger.exec_allowance,
        });
    }
    // Interaction oracle 3: end-to-end byte identity. `None` never
    // matches — two unreadable artifacts are not "identical".
    if ledger.artifact_digest.is_none()
        || ledger.reference_digest.is_none()
        || ledger.artifact_digest != ledger.reference_digest
    {
        violations.push(CrossViolation::DrainedArtifactDiverged {
            artifact: ledger.artifact_digest,
            reference: ledger.reference_digest,
        });
    }
    violations
}

/// Generic ddmin over one layer's fault list: remove complements of
/// progressively finer chunks while `fails` keeps returning true.
/// Never probes the empty list (removing a layer's every event is
/// the layer-drop probe, which phase 0 of [`minimize_composed`]
/// already refuted for surviving layers).
fn ddmin_layer<E: Clone, F>(events: Vec<E>, mut fails: F, probes: &mut usize) -> Vec<E>
where
    F: FnMut(&[E]) -> bool,
{
    let mut events = events;
    let mut n = 2usize;
    while events.len() >= 2 {
        let chunk = events.len().div_ceil(n);
        let mut reduced = false;
        for i in 0..n {
            let (lo, hi) = (i * chunk, ((i + 1) * chunk).min(events.len()));
            if lo >= hi {
                continue;
            }
            let complement: Vec<E> = events[..lo].iter().chain(&events[hi..]).cloned().collect();
            if complement.is_empty() {
                continue;
            }
            *probes += 1;
            if fails(&complement) {
                events = complement;
                reduced = true;
                break;
            }
        }
        if reduced {
            n = n.saturating_sub(1).max(2);
        } else {
            if n >= events.len() {
                break;
            }
            n = (n * 2).min(events.len());
        }
    }
    events
}

/// Cross-layer delta-debugging minimization: given a composed plan
/// whose schedule makes `fails` return true, returns a (locally)
/// minimal composed plan that still fails, plus the number of probes
/// spent.
///
/// Phase 0 triages **whole layers**: in [`LAYERS`] order, to a
/// fixpoint, each armed layer is masked out and the mask kept
/// whenever the failure persists — masking is a pure projection
/// (per-layer sub-channels), so dropping one layer never perturbs
/// another's events. Phase 1 then runs ddmin over the event list of
/// each surviving layer (the MD layer additionally gets the scalar
/// severity-halving pass of [`minimize`]). The empty schedule is
/// never probed.
pub fn minimize_composed<F>(plan: &ComposedPlan, mut fails: F) -> (ComposedPlan, usize)
where
    F: FnMut(&ComposedPlan) -> bool,
{
    let mut current = plan.clone();
    let mut probes = 0usize;

    // Phase 0: drop whole layers.
    loop {
        let mut changed = false;
        for layer in LAYERS {
            if !current.armed(layer) {
                continue;
            }
            let candidate = current.masked(current.mask.without(layer));
            if candidate.armed_layers().is_empty() {
                continue;
            }
            probes += 1;
            if fails(&candidate) {
                current = candidate;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Phase 1: ddmin events within each surviving layer.
    if current.armed(Layer::Md) {
        let base = current.clone();
        let (md, md_probes) = minimize(&current.md, |candidate| {
            let mut probe = base.clone();
            probe.md = candidate.clone();
            fails(&probe)
        });
        current.md = md;
        probes += md_probes;
    }
    if current.armed(Layer::Service) {
        let base = current.clone();
        current.service.faults = ddmin_layer(
            current.service.faults.clone(),
            |kept| {
                let mut probe = base.clone();
                probe.service.faults = kept.to_vec();
                fails(&probe)
            },
            &mut probes,
        );
    }
    if current.armed(Layer::Transport) {
        let base = current.clone();
        current.transport.faults = ddmin_layer(
            current.transport.faults.clone(),
            |kept| {
                let mut probe = base.clone();
                probe.transport.faults = kept.to_vec();
                fails(&probe)
            },
            &mut probes,
        );
    }
    if current.armed(Layer::Disk) {
        let base = current.clone();
        current.disk.faults = ddmin_layer(
            current.disk.faults.clone(),
            |kept| {
                let mut probe = base.clone();
                probe.disk.faults = kept.to_vec();
                fails(&probe)
            },
            &mut probes,
        );
    }
    if current.armed(Layer::Sched) {
        let base = current.clone();
        current.sched.faults = ddmin_layer(
            current.sched.faults.clone(),
            |kept| {
                let mut probe = base.clone();
                probe.sched.faults = kept.to_vec();
                fails(&probe)
            },
            &mut probes,
        );
    }

    (current, probes)
}

/// A minimized failing composed schedule — or a deliberately pinned
/// passing one — serialized as a replayable corpus artifact
/// (`reproducers/*.json`). Replay reconstructs the same campaign
/// workload, drives `run_composed_chaos` under
/// [`CrossReproducer::plan`], and asserts the verdict matches
/// [`CrossReproducer::expect_fail`]; determinism makes the verdict
/// JSON byte-identical on every replay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrossReproducer {
    /// Campaign seed the schedule was sampled with (0 for
    /// hand-planted schedules).
    pub seed: u64,
    /// Campaign index of the schedule.
    pub index: u64,
    /// Cells of the serve-backed campaign.
    pub cells: usize,
    /// Cluster ranks of the MD workload.
    pub ranks: usize,
    /// Cluster nodes of the MD workload.
    pub nodes: usize,
    /// MD steps of the workload.
    pub steps: usize,
    /// Whether the MD layer ran with ABFT checksums armed — replay
    /// must match (an armed engine repairs the very corruptions a
    /// disarmed-engine reproducer provokes).
    pub abft: bool,
    /// Corpus expectation: `true` pins a regression (replay must
    /// still fail), `false` pins determinism (replay must pass, with
    /// a byte-identical verdict).
    pub expect_fail: bool,
    /// Armed fault events remaining after minimization.
    pub events: usize,
    /// Oracle probes the minimizer spent.
    pub probes: usize,
    /// The violations the plan provokes (Debug-rendered, stable).
    pub violations: Vec<String>,
    /// The minimized composed plan (mask included).
    pub plan: ComposedPlan,
}

impl CrossReproducer {
    /// Serializes the reproducer as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("cross reproducer serializes")
    }

    /// Parses a reproducer back from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpc_cluster::{ClusterConfig, NetworkKind, SdcTarget};
    use cpc_md::energy::EnergyModel;
    use cpc_mpi::Middleware;

    fn harness(tag: &str, ranks: usize, steps: usize) -> ChaosHarness {
        let mut sys = cpc_md::builder::water_box(2, 3.1);
        cpc_md::minimize::minimize(&mut sys, EnergyModel::Classic, 40);
        sys.assign_velocities(150.0, 3);
        let cfg = MdConfig {
            steps,
            ..MdConfig::paper_protocol(
                EnergyModel::Classic,
                Middleware::Mpi,
                ClusterConfig::uni(ranks, NetworkKind::ScoreGigE),
            )
        };
        let dir = std::env::temp_dir().join(format!("cpc-chaos-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ChaosHarness::new(sys, cfg, dir).unwrap()
    }

    /// An ABFT-disarmed harness: the pre-ABFT engine, where gray-zone
    /// flips stay silent — the regime the `SilentCorruption` oracle and
    /// minimizer tests must be validated in.
    fn disarmed_harness(tag: &str, ranks: usize, steps: usize) -> ChaosHarness {
        let mut sys = cpc_md::builder::water_box(2, 3.1);
        cpc_md::minimize::minimize(&mut sys, EnergyModel::Classic, 40);
        sys.assign_velocities(150.0, 3);
        let cfg = MdConfig {
            steps,
            ..MdConfig::paper_protocol(
                EnergyModel::Classic,
                Middleware::Mpi,
                ClusterConfig::uni(ranks, NetworkKind::ScoreGigE),
            )
        };
        let dir = std::env::temp_dir().join(format!("cpc-chaos-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ChaosHarness::with_options(
            sys,
            cfg,
            dir,
            RecoveryConfig::default(),
            AbftConfig::default(),
        )
        .unwrap()
    }

    /// The planted bug every minimizer test uses: a gray-zone SDC flip
    /// (mid-mantissa, far above the benign bound, invisible to the
    /// watchdog) buried in a pile of harmless noise events.
    fn planted_plan(h: &ChaosHarness) -> FaultPlan {
        let wall = h.golden_wall();
        FaultPlan::none()
            .with_loss(0.05)
            .with_straggler(0, 1.5)
            .with_degradation(LinkDegradation::global(0.0, 0.5 * wall, 0.1, 2.0))
            .with_sdc(SdcFault {
                step: 2,
                target: SdcTarget::Positions,
                atom: 3,
                axis: 1,
                bit: 40,
            })
    }

    /// A compute-dominated workload for the mitigation tests: the
    /// quick water box above is comm-bound, so a slow CPU hides behind
    /// the collective incasts and the ratio check gates itself off.
    /// The bigger box exposes the straggler to the decomposition.
    fn big_harness(tag: &str, recovery: RecoveryConfig) -> ChaosHarness {
        let mut sys = cpc_md::builder::water_box(3, 3.1);
        cpc_md::minimize::minimize(&mut sys, EnergyModel::Classic, 40);
        sys.assign_velocities(150.0, 3);
        let cfg = MdConfig {
            steps: 6,
            ..MdConfig::paper_protocol(
                EnergyModel::Classic,
                Middleware::Mpi,
                ClusterConfig::uni(4, NetworkKind::ScoreGigE),
            )
        };
        let dir = std::env::temp_dir().join(format!("cpc-chaos-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ChaosHarness::with_recovery(sys, cfg, dir, recovery).unwrap()
    }

    #[test]
    fn persistent_straggler_passes_mitigation_oracle_by_rebalancing() {
        let h = big_harness("mitigate", RecoveryConfig::default());
        let r = h.check(&FaultPlan::none().with_straggler(0, 2.0));
        assert!(r.passed(), "violations: {:?}", r.violations);
        assert!(r.rebalances >= 1, "the ladder re-cut the partition");
        assert_eq!(r.recoveries, 0, "no rollback for a pure straggler");
        assert_eq!(r.watchdog_trips, 0);
        assert_eq!(r.evictions, 0, "2x is rebalance territory, not eviction");
    }

    #[test]
    fn mitigation_oracle_fires_when_rebalancing_is_disabled() {
        let h = big_harness(
            "static",
            RecoveryConfig {
                rebalance: false,
                ..RecoveryConfig::default()
            },
        );
        let r = h.check(&FaultPlan::none().with_straggler(0, 2.0));
        assert!(
            r.violations
                .iter()
                .any(|v| matches!(v, Violation::StragglerMitigation { rollbacks: 0, .. })),
            "violations: {:?}",
            r.violations
        );
        assert_eq!(r.rebalances, 0);
    }

    #[test]
    fn clean_and_benign_plans_pass_every_oracle() {
        let h = harness("pass", 3, 4);
        let clean = h.check(&FaultPlan::none());
        assert!(clean.passed(), "violations: {:?}", clean.violations);
        assert_eq!(clean.max_deviation, 0.0, "nothing perturbed the physics");
        assert_eq!(clean.resume_deviation, 0.0, "resume is bit-identical");

        let benign = h.check(&FaultPlan::none().with_sdc(SdcFault {
            step: 2,
            target: SdcTarget::Positions,
            atom: 5,
            axis: 1,
            bit: 12,
        }));
        assert!(benign.passed(), "violations: {:?}", benign.violations);
        assert_eq!(benign.sdc_events, 1);
        assert!(benign.max_deviation <= BENIGN_SDC_TOLERANCE);
    }

    #[test]
    fn crash_plan_passes_within_recovery_tolerance() {
        let h = harness("crash", 3, 4);
        let plan = FaultPlan::none().with_crash(2, 0.5 * h.golden_wall());
        let r = h.check(&plan);
        assert!(r.passed(), "violations: {:?}", r.violations);
        assert_eq!(r.crashed, 1);
        assert!(r.recoveries >= 1);
        assert!(r.max_deviation <= CRASH_RECOVERY_TOLERANCE);
    }

    #[test]
    fn gray_zone_sdc_is_caught_as_silent_corruption() {
        // Disarmed: the pre-ABFT engine lets the gray flip through,
        // and the deviation oracle is the only thing that notices.
        let h = disarmed_harness("silent", 3, 4);
        let r = h.check(&planted_plan(&h));
        assert!(
            r.violations
                .iter()
                .any(|v| matches!(v, Violation::SilentCorruption { .. })),
            "violations: {:?}",
            r.violations
        );
        assert_eq!(r.abft_detections, 0, "disarmed harness reports none");
    }

    #[test]
    fn armed_harness_repairs_the_planted_gray_flip() {
        // The same planted schedule against the armed engine: the ABFT
        // layer catches the flip, repairs it in place, and every oracle
        // holds — the gray zone is closed.
        let h = harness("armed", 3, 4);
        let r = h.check(&planted_plan(&h));
        assert!(r.passed(), "violations: {:?}", r.violations);
        assert_eq!(r.sdc_events, 1);
        assert!(r.abft_detections >= 1, "the flip was caught");
        assert!(r.abft_recomputes >= 1, "and repaired");
        assert_eq!(r.watchdog_trips, 0, "before the watchdog saw it");
    }

    #[test]
    fn minimizer_shrinks_planted_bug_to_single_event() {
        let h = disarmed_harness("ddmin", 3, 4);
        let plan = planted_plan(&h);
        assert_eq!(flatten(&plan).len(), 4, "noise plus the planted flip");
        let repro = h.minimize_to_reproducer(&plan, 0, 0);
        assert_eq!(repro.events, 1, "only the gray-zone flip survives");
        assert_eq!(repro.plan.sdc.len(), 1);
        assert!(repro.plan.crashes.is_empty());
        assert!(repro.plan.loss == 0.0);
        assert!(!repro.violations.is_empty(), "the reproducer still fails");
        // The artifact replays: parse it back and re-provoke the same
        // violations.
        let parsed = Reproducer::from_json(&repro.to_json()).unwrap();
        assert_eq!(parsed, repro);
        let replay = h.check(&parsed.plan);
        assert_eq!(replay.violations, repro.violations);
    }

    #[test]
    fn ddmin_is_deterministic_and_flatten_roundtrips() {
        let h = harness("roundtrip", 3, 4);
        let plan = planted_plan(&h);
        assert_eq!(rebuild(&flatten(&plan), &plan), plan);
        let a = minimize(&plan, |p| !p.sdc.is_empty());
        let b = minimize(&plan, |p| !p.sdc.is_empty());
        assert_eq!(a, b);
        assert_eq!(flatten(&a.0).len(), 1, "predicate needs only the flip");
        let _ = h; // keep the fixture alive for golden-run scratch
    }

    #[test]
    fn severity_halving_softens_scalar_events() {
        // A predicate that fails for any plan with loss >= 0.01: ddmin
        // cannot drop the loss event, but halving shrinks it toward the
        // threshold.
        let plan = FaultPlan::none().with_loss(0.12).with_straggler(0, 2.0);
        let (min_plan, _) = minimize(&plan, |p| p.loss >= 0.01);
        assert!(min_plan.stragglers.is_empty(), "straggler noise dropped");
        assert!(
            min_plan.loss >= 0.01 && min_plan.loss < 0.12,
            "loss halved toward the threshold: {}",
            min_plan.loss
        );
    }

    #[test]
    fn verdicts_survive_a_json_roundtrip() {
        let report = ScheduleReport {
            violations: vec![
                Violation::SilentCorruption {
                    max_deviation: 0.25,
                    tolerance: 1e-7,
                },
                Violation::NonTermination {
                    stage: "full".into(),
                    error: "stalled".into(),
                },
                Violation::Incomplete {
                    stage: "resumed".into(),
                    diverged: true,
                    restore_failure: Some("all corrupt".into()),
                },
                Violation::UnplannedCrash {
                    stage: "full".into(),
                    ranks: vec![1, 3],
                },
                Violation::StragglerMitigation {
                    rollbacks: 0,
                    adaptive_overhead: 0.41,
                    static_overhead: 0.55,
                    ratio_bound: ADAPTIVE_OVERHEAD_RATIO,
                },
                Violation::UndetectedSdc {
                    fired: 2,
                    detected: 0,
                },
            ],
            events: 4,
            crashed: 1,
            recoveries: 2,
            watchdog_trips: 1,
            rebalances: 1,
            evictions: 1,
            sdc_events: 1,
            abft_detections: 1,
            abft_recomputes: 1,
            max_deviation: 0.25,
            resume_deviation: 0.0,
            wall_time: 1.5,
        };
        let json = serde_json::to_string(&report).unwrap();
        let parsed: ScheduleReport = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, report);
    }

    fn clean_ledger() -> ServiceLedger {
        ServiceLedger {
            total_cells: 48,
            completed: 48,
            executed: 48,
            journal_preseeded: 0,
            incarnations: 1,
            artifact_digest: Some(0xfeed),
            reference_digest: Some(0xfeed),
            ..ServiceLedger::default()
        }
    }

    #[test]
    fn service_oracles_pass_a_clean_ledger_and_licensed_rework() {
        assert!(check_service_ledger(&clean_ledger()).is_empty());
        // A kill-resume run: one execution lost mid-cell, two results
        // torn away — three licensed re-executions, rest preseeded.
        let ledger = ServiceLedger {
            executed: 51,
            lost_executions: 1,
            destroyed_results: 2,
            journal_preseeded: 30,
            cache_hits: 2,
            reclaimed_leases: 1,
            incarnations: 3,
            kills: 2,
            stale_presented: 1,
            stale_rejected: 1,
            ..clean_ledger()
        };
        assert!(check_service_ledger(&ledger).is_empty());
    }

    #[test]
    fn service_oracles_catch_each_violation_class() {
        let lost = ServiceLedger {
            completed: 47,
            ..clean_ledger()
        };
        assert!(matches!(
            check_service_ledger(&lost)[..],
            [ServiceViolation::LostCell { completed: 47, .. }]
        ));
        let abandoned = ServiceLedger {
            completed: 47,
            abandoned: 1,
            ..clean_ledger()
        };
        assert!(
            matches!(
                check_service_ledger(&abandoned)[..],
                [ServiceViolation::LostCell { abandoned: 1, .. }]
            ),
            "dead-letters are lost cells under the sampled space"
        );
        let dup = ServiceLedger {
            executed: 49,
            ..clean_ledger()
        };
        assert!(matches!(
            check_service_ledger(&dup)[..],
            [ServiceViolation::DuplicateExecution {
                executed: 49,
                allowance: 48
            }]
        ));
        let mismatch = ServiceLedger {
            artifact_digest: Some(0xdead),
            ..clean_ledger()
        };
        assert!(matches!(
            check_service_ledger(&mismatch)[..],
            [ServiceViolation::ArtifactMismatch { .. }]
        ));
        let stale = ServiceLedger {
            stale_presented: 2,
            stale_rejected: 1,
            ..clean_ledger()
        };
        assert!(matches!(
            check_service_ledger(&stale)[..],
            [ServiceViolation::StaleLeaseAccepted {
                presented: 2,
                rejected: 1
            }]
        ));
    }

    fn clean_sched_ledger() -> SchedLedger {
        SchedLedger {
            total_cells: 16,
            completed: 16,
            executed: 16,
            threads: 4,
            pool_tasks: 16,
            journal_lines: 16,
            pool_reusable: true,
            artifact_digest: Some(0xfeed),
            reference_digest: Some(0xfeed),
            thread_digests: vec![
                ThreadDigest {
                    threads: 1,
                    digest: Some(0xfeed),
                },
                ThreadDigest {
                    threads: 8,
                    digest: Some(0xfeed),
                },
            ],
            ..SchedLedger::default()
        }
    }

    #[test]
    fn sched_oracles_pass_a_clean_ledger_and_recovered_panics() {
        assert!(check_sched_ledger(&clean_sched_ledger()).is_empty());
        // A schedule whose injected panic was caught, its lease
        // reclaimed, the cell re-executed: no violation.
        let ledger = SchedLedger {
            panics_injected: 1,
            panics_caught: 1,
            panic_reclaimed: 3,
            steals: 12,
            pauses_taken: 2,
            stale_presented: 1,
            stale_rejected: 1,
            ..clean_sched_ledger()
        };
        assert!(check_sched_ledger(&ledger).is_empty());
    }

    #[test]
    fn sched_oracles_catch_each_violation_class() {
        let lost = SchedLedger {
            completed: 15,
            journal_lines: 15,
            ..clean_sched_ledger()
        };
        let got = check_sched_ledger(&lost);
        assert!(got
            .iter()
            .any(|v| matches!(v, SchedViolation::LostTask { completed: 15, .. })));
        assert!(got
            .iter()
            .any(|v| matches!(v, SchedViolation::DoubleCommit { .. })));

        let doubled = SchedLedger {
            journal_lines: 17,
            ..clean_sched_ledger()
        };
        assert!(matches!(
            check_sched_ledger(&doubled)[..],
            [SchedViolation::DoubleCommit {
                journal_lines: 17,
                total: 16
            }]
        ));
        let rerun = SchedLedger {
            executed: 17,
            ..clean_sched_ledger()
        };
        assert!(matches!(
            check_sched_ledger(&rerun)[..],
            [SchedViolation::DuplicateExecution {
                executed: 17,
                allowance: 16
            }]
        ));
        let stalled = SchedLedger {
            stalled: true,
            ..clean_sched_ledger()
        };
        assert!(matches!(
            check_sched_ledger(&stalled)[..],
            [SchedViolation::Deadlocked { .. }]
        ));
        let diverged = SchedLedger {
            thread_digests: vec![ThreadDigest {
                threads: 8,
                digest: Some(0xdead),
            }],
            ..clean_sched_ledger()
        };
        assert!(matches!(
            check_sched_ledger(&diverged)[..],
            [SchedViolation::ThreadCountMismatch { threads: 8, .. }]
        ));
        let escaped = SchedLedger {
            panics_injected: 1,
            ..clean_sched_ledger()
        };
        assert!(matches!(
            check_sched_ledger(&escaped)[..],
            [SchedViolation::PanicNotContained {
                injected: 1,
                caught: 0,
                ..
            }]
        ));
        let unreclaimed = SchedLedger {
            panics_injected: 1,
            panics_caught: 1,
            panic_reclaimed: 0,
            ..clean_sched_ledger()
        };
        assert!(matches!(
            check_sched_ledger(&unreclaimed)[..],
            [SchedViolation::PanicNotContained { reclaimed: 0, .. }]
        ));
        let poisoned = SchedLedger {
            pool_reusable: false,
            ..clean_sched_ledger()
        };
        assert!(matches!(
            check_sched_ledger(&poisoned)[..],
            [SchedViolation::PoolPoisoned]
        ));
        let stale = SchedLedger {
            stale_presented: 1,
            ..clean_sched_ledger()
        };
        assert!(matches!(
            check_sched_ledger(&stale)[..],
            [SchedViolation::StaleLeaseAccepted {
                presented: 1,
                rejected: 0
            }]
        ));
        // An unreadable chaos artifact violates even when the
        // reference is also unreadable.
        let unreadable = SchedLedger {
            artifact_digest: None,
            reference_digest: None,
            thread_digests: Vec::new(),
            ..clean_sched_ledger()
        };
        assert!(matches!(
            check_sched_ledger(&unreadable)[..],
            [SchedViolation::ArtifactMismatch {
                artifact: None,
                reference: None
            }]
        ));
    }

    #[test]
    fn unreadable_artifacts_never_compare_byte_identical() {
        // Regression: artifact_digest used to map any read error to
        // digest 0, so two *missing* artifacts compared equal and the
        // byte-identity oracle passed vacuously. `None` must violate —
        // on either side, and especially when both are `None`.
        for (artifact, reference) in [
            (None, Some(0xfeed)),
            (Some(0xfeed), None),
            (None, None), // both unreadable: the old digest-0 trap
        ] {
            let ledger = ServiceLedger {
                artifact_digest: artifact,
                reference_digest: reference,
                ..clean_ledger()
            };
            assert!(
                matches!(
                    check_service_ledger(&ledger)[..],
                    [ServiceViolation::ArtifactMismatch { .. }]
                ),
                "artifact {artifact:?} vs reference {reference:?} must violate"
            );
        }
        let v = ServiceViolation::ArtifactMismatch {
            artifact: None,
            reference: Some(0xfeed),
        };
        assert!(v.to_string().contains("<unreadable>"));
    }

    fn clean_gateway_ledger() -> GatewayLedger {
        GatewayLedger {
            total_cells: 6,
            completed: 6,
            executed: 6,
            conns_opened: 9,
            conns_closed: 9,
            requests: 3,
            rejected: 4,
            shed: 2,
            incarnations: 1,
            artifact_digest: Some(0xfeed),
            reference_digest: Some(0xfeed),
            ..GatewayLedger::default()
        }
    }

    #[test]
    fn gateway_oracles_pass_clean_and_licensed_kill_resume_ledgers() {
        assert!(check_gateway_ledger(&clean_gateway_ledger()).is_empty());
        // A kill-resume run: one execution lost with the process, one
        // licensed re-execution, a second incarnation.
        let killed = GatewayLedger {
            executed: 7,
            lost_executions: 1,
            kills: 1,
            incarnations: 2,
            ..clean_gateway_ledger()
        };
        assert!(check_gateway_ledger(&killed).is_empty());
    }

    #[test]
    fn gateway_oracles_catch_each_violation_class() {
        let panicked = GatewayLedger {
            panics: 1,
            ..clean_gateway_ledger()
        };
        assert!(matches!(
            check_gateway_ledger(&panicked)[..],
            [GatewayViolation::Panic { count: 1 }]
        ));
        let leak = GatewayLedger {
            conns_closed: 8,
            ..clean_gateway_ledger()
        };
        assert!(matches!(
            check_gateway_ledger(&leak)[..],
            [GatewayViolation::FdLeak {
                opened: 9,
                closed: 8
            }]
        ));
        let overrun = GatewayLedger {
            deadline_overruns: 2,
            ..clean_gateway_ledger()
        };
        assert!(matches!(
            check_gateway_ledger(&overrun)[..],
            [GatewayViolation::DeadlineOverrun { count: 2 }]
        ));
        let lost = GatewayLedger {
            completed: 5,
            ..clean_gateway_ledger()
        };
        assert!(matches!(
            check_gateway_ledger(&lost)[..],
            [GatewayViolation::LostCell { completed: 5, .. }]
        ));
        let dup = GatewayLedger {
            executed: 7,
            ..clean_gateway_ledger()
        };
        assert!(matches!(
            check_gateway_ledger(&dup)[..],
            [GatewayViolation::DuplicateExecution {
                executed: 7,
                allowance: 6
            }]
        ));
        for artifact in [Some(0xdead), None] {
            let mismatch = GatewayLedger {
                artifact_digest: artifact,
                ..clean_gateway_ledger()
            };
            assert!(matches!(
                check_gateway_ledger(&mismatch)[..],
                [GatewayViolation::ArtifactMismatch { .. }]
            ));
        }
    }

    #[test]
    fn gateway_ledger_and_violations_roundtrip_json() {
        let ledger = GatewayLedger {
            kills: 1,
            incarnations: 2,
            lost_executions: 1,
            executed: 7,
            ..clean_gateway_ledger()
        };
        let parsed: GatewayLedger =
            serde_json::from_str(&serde_json::to_string(&ledger).unwrap()).unwrap();
        assert_eq!(parsed, ledger);
        let v = vec![
            GatewayViolation::FdLeak {
                opened: 2,
                closed: 1,
            },
            GatewayViolation::ArtifactMismatch {
                artifact: None,
                reference: Some(2),
            },
        ];
        let parsed: Vec<GatewayViolation> =
            serde_json::from_str(&serde_json::to_string(&v).unwrap()).unwrap();
        assert_eq!(parsed, v);
        assert!(v[0].to_string().contains("fd leak"));
    }

    #[test]
    fn service_ledger_and_violations_roundtrip_json() {
        let ledger = ServiceLedger {
            duplicate_results: 1,
            dropped_lines: 3,
            cache_corruption_caught: 1,
            ..clean_ledger()
        };
        let parsed: ServiceLedger =
            serde_json::from_str(&serde_json::to_string(&ledger).unwrap()).unwrap();
        assert_eq!(parsed, ledger);
        let v = vec![
            ServiceViolation::LostCell {
                completed: 1,
                abandoned: 0,
                total: 2,
            },
            ServiceViolation::ArtifactMismatch {
                artifact: Some(1),
                reference: Some(2),
            },
        ];
        let parsed: Vec<ServiceViolation> =
            serde_json::from_str(&serde_json::to_string(&v).unwrap()).unwrap();
        assert_eq!(parsed, v);
        assert!(v[0].to_string().contains("lost cell"));
    }

    /// A cross ledger whose every sub-book and interaction bound
    /// holds: the fixture the cross-oracle tests perturb.
    fn clean_cross_ledger() -> CrossLedger {
        let digest = Some(0xABCD_u64);
        CrossLedger {
            md: None,
            service: ServiceLedger {
                total_cells: 4,
                completed: 4,
                executed: 4,
                incarnations: 1,
                artifact_digest: digest,
                reference_digest: digest,
                ..ServiceLedger::default()
            },
            gateway: GatewayLedger {
                total_cells: 4,
                completed: 4,
                executed: 4,
                conns_opened: 5,
                conns_closed: 5,
                requests: 5,
                incarnations: 1,
                artifact_digest: digest,
                reference_digest: digest,
                ..GatewayLedger::default()
            },
            disk: DiskLedger {
                total_cells: 4,
                completed: 4,
                executed: 4,
                incarnations: 1,
                artifact_digest: digest,
                reference_digest: digest,
                ..DiskLedger::default()
            },
            sched: SchedLedger {
                total_cells: 4,
                completed: 4,
                executed: 4,
                threads: 2,
                journal_lines: 4,
                pool_reusable: true,
                artifact_digest: digest,
                reference_digest: digest,
                ..SchedLedger::default()
            },
            layer_events: [1, 1, 1, 1, 1],
            executed_true: 4,
            exec_allowance: 4,
            artifact_digest: digest,
            reference_digest: digest,
        }
    }

    #[test]
    fn clean_cross_ledger_passes_every_oracle() {
        let violations = check_cross_ledger(&clean_cross_ledger());
        assert!(violations.is_empty(), "clean ledger convicted: {violations:?}");
    }

    #[test]
    fn acked_then_lost_under_disk_and_kill_fires_both_oracles() {
        let mut ledger = clean_cross_ledger();
        ledger.disk.acked_then_lost = 1;
        ledger.service.kills = 1;
        let violations = check_cross_ledger(&ledger);
        assert!(violations
            .iter()
            .any(|v| matches!(v, CrossViolation::Disk { violation: DiskViolation::AckedThenLost { .. } })));
        assert!(
            violations
                .iter()
                .any(|v| matches!(v, CrossViolation::AckedThenLostAcrossLayers { lost: 1, kills: 1, .. })),
            "the interaction oracle must attribute the loss: {violations:?}"
        );
        // Without a kill in the schedule, only the disk book convicts.
        ledger.service.kills = 0;
        let violations = check_cross_ledger(&ledger);
        assert!(!violations
            .iter()
            .any(|v| matches!(v, CrossViolation::AckedThenLostAcrossLayers { .. })));
    }

    #[test]
    fn cross_execution_bound_and_artifact_identity_convict() {
        let mut ledger = clean_cross_ledger();
        ledger.executed_true = 9;
        ledger.artifact_digest = Some(1);
        let violations = check_cross_ledger(&ledger);
        assert!(violations.iter().any(|v| matches!(
            v,
            CrossViolation::DuplicateExecutionAcrossLayers { executed: 9, allowance: 4 }
        )));
        assert!(violations
            .iter()
            .any(|v| matches!(v, CrossViolation::DrainedArtifactDiverged { .. })));
        // An unreadable artifact must never compare identical.
        ledger.artifact_digest = None;
        ledger.reference_digest = None;
        assert!(check_cross_ledger(&ledger)
            .iter()
            .any(|v| matches!(v, CrossViolation::DrainedArtifactDiverged { .. })));
    }

    #[test]
    fn sched_duplicate_bound_is_replaced_by_the_composed_license() {
        // A kill licenses one re-execution: the single-layer sched
        // bound (executed <= total) would falsely convict, the
        // composed license must not.
        let mut ledger = clean_cross_ledger();
        ledger.sched.executed = 5;
        ledger.executed_true = 5;
        ledger.exec_allowance = 5;
        ledger.service.kills = 1;
        let violations = check_cross_ledger(&ledger);
        assert!(
            violations.is_empty(),
            "licensed re-execution convicted: {violations:?}"
        );
        // Every other sched oracle still lifts into the union.
        ledger.sched.journal_lines = 6;
        assert!(check_cross_ledger(&ledger).iter().any(|v| matches!(
            v,
            CrossViolation::Sched {
                violation: SchedViolation::DoubleCommit { .. }
            }
        )));
    }

    #[test]
    fn composed_minimizer_drops_layers_then_events() {
        use cpc_cluster::{ComposedPlan, ServiceFault, TransportFault};
        use cpc_pool::SchedFault;
        use cpc_vfs::DiskFault;

        let mut plan = ComposedPlan::quiet(4);
        plan.md.loss = 0.05;
        plan.service.faults = vec![ServiceFault::StaleLease { at_lease: 1 }];
        plan.transport.faults = vec![TransportFault::MalformedRequest { variant: 0 }];
        plan.disk.faults = vec![
            DiskFault::ShortWrite {
                at: 1,
                keep_frac: 0.5,
            },
            DiskFault::EioWrite { at: 3 },
            DiskFault::RenameFail { at: 5 },
        ];
        plan.sched.faults = vec![SchedFault::TaskPanic { at_start: 2 }];

        // The "bug": any schedule whose *effective* disk layer still
        // contains the EioWrite fails.
        let fails = |p: &ComposedPlan| {
            p.effective_disk()
                .faults
                .iter()
                .any(|f| matches!(f, DiskFault::EioWrite { .. }))
        };
        let (minimized, probes) = minimize_composed(&plan, fails);
        assert!(probes >= 4, "layer drops alone need 4+ probes");
        assert_eq!(
            minimized.armed_layers(),
            vec![Layer::Disk],
            "every other layer must be masked out"
        );
        assert_eq!(
            minimized.disk.faults,
            vec![DiskFault::EioWrite { at: 3 }],
            "ddmin must isolate the one deciding event"
        );
        assert_eq!(minimized.events(), 1);
        // Masking is a projection: the untouched layers' schedules
        // survive in the reproducer for forensics.
        assert_eq!(minimized.service.faults, plan.service.faults);
        assert_eq!(minimized.md.loss, plan.md.loss);
    }

    #[test]
    fn cross_reproducer_round_trips_and_violations_render() {
        use cpc_cluster::ComposedPlan;
        let repro = CrossReproducer {
            seed: 7,
            index: 3,
            cells: 6,
            ranks: 4,
            nodes: 4,
            steps: 8,
            abft: true,
            expect_fail: false,
            events: 2,
            probes: 11,
            violations: vec![],
            plan: ComposedPlan::quiet(2),
        };
        let back = CrossReproducer::from_json(&repro.to_json()).unwrap();
        assert_eq!(back, repro);

        let v = CrossViolation::DrainedArtifactDiverged {
            artifact: Some(1),
            reference: Some(2),
        };
        assert!(v.to_string().contains("drained artifact"));
        let lifted = CrossViolation::Disk {
            violation: DiskViolation::AckedThenLost { lost: 2 },
        };
        assert!(lifted.to_string().starts_with("disk: "));
    }
}
