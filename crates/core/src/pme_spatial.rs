//! Spatially decomposed parallel PME — the road *not* taken by
//! paper-era CHARMM, implemented as an ablation.
//!
//! Where the replicated-data implementation ([`crate::pme_par`]) spreads
//! every rank's atom block onto a full mesh copy and pays two full-mesh
//! exchanges per step (global charge sum + convolution-mesh allgather),
//! this version assigns each atom to the owner of its spline-base
//! plane. Spreading and interpolation then touch only the local slab
//! plus an `order - 1` plane halo, and the full-mesh exchanges
//! disappear:
//!
//! 1. spread my (spatially local) atoms into slab + upper halo,
//! 2. send halo planes to their owners (tens of kilobytes, not
//!    megabytes),
//! 3. slab FFT exactly as before (2D, transpose, 1D, convolution,
//!    inverse),
//! 4. fetch the upper halo of the convolution mesh,
//! 5. interpolate forces for my atoms; close with the usual combine.
//!
//! Comparing the two quantifies how much of the paper's PME
//! scalability wall is the *implementation*, not the algorithm.

use crate::decomp::{block_range, PmeDecomp};
use cpc_cluster::{CostModel, MsgClass, OpShape, Phase};
use cpc_fft::plan::flops_estimate;
use cpc_fft::{transform_axis, Axis, Complex64, Dims3, Direction, FftPlan};
use cpc_md::pme::{bspline_moduli, compute_splines, influence_element, PmeParams};
use cpc_md::special::erf;
use cpc_md::units::COULOMB;
use cpc_md::{System, Vec3};
use cpc_mpi::{CombineAlgo, Comm};
use std::f64::consts::PI;

use crate::pme_par::PmeParallelResult;

/// Tag base for the halo exchanges (user tag space).
const HALO_TAG: u64 = 0x7A10_0000;

/// Spatially decomposed PME state.
pub struct SpatialPme {
    params: PmeParams,
    decomp: PmeDecomp,
    plan_x: FftPlan,
    plan_y: FftPlan,
    plan_z: FftPlan,
    bx: Vec<f64>,
    by: Vec<f64>,
    bz: Vec<f64>,
    force_combine: CombineAlgo,
}

impl SpatialPme {
    /// Builds state for `p` ranks.
    pub fn new(params: PmeParams, p: usize) -> Self {
        let g = params.grid;
        SpatialPme {
            params,
            decomp: PmeDecomp::new(g.nx, g.ny, g.nz, p),
            plan_x: FftPlan::new(g.nx),
            plan_y: FftPlan::new(g.ny),
            plan_z: FftPlan::new(g.nz),
            bx: bspline_moduli(g.nx, params.order),
            by: bspline_moduli(g.ny, params.order),
            bz: bspline_moduli(g.nz, params.order),
            force_combine: CombineAlgo::Flat,
        }
    }

    /// Overrides the closing combine algorithm.
    pub fn with_force_combine(mut self, algo: CombineAlgo) -> Self {
        self.force_combine = algo;
        self
    }

    /// Parallel k-space evaluation with spatial atom assignment.
    /// Produces the same physics as [`crate::pme_par::ParallelPme`].
    pub fn energy_forces(
        &self,
        comm: &mut Comm<'_>,
        system: &System,
        cost: &CostModel,
    ) -> PmeParallelResult {
        comm.ctx().set_phase(Phase::Pme);
        let p = comm.size();
        let rank = comm.rank();
        let g = self.params.grid;
        let order = self.params.order;
        let (ny, nz, nx) = (g.ny, g.nz, g.nx);
        let halo = order - 1;
        let plane = ny * nz;
        let topo = &system.topology;

        let my_planes = self.decomp.planes(rank);
        let x0 = my_planes.start;
        let n_planes = my_planes.len();
        let my_cols = self.decomp.cols(rank);
        let c0 = my_cols.start;
        let n_cols = my_cols.len();

        // --- Spatial atom assignment: owner of the spline-base plane.
        let splines = compute_splines(&system.pbox, &system.positions, g, order);
        let my_atoms: Vec<usize> = (0..system.n_atoms())
            .filter(|&i| {
                let gx0 = splines[i].base[0].rem_euclid(nx as i64) as usize;
                self.decomp.plane_owner(gx0) == rank
            })
            .collect();

        // --- Spread into slab + upper halo (base plane is the lowest
        // plane an atom touches, so support only extends upward).
        let mut buf = vec![Complex64::ZERO; (n_planes + halo) * plane];
        let mut spread_points = 0usize;
        for &i in &my_atoms {
            let q = topo.atoms[i].charge;
            if q == 0.0 {
                continue;
            }
            let sp = &splines[i];
            let gx0 = sp.base[0].rem_euclid(nx as i64) as usize;
            for tx in 0..order {
                // Local plane offset relative to the slab start; the
                // support never wraps relative to gx0.
                let local_x = (gx0 + nx - x0) % nx + tx;
                debug_assert!(local_x < n_planes + halo);
                let qx = q * sp.w[0][tx];
                for ty in 0..order {
                    let gy = (sp.base[1] + ty as i64).rem_euclid(ny as i64) as usize;
                    let qxy = qx * sp.w[1][ty];
                    let row = (local_x * ny + gy) * nz;
                    for tz in 0..order {
                        let gz = (sp.base[2] + tz as i64).rem_euclid(nz as i64) as usize;
                        buf[row + gz].re += qxy * sp.w[2][tz];
                        spread_points += 1;
                    }
                }
            }
        }
        comm.ctx()
            .charge_compute(spread_points as f64 * cost.spread_point);

        // --- Halo reduction: plane x1 + k belongs to its owner; send
        // and accumulate (kilobytes instead of the full mesh).
        let mut slab: Vec<Complex64> = buf[..n_planes * plane].to_vec();
        if p > 1 {
            for k in 0..halo {
                let gx = (x0 + n_planes + k) % nx;
                let owner = self.decomp.plane_owner(gx);
                let payload: Vec<f64> = buf[(n_planes + k) * plane..(n_planes + k + 1) * plane]
                    .iter()
                    .map(|v| v.re)
                    .collect();
                if owner == rank {
                    // Tiny slab wrapped onto itself: accumulate locally.
                    let off = (gx - x0) * plane;
                    for (s, v) in slab[off..off + plane].iter_mut().zip(&payload) {
                        s.re += v;
                    }
                    continue;
                }
                comm.ctx().send(
                    owner,
                    HALO_TAG + k as u64,
                    payload,
                    MsgClass::Payload,
                    OpShape::new(1, p),
                );
            }
            // Receive contributions for my planes from every rank whose
            // halo reaches them: the (unique) owners of the `halo`
            // planes preceding my slab.
            let senders: std::collections::BTreeSet<usize> = (0..halo)
                .map(|k| self.decomp.plane_owner((x0 + nx - 1 - k) % nx))
                .filter(|&sdr| sdr != rank)
                .collect();
            for sender in senders {
                // Which of the sender's halo slots land in my slab?
                let sender_planes = self.decomp.planes(sender);
                for kk in 0..halo {
                    let gx = (sender_planes.end + kk) % nx;
                    if my_planes.contains(&gx) {
                        let msg = comm.ctx().recv(sender, HALO_TAG + kk as u64);
                        let off = (gx - x0) * plane;
                        for (s, v) in slab[off..off + plane].iter_mut().zip(&msg.data) {
                            s.re += v;
                        }
                    }
                }
            }
        } else {
            // p == 1: fold the wrap-around halo back into the slab.
            for k in 0..halo {
                let gx = (x0 + n_planes + k) % nx;
                let off = (gx - x0) * plane;
                for i in 0..plane {
                    let add = buf[(n_planes + k) * plane + i].re;
                    slab[off + i].re += add;
                }
            }
        }

        // --- Distributed FFT, identical to the replicated-data path.
        let fft2d_flops =
            n_planes as f64 * (ny as f64 * flops_estimate(nz) + nz as f64 * flops_estimate(ny));
        if n_planes > 0 {
            let dims = Dims3::new(n_planes, ny, nz);
            transform_axis(&mut slab, dims, Axis::Z, &self.plan_z, Direction::Forward);
            transform_axis(&mut slab, dims, Axis::Y, &self.plan_y, Direction::Forward);
        }
        comm.ctx().charge_compute(fft2d_flops * cost.fft_flop);

        let mut cols = vec![Complex64::ZERO; n_cols * nx];
        crate::pme_par::transpose_forward_impl(&self.decomp, comm, &slab, &mut cols, cost, false);

        let mut recip_partial = 0.0;
        {
            let mut line = vec![Complex64::ZERO; nx];
            for c_local in 0..n_cols {
                let c = c0 + c_local;
                let (my_, mz_) = (c / nz, c % nz);
                let seg = &mut cols[c_local * nx..(c_local + 1) * nx];
                self.plan_x.execute(seg, &mut line, Direction::Forward);
                for (mx, v) in line.iter_mut().enumerate() {
                    let w = influence_element(
                        g,
                        &system.pbox,
                        self.params.beta,
                        &self.bx,
                        &self.by,
                        &self.bz,
                        mx,
                        my_,
                        mz_,
                    );
                    recip_partial += 0.5 * w * v.norm_sqr();
                    *v = v.scale(w);
                }
                self.plan_x.execute(&line.clone(), seg, Direction::Inverse);
            }
        }
        comm.ctx().charge_compute(
            n_cols as f64 * 2.0 * flops_estimate(nx) * cost.fft_flop
                + (n_cols * nx) as f64 * cost.conv_point,
        );

        let mut slab_phi = vec![Complex64::ZERO; n_planes * plane];
        crate::pme_par::transpose_backward_impl(
            &self.decomp,
            comm,
            &cols,
            &mut slab_phi,
            cost,
            false,
        );
        if n_planes > 0 {
            let dims = Dims3::new(n_planes, ny, nz);
            transform_axis(
                &mut slab_phi,
                dims,
                Axis::Y,
                &self.plan_y,
                Direction::Inverse,
            );
            transform_axis(
                &mut slab_phi,
                dims,
                Axis::Z,
                &self.plan_z,
                Direction::Inverse,
            );
        }
        comm.ctx().charge_compute(fft2d_flops * cost.fft_flop);

        // --- Fetch the upper phi halo (reverse of the charge halo):
        // I need planes x1..x1+halo from their owners; I provide my
        // first `halo` planes to whoever needs them.
        let mut phi_ext = vec![0.0f64; (n_planes + halo) * plane];
        for (i, v) in slab_phi.iter().enumerate() {
            phi_ext[i] = v.re;
        }
        if p > 1 {
            // Send my planes that appear in some (unique) predecessor's
            // halo window.
            let requesters: std::collections::BTreeSet<usize> = (0..halo)
                .map(|k| self.decomp.plane_owner((x0 + nx - 1 - k) % nx))
                .filter(|&r| r != rank)
                .collect();
            for requester in requesters {
                let req_planes = self.decomp.planes(requester);
                for kk in 0..halo {
                    let gx = (req_planes.end + kk) % nx;
                    if my_planes.contains(&gx) {
                        let payload: Vec<f64> = slab_phi[(gx - x0) * plane..(gx - x0 + 1) * plane]
                            .iter()
                            .map(|v| v.re)
                            .collect();
                        comm.ctx().send(
                            requester,
                            HALO_TAG + 0x100 + kk as u64,
                            payload,
                            MsgClass::Payload,
                            OpShape::new(1, p),
                        );
                    }
                }
            }
            for k in 0..halo {
                let gx = (x0 + n_planes + k) % nx;
                let owner = self.decomp.plane_owner(gx);
                if owner == rank {
                    // Wrapped onto my own slab.
                    let off = (gx - x0) * plane;
                    for i in 0..plane {
                        phi_ext[(n_planes + k) * plane + i] = phi_ext[off + i];
                    }
                    continue;
                }
                let msg = comm.ctx().recv(owner, HALO_TAG + 0x100 + k as u64);
                phi_ext[(n_planes + k) * plane..(n_planes + k + 1) * plane]
                    .copy_from_slice(&msg.data);
            }
        } else {
            for k in 0..halo {
                let gx = (x0 + n_planes + k) % nx;
                let off = (gx - x0) * plane;
                for i in 0..plane {
                    phi_ext[(n_planes + k) * plane + i] = phi_ext[off + i];
                }
            }
        }

        // --- Interpolate forces for my (spatial) atoms.
        let n = system.n_atoms();
        let mut forces = vec![Vec3::ZERO; n];
        let l = system.pbox.lengths;
        let du = [nx as f64 / l.x, ny as f64 / l.y, nz as f64 / l.z];
        let mut interp_points = 0usize;
        for &i in &my_atoms {
            let q = topo.atoms[i].charge;
            if q == 0.0 {
                continue;
            }
            let sp = &splines[i];
            let gx0 = sp.base[0].rem_euclid(nx as i64) as usize;
            let mut grad = Vec3::ZERO;
            for tx in 0..order {
                let local_x = (gx0 + nx - x0) % nx + tx;
                for ty in 0..order {
                    let gy = (sp.base[1] + ty as i64).rem_euclid(ny as i64) as usize;
                    let row = (local_x * ny + gy) * nz;
                    for tz in 0..order {
                        let gz = (sp.base[2] + tz as i64).rem_euclid(nz as i64) as usize;
                        let ph = phi_ext[row + gz];
                        grad.x += sp.dw[0][tx] * sp.w[1][ty] * sp.w[2][tz] * ph;
                        grad.y += sp.w[0][tx] * sp.dw[1][ty] * sp.w[2][tz] * ph;
                        grad.z += sp.w[0][tx] * sp.w[1][ty] * sp.dw[2][tz] * ph;
                        interp_points += 1;
                    }
                }
            }
            forces[i] -= Vec3::new(grad.x * du[0], grad.y * du[1], grad.z * du[2]) * q;
        }
        comm.ctx()
            .charge_compute(interp_points as f64 * cost.interp_point);

        // --- Exclusions (index blocks, as before) and self energy.
        let atom_block = block_range(n, p, rank);
        let beta = self.params.beta;
        let mut excl_partial = 0.0;
        let mut excl_count = 0usize;
        for i in atom_block {
            for &j in &topo.exclusions[i] {
                let j = j as usize;
                let qq = COULOMB * topo.atoms[i].charge * topo.atoms[j].charge;
                if qq == 0.0 {
                    continue;
                }
                let d = system
                    .pbox
                    .min_image(system.positions[i], system.positions[j]);
                let r2 = d.norm_sqr();
                let r = r2.sqrt();
                let br = beta * r;
                let ef = erf(br);
                excl_partial -= qq * ef / r;
                let de_dr = -qq * (2.0 * beta / PI.sqrt() * (-br * br).exp() / r - ef / r2);
                let fv = d * (-de_dr / r);
                forces[i] += fv;
                forces[j] -= fv;
                excl_count += 1;
            }
        }
        comm.ctx()
            .charge_compute(excl_count as f64 * cost.excl_pair);

        let self_partial = if rank == 0 {
            let q2: f64 = topo.atoms.iter().map(|a| a.charge * a.charge).sum();
            -COULOMB * beta / PI.sqrt() * q2
        } else {
            0.0
        };

        let mut out = Vec::with_capacity(3 * n + 3);
        for f in &forces {
            out.extend_from_slice(&[f.x, f.y, f.z]);
        }
        out.extend_from_slice(&[recip_partial, excl_partial, self_partial]);
        comm.allreduce_with(self.force_combine, &mut out);
        for (i, f) in forces.iter_mut().enumerate() {
            *f = Vec3::new(out[3 * i], out[3 * i + 1], out[3 * i + 2]);
        }
        PmeParallelResult {
            recip: out[3 * n],
            excluded: out[3 * n + 1],
            self_term: out[3 * n + 2],
            forces,
            abft: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpc_cluster::{run_cluster, ClusterConfig, NetworkKind, PIII_1GHZ};
    use cpc_md::builder::water_box;
    use cpc_mpi::Middleware;

    fn params() -> PmeParams {
        PmeParams {
            grid: Dims3::new(24, 24, 24),
            order: 4,
            beta: 0.34,
        }
    }

    #[test]
    fn spatial_pme_matches_replicated_data_physics() {
        let system = water_box(3, 3.1);
        let reference = {
            let sys = &system;
            let out = run_cluster(ClusterConfig::uni(1, NetworkKind::MyrinetGm), |ctx| {
                let mut comm = Comm::new(ctx, Middleware::Mpi);
                crate::pme_par::ParallelPme::new(params(), 1)
                    .energy_forces(&mut comm, sys, &PIII_1GHZ)
            });
            out.into_iter().next().unwrap().result
        };

        for p in [1usize, 2, 3, 4, 8] {
            let cfg = ClusterConfig::uni(p, NetworkKind::MyrinetGm);
            let sys = &system;
            let out = run_cluster(cfg, |ctx| {
                let mut comm = Comm::new(ctx, Middleware::Mpi);
                SpatialPme::new(params(), p).energy_forces(&mut comm, sys, &PIII_1GHZ)
            });
            for o in &out {
                assert!(
                    (o.result.recip - reference.recip).abs()
                        < 1e-7 * reference.recip.abs().max(1.0),
                    "p={p}: {} vs {}",
                    o.result.recip,
                    reference.recip
                );
                for (a, b) in o.result.forces.iter().zip(&reference.forces) {
                    assert!((*a - *b).norm() < 1e-7 * (1.0 + b.norm()), "p={p}");
                }
            }
        }
    }

    #[test]
    fn spatial_pme_moves_far_less_data_than_replicated() {
        let system = water_box(3, 3.1);
        let bytes_for = |spatial: bool| {
            let sys = &system;
            let cfg = ClusterConfig::uni(4, NetworkKind::TcpGigE);
            let out = run_cluster(cfg, |ctx| {
                let mut comm = Comm::new(ctx, Middleware::Mpi);
                if spatial {
                    SpatialPme::new(params(), 4).energy_forces(&mut comm, sys, &PIII_1GHZ);
                } else {
                    crate::pme_par::ParallelPme::new(params(), 4)
                        .energy_forces(&mut comm, sys, &PIII_1GHZ);
                }
            });
            out.iter().map(|o| o.stats.bytes_sent).sum::<u64>()
        };
        let replicated = bytes_for(false);
        let spatial = bytes_for(true);
        assert!(
            (spatial as f64) < 0.7 * replicated as f64,
            "spatial {spatial} vs replicated {replicated}"
        );
    }

    #[test]
    fn spatial_pme_is_faster_on_tcp_at_scale() {
        let system = water_box(3, 3.1);
        let time_for = |spatial: bool| {
            let sys = &system;
            let cfg = ClusterConfig::uni(8, NetworkKind::TcpGigE);
            let out = run_cluster(cfg, |ctx| {
                let mut comm = Comm::new(ctx, Middleware::Mpi);
                if spatial {
                    SpatialPme::new(params(), 8).energy_forces(&mut comm, sys, &PIII_1GHZ);
                } else {
                    crate::pme_par::ParallelPme::new(params(), 8)
                        .energy_forces(&mut comm, sys, &PIII_1GHZ);
                }
            });
            cpc_cluster::elapsed_time(&out)
        };
        let replicated = time_for(false);
        let spatial = time_for(true);
        assert!(
            spatial < replicated,
            "spatial {spatial} vs replicated {replicated}"
        );
    }
}
