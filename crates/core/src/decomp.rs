//! Work decomposition for the replicated-data parallel CHARMM engine:
//! block partitions of the pair list and bonded terms (classic energy)
//! and slab/column partitions of the PME mesh.

use std::ops::Range;

/// Splits `n` items into `p` contiguous blocks as evenly as possible
/// and returns the range of block `r`.
///
/// The first `n % p` blocks receive one extra item.
pub fn block_range(n: usize, p: usize, r: usize) -> Range<usize> {
    assert!(p > 0 && r < p, "invalid block request ({r} of {p})");
    let base = n / p;
    let extra = n % p;
    let start = r * base + r.min(extra);
    let len = base + usize::from(r < extra);
    start..(start + len).min(n)
}

/// Partition of one rank's share of the classic energy calculation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassicPartition {
    /// Pair-list index range evaluated by this rank.
    pub pairs: Range<usize>,
    /// Bond index range.
    pub bonds: Range<usize>,
    /// Angle index range.
    pub angles: Range<usize>,
    /// Dihedral index range.
    pub dihedrals: Range<usize>,
    /// Improper index range.
    pub impropers: Range<usize>,
    /// Excluded-pair block (Ewald corrections in the PME model; the
    /// work, not the exclusions themselves, is partitioned).
    pub excl_atoms: Range<usize>,
}

/// Computes rank `r`'s classic-phase share.
#[allow(clippy::too_many_arguments)]
pub fn classic_partition(
    n_pairs: usize,
    n_bonds: usize,
    n_angles: usize,
    n_dihedrals: usize,
    n_impropers: usize,
    n_atoms: usize,
    p: usize,
    r: usize,
) -> ClassicPartition {
    ClassicPartition {
        pairs: block_range(n_pairs, p, r),
        bonds: block_range(n_bonds, p, r),
        angles: block_range(n_angles, p, r),
        dihedrals: block_range(n_dihedrals, p, r),
        impropers: block_range(n_impropers, p, r),
        excl_atoms: block_range(n_atoms, p, r),
    }
}

/// Range of a sorted half pair list `(i, j)` (ordered by `i`) whose
/// `i` atoms fall in `atoms` — CHARMM's atom-block decomposition of the
/// nonbonded work. Blocks of equal atom count carry *unequal* pair
/// counts (dense protein regions vs sparse solvent), reproducing the
/// real code's load imbalance.
pub fn pair_range_by_atom_block(pairs: &[(u32, u32)], atoms: &Range<usize>) -> Range<usize> {
    let start = pairs.partition_point(|&(i, _)| (i as usize) < atoms.start);
    let end = pairs.partition_point(|&(i, _)| (i as usize) < atoms.end);
    start..end
}

/// Pair-list cut points for `p` ranks, aligned to atom boundaries and
/// balanced by *pair count* (CHARMM weights its atom partition by each
/// atom's neighbour count). Returns `p + 1` indices into `pairs`.
///
/// Granularity leaves a small residual imbalance — as in the real
/// code — but removes the gross protein-vs-solvent skew of naive
/// equal-atom blocks.
pub fn balanced_pair_cuts(pairs: &[(u32, u32)], p: usize) -> Vec<usize> {
    assert!(p > 0);
    let n = pairs.len();
    let mut cuts = Vec::with_capacity(p + 1);
    cuts.push(0);
    for r in 1..p {
        let target = r * n / p;
        // Advance to the next atom boundary at or after the target so a
        // single atom's pairs never split across ranks.
        let mut idx = target;
        while idx < n && idx > 0 && pairs[idx].0 == pairs[idx - 1].0 {
            idx += 1;
        }
        cuts.push(idx.max(*cuts.last().expect("nonempty")));
    }
    cuts.push(n);
    cuts
}

/// Capacity-weighted variant of [`balanced_pair_cuts`]: rank `r`
/// receives a pair share proportional to `caps[r]` (a straggling rank
/// gets a capacity below 1 and correspondingly fewer pairs). Uniform
/// capacities reproduce the unweighted cuts *exactly* — the degenerate
/// case delegates to the integer arithmetic of [`balanced_pair_cuts`]
/// so a rebalance back to uniform is bit-identical to never having
/// rebalanced.
pub fn balanced_pair_cuts_weighted(pairs: &[(u32, u32)], p: usize, caps: &[f64]) -> Vec<usize> {
    assert!(p > 0);
    assert_eq!(caps.len(), p, "one capacity per rank");
    assert!(
        caps.iter().all(|&c| c.is_finite() && c > 0.0),
        "capacities must be finite and positive: {caps:?}"
    );
    if caps.iter().all(|&c| c == caps[0]) {
        return balanced_pair_cuts(pairs, p);
    }
    let n = pairs.len();
    let total: f64 = caps.iter().sum();
    let mut cuts = Vec::with_capacity(p + 1);
    cuts.push(0);
    let mut cum = 0.0;
    for r in 1..p {
        cum += caps[r - 1];
        let target = ((n as f64 * cum / total) as usize).min(n);
        // Same atom-boundary advance as the unweighted cuts.
        let mut idx = target;
        while idx < n && idx > 0 && pairs[idx].0 == pairs[idx - 1].0 {
            idx += 1;
        }
        cuts.push(idx.max(*cuts.last().expect("nonempty")));
    }
    cuts.push(n);
    cuts
}

/// Capacity-proportional cut points splitting `n` items across `p`
/// owners: `p + 1` monotone indices with `cuts[0] == 0` and
/// `cuts[p] == n`. Shared by the weighted PME plane assignment.
pub fn weighted_cuts(n: usize, caps: &[f64]) -> Vec<usize> {
    let p = caps.len();
    assert!(p > 0);
    assert!(
        caps.iter().all(|&c| c.is_finite() && c > 0.0),
        "capacities must be finite and positive: {caps:?}"
    );
    let total: f64 = caps.iter().sum();
    let mut cuts = Vec::with_capacity(p + 1);
    cuts.push(0);
    let mut cum = 0.0;
    for r in 1..p {
        cum += caps[r - 1];
        let target = ((n as f64 * cum / total) as usize).min(n);
        cuts.push(target.max(*cuts.last().expect("nonempty")));
    }
    cuts.push(n);
    cuts
}

/// PME mesh decomposition: x-plane slabs before the transpose, (y,z)
/// columns after it. Plane ownership is optionally capacity-weighted
/// (straggler rebalancing); the column phase stays uniform because its
/// cost is dominated by the transpose either way.
#[derive(Debug, Clone, PartialEq)]
pub struct PmeDecomp {
    /// Mesh extent along x.
    pub nx: usize,
    /// Mesh extent along y.
    pub ny: usize,
    /// Mesh extent along z.
    pub nz: usize,
    /// Number of ranks.
    pub p: usize,
    /// Capacity-weighted x-plane cut points (`p + 1` indices); `None`
    /// means the uniform [`block_range`] slabs.
    pub plane_cuts: Option<Vec<usize>>,
}

impl PmeDecomp {
    /// Creates a decomposition; requires `p >= 1`.
    pub fn new(nx: usize, ny: usize, nz: usize, p: usize) -> Self {
        assert!(p >= 1);
        PmeDecomp {
            nx,
            ny,
            nz,
            p,
            plane_cuts: None,
        }
    }

    /// Reassigns plane slabs proportionally to per-rank capacities.
    /// Uniform capacities restore the unweighted decomposition exactly.
    pub fn with_plane_weights(mut self, caps: &[f64]) -> Self {
        assert_eq!(caps.len(), self.p, "one capacity per rank");
        if caps.iter().all(|&c| c == caps[0]) {
            self.plane_cuts = None;
        } else {
            self.plane_cuts = Some(weighted_cuts(self.nx, caps));
        }
        self
    }

    /// x-plane range owned by rank `r` (slab phase).
    pub fn planes(&self, r: usize) -> Range<usize> {
        match &self.plane_cuts {
            Some(cuts) => cuts[r]..cuts[r + 1],
            None => block_range(self.nx, self.p, r),
        }
    }

    /// (y,z)-column range owned by rank `r` (transposed phase). Columns
    /// are indexed `c = y * nz + z`.
    pub fn cols(&self, r: usize) -> Range<usize> {
        block_range(self.ny * self.nz, self.p, r)
    }

    /// Which rank owns x-plane `gx`.
    pub fn plane_owner(&self, gx: usize) -> usize {
        debug_assert!(gx < self.nx);
        // Inverse of block_range; linear scan is fine for p <= 16.
        for r in 0..self.p {
            if self.planes(r).contains(&gx) {
                return r;
            }
        }
        unreachable!("plane {gx} not owned")
    }

    /// Total mesh points.
    pub fn len(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Always false.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_ranges_cover_exactly() {
        for n in [0usize, 1, 7, 80, 81, 100] {
            for p in [1usize, 2, 3, 7, 8, 16] {
                let mut covered = 0;
                let mut prev_end = 0;
                for r in 0..p {
                    let range = block_range(n, p, r);
                    assert_eq!(range.start, prev_end, "n={n} p={p} r={r}");
                    prev_end = range.end;
                    covered += range.len();
                }
                assert_eq!(covered, n);
                assert_eq!(prev_end, n);
            }
        }
    }

    #[test]
    fn block_sizes_balanced() {
        for r in 0..8 {
            let len = block_range(82, 8, r).len();
            assert!(len == 10 || len == 11);
        }
    }

    #[test]
    fn plane_owner_is_inverse_of_planes() {
        let d = PmeDecomp::new(80, 36, 48, 8);
        for gx in 0..80 {
            let owner = d.plane_owner(gx);
            assert!(d.planes(owner).contains(&gx));
        }
    }

    #[test]
    fn columns_cover_mesh() {
        let d = PmeDecomp::new(80, 36, 48, 5);
        let total: usize = (0..5).map(|r| d.cols(r).len()).sum();
        assert_eq!(total, 36 * 48);
    }

    #[test]
    fn single_rank_owns_everything() {
        let d = PmeDecomp::new(80, 36, 48, 1);
        assert_eq!(d.planes(0), 0..80);
        assert_eq!(d.cols(0), 0..(36 * 48));
    }

    #[test]
    fn pair_range_by_atom_block_covers_and_orders() {
        let pairs: Vec<(u32, u32)> = vec![
            (0, 1),
            (0, 2),
            (1, 2),
            (1, 3),
            (3, 4),
            (3, 5),
            (3, 6),
            (5, 6),
        ];
        let r1 = pair_range_by_atom_block(&pairs, &(0..2));
        assert_eq!(r1, 0..4);
        let r2 = pair_range_by_atom_block(&pairs, &(2..4));
        assert_eq!(r2, 4..7);
        let r3 = pair_range_by_atom_block(&pairs, &(4..7));
        assert_eq!(r3, 7..8);
        // Full coverage, no overlap.
        assert_eq!(r1.end, r2.start);
        assert_eq!(r2.end, r3.start);
    }

    #[test]
    fn balanced_cuts_cover_and_respect_atom_boundaries() {
        let pairs: Vec<(u32, u32)> = (0..50u32)
            .flat_map(|i| (0..(if i < 10 { 8 } else { 1 })).map(move |k| (i, i + k + 1)))
            .collect();
        for p in [1usize, 2, 3, 4, 8] {
            let cuts = balanced_pair_cuts(&pairs, p);
            assert_eq!(cuts.len(), p + 1);
            assert_eq!(cuts[0], 0);
            assert_eq!(cuts[p], pairs.len());
            for w in cuts.windows(2) {
                assert!(w[0] <= w[1]);
            }
            // No atom's pairs split across a cut.
            for &c in &cuts[1..p] {
                if c > 0 && c < pairs.len() {
                    assert_ne!(pairs[c].0, pairs[c - 1].0, "cut at {c} splits an atom");
                }
            }
        }
    }

    #[test]
    fn balanced_cuts_beat_equal_atom_blocks() {
        // Dense first region, sparse second (protein vs solvent).
        let pairs: Vec<(u32, u32)> = (0..100u32)
            .flat_map(|i| (0..(if i < 50 { 9 } else { 1 })).map(move |k| (i, i + k + 1)))
            .collect();
        let cuts = balanced_pair_cuts(&pairs, 2);
        let max_block = (cuts[1] - cuts[0]).max(cuts[2] - cuts[1]) as f64;
        let mean = pairs.len() as f64 / 2.0;
        assert!(max_block < 1.1 * mean, "imbalance {}", max_block / mean);
    }

    #[test]
    fn uniform_weights_reproduce_unweighted_cuts_exactly() {
        let pairs: Vec<(u32, u32)> = (0..80u32)
            .flat_map(|i| (0..(if i < 20 { 6 } else { 2 })).map(move |k| (i, i + k + 1)))
            .collect();
        for p in [1usize, 2, 3, 4, 8] {
            for w in [1.0f64, 0.25, 7.5] {
                let caps = vec![w; p];
                assert_eq!(
                    balanced_pair_cuts_weighted(&pairs, p, &caps),
                    balanced_pair_cuts(&pairs, p),
                    "p={p} w={w}"
                );
            }
        }
    }

    #[test]
    fn weighted_cuts_cover_and_respect_atom_boundaries() {
        let pairs: Vec<(u32, u32)> = (0..50u32)
            .flat_map(|i| (0..(if i < 10 { 8 } else { 1 })).map(move |k| (i, i + k + 1)))
            .collect();
        let caps = [1.0, 0.4, 1.0, 0.7];
        let cuts = balanced_pair_cuts_weighted(&pairs, 4, &caps);
        assert_eq!(cuts.len(), 5);
        assert_eq!(cuts[0], 0);
        assert_eq!(cuts[4], pairs.len());
        for w in cuts.windows(2) {
            assert!(w[0] <= w[1]);
        }
        for &c in &cuts[1..4] {
            if c > 0 && c < pairs.len() {
                assert_ne!(pairs[c].0, pairs[c - 1].0, "cut at {c} splits an atom");
            }
        }
    }

    #[test]
    fn skewed_weights_provably_reduce_max_bucket_cost() {
        // Uniform pair density, one rank at half speed: the weighted
        // cuts must strictly reduce the pace-setting per-rank cost
        // (bucket size divided by capacity).
        let pairs: Vec<(u32, u32)> = (0..400u32).map(|i| (i, i + 1)).collect();
        let caps = [1.0, 1.0, 1.0, 0.5];
        let cost = |cuts: &[usize]| -> f64 {
            (0..4)
                .map(|r| (cuts[r + 1] - cuts[r]) as f64 / caps[r])
                .fold(0.0, f64::max)
        };
        let uniform = cost(&balanced_pair_cuts(&pairs, 4));
        let weighted = cost(&balanced_pair_cuts_weighted(&pairs, 4, &caps));
        assert!(
            weighted < 0.7 * uniform,
            "weighted {weighted} vs uniform {uniform}"
        );
    }

    #[test]
    fn weighted_planes_cover_and_uniform_weights_restore_block_slabs() {
        let d = PmeDecomp::new(80, 36, 48, 4);
        let uniform = d.clone().with_plane_weights(&[2.0; 4]);
        assert!(uniform.plane_cuts.is_none());
        for r in 0..4 {
            assert_eq!(uniform.planes(r), d.planes(r));
        }
        let skewed = d.clone().with_plane_weights(&[1.0, 1.0, 1.0, 0.5]);
        assert!(skewed.plane_cuts.is_some());
        let mut prev_end = 0;
        let mut covered = 0;
        for r in 0..4 {
            let pl = skewed.planes(r);
            assert_eq!(pl.start, prev_end);
            prev_end = pl.end;
            covered += pl.len();
        }
        assert_eq!(covered, 80);
        assert!(
            skewed.planes(3).len() < skewed.planes(0).len(),
            "slow rank owns fewer planes"
        );
        for gx in 0..80 {
            let owner = skewed.plane_owner(gx);
            assert!(skewed.planes(owner).contains(&gx));
        }
    }

    #[test]
    fn classic_partition_covers_all_terms() {
        let p = 4;
        let mut pair_total = 0;
        for r in 0..p {
            let part = classic_partition(1000, 50, 60, 70, 10, 3552, p, r);
            pair_total += part.pairs.len();
            assert!(part.bonds.len() >= 12);
        }
        assert_eq!(pair_total, 1000);
    }
}
