//! Run reports: the response variables of the paper's experimental
//! design, aggregated from per-rank statistics.

use crate::driver::MdConfig;
use cpc_cluster::{
    summarize_throughput, ClusterConfig, Phase, PhaseBucket, RankOutcome, RankStats,
    ThroughputSummary,
};
use cpc_md::Vec3;
use cpc_mpi::Middleware;

/// Energies recorded at one MD step (on rank 0).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepEnergies {
    /// Classic (time-domain) potential energy.
    pub classic: f64,
    /// PME (frequency-domain) energy contribution.
    pub pme: f64,
    /// Kinetic energy.
    pub kinetic: f64,
}

impl StepEnergies {
    /// Total energy of the step.
    pub fn total(&self) -> f64 {
        self.classic + self.pme + self.kinetic
    }
}

/// The full result of one measurement run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Platform configuration.
    pub cluster: ClusterConfig,
    /// Middleware used.
    pub middleware: Middleware,
    /// MD steps measured.
    pub steps: usize,
    /// Per-rank statistics.
    pub per_rank: Vec<RankStats>,
    /// Wall-clock (virtual) time of the whole run.
    pub wall_time: f64,
    /// Per-step energies (from rank 0).
    pub step_energies: Vec<StepEnergies>,
    /// Final coordinates (rank 0) for physics verification.
    pub final_positions: Vec<Vec3>,
    /// Final velocities (rank 0).
    pub final_velocities: Vec<Vec3>,
}

type RankPayload = (Vec<StepEnergies>, Vec<Vec3>, Vec<Vec3>);

impl RunReport {
    /// Builds a report from the raw cluster outcomes.
    pub fn from_outcomes(cfg: &MdConfig, outcomes: Vec<RankOutcome<RankPayload>>) -> Self {
        let wall_time = outcomes.iter().map(|o| o.finish_time).fold(0.0, f64::max);
        let mut step_energies = Vec::new();
        let mut final_positions = Vec::new();
        let mut final_velocities = Vec::new();
        let mut per_rank = Vec::with_capacity(outcomes.len());
        for (i, o) in outcomes.into_iter().enumerate() {
            if i == 0 {
                let (e, p, v) = o.result;
                step_energies = e;
                final_positions = p;
                final_velocities = v;
            }
            per_rank.push(o.stats);
        }
        RunReport {
            cluster: cfg.cluster,
            middleware: cfg.middleware,
            steps: cfg.steps,
            per_rank,
            wall_time,
            step_energies,
            final_positions,
            final_velocities,
        }
    }

    /// Wall time of a phase: the maximum over ranks of that phase's
    /// total (the paper's per-component wall-clock bars).
    pub fn phase_time(&self, phase: Phase) -> f64 {
        self.per_rank
            .iter()
            .map(|s| s.bucket(phase).total())
            .fold(0.0, f64::max)
    }

    /// The "classic calculation" bar of Figures 3/5/8/9.
    pub fn classic_time(&self) -> f64 {
        self.phase_time(Phase::Classic)
    }

    /// The "pme calculation" bar of Figures 3/5/8/9.
    pub fn pme_time(&self) -> f64 {
        self.phase_time(Phase::Pme)
    }

    /// Total energy-calculation time (classic + PME bars stacked).
    pub fn energy_time(&self) -> f64 {
        self.classic_time() + self.pme_time()
    }

    /// Sums a phase's bucket over all ranks (basis for the percentage
    /// breakdowns of Figures 4/6/8b).
    pub fn phase_breakdown(&self, phase: Phase) -> PhaseBucket {
        let mut total = PhaseBucket::default();
        for s in &self.per_rank {
            total.add(s.bucket(phase));
        }
        total
    }

    /// Breakdown of the *total* energy calculation (classic + PME),
    /// summed over ranks — Figure 8b.
    pub fn energy_breakdown(&self) -> PhaseBucket {
        let mut total = self.phase_breakdown(Phase::Classic);
        total.add(&self.phase_breakdown(Phase::Pme));
        total
    }

    /// Percentages `(comp, comm, sync)` of a bucket, summing to 100.
    pub fn percentages(bucket: &PhaseBucket) -> (f64, f64, f64) {
        let t = bucket.total();
        if t <= 0.0 {
            return (100.0, 0.0, 0.0);
        }
        (
            100.0 * bucket.comp / t,
            100.0 * bucket.comm / t,
            100.0 * bucket.sync / t,
        )
    }

    /// Per-node average/min/max communication speed (Figure 7).
    pub fn throughput_summary(&self) -> Option<ThroughputSummary> {
        summarize_throughput(self.per_rank.iter().flat_map(|s| s.throughput.iter()))
    }

    /// Total payload bytes sent by all ranks.
    pub fn total_bytes_sent(&self) -> u64 {
        self.per_rank.iter().map(|s| s.bytes_sent).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_report() -> RunReport {
        let mut r0 = RankStats::default();
        r0.bucket_mut(Phase::Classic).comp = 3.0;
        r0.bucket_mut(Phase::Classic).comm = 1.0;
        r0.bucket_mut(Phase::Pme).comp = 2.0;
        let mut r1 = RankStats::default();
        r1.bucket_mut(Phase::Classic).comp = 2.0;
        r1.bucket_mut(Phase::Classic).sync = 3.0;
        r1.bucket_mut(Phase::Pme).comp = 1.0;
        RunReport {
            cluster: ClusterConfig::uni(2, cpc_cluster::NetworkKind::TcpGigE),
            middleware: Middleware::Mpi,
            steps: 10,
            per_rank: vec![r0, r1],
            wall_time: 9.0,
            step_energies: vec![],
            final_positions: vec![],
            final_velocities: vec![],
        }
    }

    #[test]
    fn phase_time_is_max_over_ranks() {
        let r = dummy_report();
        assert_eq!(r.classic_time(), 5.0); // rank 1: 2 + 3
        assert_eq!(r.pme_time(), 2.0);
        assert_eq!(r.energy_time(), 7.0);
    }

    #[test]
    fn breakdown_sums_ranks() {
        let r = dummy_report();
        let b = r.phase_breakdown(Phase::Classic);
        assert_eq!(b.comp, 5.0);
        assert_eq!(b.comm, 1.0);
        assert_eq!(b.sync, 3.0);
        let e = r.energy_breakdown();
        assert_eq!(e.comp, 8.0);
    }

    #[test]
    fn percentages_sum_to_hundred() {
        let r = dummy_report();
        let (comp, comm, sync) = RunReport::percentages(&r.phase_breakdown(Phase::Classic));
        assert!((comp + comm + sync - 100.0).abs() < 1e-9);
        assert!((comp - 500.0 / 9.0).abs() < 1e-9);
    }

    #[test]
    fn empty_bucket_percentages() {
        let (comp, comm, sync) = RunReport::percentages(&PhaseBucket::default());
        assert_eq!((comp, comm, sync), (100.0, 0.0, 0.0));
    }
}
