//! The parallel *PME* energy calculation (paper Figure 2, right),
//! modelled on CHARMM's replicated-data implementation:
//!
//! 1. each rank spreads *its atom block* onto a full local copy of the
//!    charge mesh (atoms are block-decomposed, not spatially sorted, so
//!    their spline support lands anywhere on the mesh),
//! 2. the charge mesh is summed globally (ring allreduce — the
//!    dominant "all-to-all" traffic of the PME routine),
//! 3. the 3D FFT runs slab-decomposed: local 2D transforms, an
//!    all-to-all personalized transpose, local 1D transforms,
//!    convolution with the influence function, and the inverse path,
//! 4. the convolution mesh is allgathered so every rank can
//!    interpolate forces for its own atom block,
//! 5. k-space forces and energies are closed with the same global
//!    combine as the classic calculation.
//!
//! Steps 2 and 4 move the full mesh every MD step — this is precisely
//! why the paper finds that "the PME method increases the dependency on
//! the better networks".

use crate::decomp::{block_range, PmeDecomp};
use cpc_cluster::{CostModel, Phase};
use cpc_fft::plan::flops_estimate;
use cpc_fft::{transform_axis, Axis, Complex64, Dims3, Direction, FftPlan};
use cpc_md::pme::{bspline_moduli, compute_splines, influence_element, PmeParams};
use cpc_md::special::erf;
use cpc_md::units::COULOMB;
use cpc_md::{System, Vec3};
use cpc_mpi::{CombineAlgo, Comm};
use std::f64::consts::PI;

/// ABFT evidence collected during one parallel PME evaluation.
///
/// B-spline interpolation partitions unity, so the globally summed
/// charge mesh must reproduce the total system charge exactly up to
/// roundoff (`grid_residual`), and every block crossing the
/// distributed-FFT transpose carries a bit-exact checksum
/// (`transpose_faults` counts blocks that failed verification).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PmeAbftProbe {
    /// `|Σ qgrid - Σ q| / max(Σ |q|, 1)` after the global mesh sum.
    pub grid_residual: f64,
    /// Number of transpose blocks whose checksum failed.
    pub transpose_faults: usize,
}

/// Result of one parallel PME evaluation, identical on every rank.
#[derive(Debug, Clone)]
pub struct PmeParallelResult {
    /// Reciprocal-space energy.
    pub recip: f64,
    /// Ewald self term.
    pub self_term: f64,
    /// Excluded-pair correction.
    pub excluded: f64,
    /// Global k-space forces (reciprocal + exclusion corrections).
    pub forces: Vec<Vec3>,
    /// ABFT evidence (`Some` only when checks were armed).
    pub abft: Option<PmeAbftProbe>,
}

impl PmeParallelResult {
    /// Total k-space energy (the paper's "PME calculation" share).
    pub fn energy(&self) -> f64 {
        self.recip + self.self_term + self.excluded
    }
}

/// Reusable parallel PME state for a fixed mesh and rank count.
pub struct ParallelPme {
    params: PmeParams,
    decomp: PmeDecomp,
    grid_sum: CombineAlgo,
    force_combine: CombineAlgo,
    abft: bool,
    plan_x: FftPlan,
    plan_y: FftPlan,
    plan_z: FftPlan,
    bx: Vec<f64>,
    by: Vec<f64>,
    bz: Vec<f64>,
}

impl ParallelPme {
    /// Builds plans and spline moduli for `p` ranks.
    pub fn new(params: PmeParams, p: usize) -> Self {
        let g = params.grid;
        ParallelPme {
            params,
            decomp: PmeDecomp::new(g.nx, g.ny, g.nz, p),
            grid_sum: CombineAlgo::Ring,
            force_combine: CombineAlgo::Flat,
            abft: false,
            plan_x: FftPlan::new(g.nx),
            plan_y: FftPlan::new(g.ny),
            plan_z: FftPlan::new(g.nz),
            bx: bspline_moduli(g.nx, params.order),
            by: bspline_moduli(g.ny, params.order),
            bz: bspline_moduli(g.nz, params.order),
        }
    }

    /// Configured parameters.
    pub fn params(&self) -> PmeParams {
        self.params
    }

    /// Overrides the charge-grid sum algorithm (ablation hook).
    pub fn with_grid_sum(mut self, algo: CombineAlgo) -> Self {
        self.grid_sum = algo;
        self
    }

    /// Overrides the closing force-combine algorithm (ablation hook).
    pub fn with_force_combine(mut self, algo: CombineAlgo) -> Self {
        self.force_combine = algo;
        self
    }

    /// Arms the ABFT invariants: the grid-charge check after the mesh
    /// sum and per-block checksums across the distributed-FFT
    /// transposes. Off by default — an unarmed evaluation is
    /// byte-identical to the pre-ABFT code path.
    pub fn with_abft(mut self, armed: bool) -> Self {
        self.abft = armed;
        self
    }

    /// Reassigns mesh plane slabs proportionally to per-rank capacities
    /// (straggler rebalancing). All ranks must apply identical weights;
    /// uniform weights restore the original decomposition exactly.
    pub fn with_plane_weights(mut self, caps: &[f64]) -> Self {
        self.decomp = self.decomp.with_plane_weights(caps);
        self
    }

    /// Full parallel k-space evaluation. All ranks must pass identical
    /// system state. Communication is booked in the `Pme` phase.
    pub fn energy_forces(
        &self,
        comm: &mut Comm<'_>,
        system: &System,
        cost: &CostModel,
    ) -> PmeParallelResult {
        comm.ctx().set_phase(Phase::Pme);
        let p = comm.size();
        let rank = comm.rank();
        debug_assert_eq!(p, self.decomp.p, "rank count must match construction");
        let g = self.params.grid;
        let order = self.params.order;
        let (ny, nz, nx) = (g.ny, g.nz, g.nx);
        let topo = &system.topology;

        let my_planes = self.decomp.planes(rank);
        let x0 = my_planes.start;
        let n_planes = my_planes.len();
        let my_cols = self.decomp.cols(rank);
        let c0 = my_cols.start;
        let n_cols = my_cols.len();

        // --- Charge spreading: my atom block onto a full local mesh.
        let splines = compute_splines(&system.pbox, &system.positions, g, order);
        let atom_block = block_range(system.n_atoms(), p, rank);
        let mut qgrid = vec![0.0f64; g.len()];
        let mut spread_points = 0usize;
        for i in atom_block.clone() {
            let q = topo.atoms[i].charge;
            if q == 0.0 {
                continue;
            }
            let sp = &splines[i];
            for tx in 0..order {
                let gx = (sp.base[0] + tx as i64).rem_euclid(nx as i64) as usize;
                let qx = q * sp.w[0][tx];
                for ty in 0..order {
                    let gy = (sp.base[1] + ty as i64).rem_euclid(ny as i64) as usize;
                    let qxy = qx * sp.w[1][ty];
                    let row = (gx * ny + gy) * nz;
                    for tz in 0..order {
                        let gz = (sp.base[2] + tz as i64).rem_euclid(nz as i64) as usize;
                        qgrid[row + gz] += qxy * sp.w[2][tz];
                        spread_points += 1;
                    }
                }
            }
        }
        comm.ctx()
            .charge_compute(spread_points as f64 * cost.spread_point);

        // --- Global charge-mesh sum (CHARMM applies its global-combine
        // machinery to the whole mesh).
        let mut qgrid_vec = qgrid;
        comm.allreduce_with(self.grid_sum, &mut qgrid_vec);
        let qgrid = qgrid_vec;

        // ABFT grid-charge invariant: B-spline weights partition unity,
        // so the summed mesh must hold exactly the total system charge
        // up to roundoff. A pure side read over the reduced mesh.
        let grid_residual = if self.abft {
            comm.ctx().charge_compute(g.len() as f64 * cost.conv_point);
            let mesh_q: f64 = qgrid.iter().sum();
            let total_q: f64 = topo.atoms.iter().map(|a| a.charge).sum();
            let scale: f64 = topo.atoms.iter().map(|a| a.charge.abs()).sum();
            (mesh_q - total_q).abs() / scale.max(1.0)
        } else {
            0.0
        };

        // Extract my slab as complex data for the distributed FFT.
        let mut slab = vec![Complex64::ZERO; n_planes * ny * nz];
        for gx in my_planes.clone() {
            let src = gx * ny * nz;
            let dst = (gx - x0) * ny * nz;
            for i in 0..ny * nz {
                slab[dst + i].re = qgrid[src + i];
            }
        }

        // --- Forward 2D FFTs (y and z) on the local planes.
        let fft2d_flops =
            n_planes as f64 * (ny as f64 * flops_estimate(nz) + nz as f64 * flops_estimate(ny));
        if n_planes > 0 {
            let dims = Dims3::new(n_planes, ny, nz);
            transform_axis(&mut slab, dims, Axis::Z, &self.plan_z, Direction::Forward);
            transform_axis(&mut slab, dims, Axis::Y, &self.plan_y, Direction::Forward);
        }
        comm.ctx().charge_compute(fft2d_flops * cost.fft_flop);

        // --- Transpose: slab (planes x cols) -> columns (cols x nx).
        let mut cols = vec![Complex64::ZERO; n_cols * nx];
        let mut transpose_faults = self.transpose_forward(comm, &slab, &mut cols, cost);

        // --- 1D FFT along x on owned columns, influence multiply with
        // the partial energy, inverse 1D FFT.
        let mut recip_partial = 0.0;
        {
            let mut line = vec![Complex64::ZERO; nx];
            for c_local in 0..n_cols {
                let c = c0 + c_local;
                let (my_, mz_) = (c / nz, c % nz);
                let seg = &mut cols[c_local * nx..(c_local + 1) * nx];
                self.plan_x.execute(seg, &mut line, Direction::Forward);
                for (mx, v) in line.iter_mut().enumerate() {
                    let w = influence_element(
                        g,
                        &system.pbox,
                        self.params.beta,
                        &self.bx,
                        &self.by,
                        &self.bz,
                        mx,
                        my_,
                        mz_,
                    );
                    recip_partial += 0.5 * w * v.norm_sqr();
                    *v = v.scale(w);
                }
                // Unscaled inverse: matches the sequential convolution
                // grid without any 1/N bookkeeping.
                self.plan_x.execute(&line.clone(), seg, Direction::Inverse);
            }
        }
        comm.ctx().charge_compute(
            n_cols as f64 * 2.0 * flops_estimate(nx) * cost.fft_flop
                + (n_cols * nx) as f64 * cost.conv_point,
        );

        // --- Transpose back and inverse 2D FFTs.
        let mut slab_phi = vec![Complex64::ZERO; n_planes * ny * nz];
        transpose_faults += self.transpose_backward(comm, &cols, &mut slab_phi, cost);
        if n_planes > 0 {
            let dims = Dims3::new(n_planes, ny, nz);
            transform_axis(
                &mut slab_phi,
                dims,
                Axis::Y,
                &self.plan_y,
                Direction::Inverse,
            );
            transform_axis(
                &mut slab_phi,
                dims,
                Axis::Z,
                &self.plan_z,
                Direction::Inverse,
            );
        }
        comm.ctx().charge_compute(fft2d_flops * cost.fft_flop);

        // --- Allgather the convolution mesh: every rank needs phi
        // everywhere because its atoms are block-decomposed.
        let mut phi = vec![0.0f64; g.len()];
        {
            let mine: Vec<f64> = slab_phi.iter().map(|v| v.re).collect();
            let parts = comm.allgather(mine);
            for (s_rank, part) in parts.iter().enumerate() {
                let planes = self.decomp.planes(s_rank);
                let base = planes.start * ny * nz;
                phi[base..base + part.len()].copy_from_slice(part);
            }
        }

        // --- Force interpolation for my atom block over the full mesh.
        let n = system.n_atoms();
        let mut forces = vec![Vec3::ZERO; n];
        let l = system.pbox.lengths;
        let du = [nx as f64 / l.x, ny as f64 / l.y, nz as f64 / l.z];
        let mut interp_points = 0usize;
        for i in atom_block.clone() {
            let q = topo.atoms[i].charge;
            if q == 0.0 {
                continue;
            }
            let sp = &splines[i];
            let mut grad = Vec3::ZERO;
            for tx in 0..order {
                let gx = (sp.base[0] + tx as i64).rem_euclid(nx as i64) as usize;
                for ty in 0..order {
                    let gy = (sp.base[1] + ty as i64).rem_euclid(ny as i64) as usize;
                    let row = (gx * ny + gy) * nz;
                    for tz in 0..order {
                        let gz = (sp.base[2] + tz as i64).rem_euclid(nz as i64) as usize;
                        let ph = phi[row + gz];
                        grad.x += sp.dw[0][tx] * sp.w[1][ty] * sp.w[2][tz] * ph;
                        grad.y += sp.w[0][tx] * sp.dw[1][ty] * sp.w[2][tz] * ph;
                        grad.z += sp.w[0][tx] * sp.w[1][ty] * sp.dw[2][tz] * ph;
                        interp_points += 1;
                    }
                }
            }
            forces[i] -= Vec3::new(grad.x * du[0], grad.y * du[1], grad.z * du[2]) * q;
        }
        comm.ctx()
            .charge_compute(interp_points as f64 * cost.interp_point);

        // --- Excluded-pair corrections over this rank's atom block.
        let beta = self.params.beta;
        let mut excl_partial = 0.0;
        let mut excl_count = 0usize;
        for i in atom_block.clone() {
            for &j in &topo.exclusions[i] {
                let j = j as usize;
                let qq = COULOMB * topo.atoms[i].charge * topo.atoms[j].charge;
                if qq == 0.0 {
                    continue;
                }
                let d = system
                    .pbox
                    .min_image(system.positions[i], system.positions[j]);
                let r2 = d.norm_sqr();
                let r = r2.sqrt();
                let br = beta * r;
                let ef = erf(br);
                excl_partial -= qq * ef / r;
                let de_dr = -qq * (2.0 * beta / PI.sqrt() * (-br * br).exp() / r - ef / r2);
                let fv = d * (-de_dr / r);
                forces[i] += fv;
                forces[j] -= fv;
                excl_count += 1;
            }
        }
        comm.ctx()
            .charge_compute(excl_count as f64 * cost.excl_pair);

        // Self energy: exact and position independent; contributed once
        // (rank 0) so the global sum is correct.
        let self_partial = if rank == 0 {
            let q2: f64 = topo.atoms.iter().map(|a| a.charge * a.charge).sum();
            -COULOMB * beta / PI.sqrt() * q2
        } else {
            0.0
        };

        // --- Final all-to-all collective: k-space forces + energies.
        let mut buf = Vec::with_capacity(3 * n + 3);
        for f in &forces {
            buf.extend_from_slice(&[f.x, f.y, f.z]);
        }
        buf.extend_from_slice(&[recip_partial, excl_partial, self_partial]);
        comm.allreduce_with(self.force_combine, &mut buf);
        for (i, f) in forces.iter_mut().enumerate() {
            *f = Vec3::new(buf[3 * i], buf[3 * i + 1], buf[3 * i + 2]);
        }
        PmeParallelResult {
            recip: buf[3 * n],
            excluded: buf[3 * n + 1],
            self_term: buf[3 * n + 2],
            forces,
            abft: self.abft.then_some(PmeAbftProbe {
                grid_residual,
                transpose_faults,
            }),
        }
    }

    /// Forward transpose: my planes of every column block go to the
    /// block's owner; I collect my columns from every plane owner.
    /// Returns the number of blocks whose ABFT checksum failed.
    fn transpose_forward(
        &self,
        comm: &mut Comm<'_>,
        slab: &[Complex64],
        cols: &mut [Complex64],
        cost: &CostModel,
    ) -> usize {
        transpose_forward_impl(&self.decomp, comm, slab, cols, cost, self.abft)
    }

    /// Backward transpose: exact mirror of the forward one.
    fn transpose_backward(
        &self,
        comm: &mut Comm<'_>,
        cols: &[Complex64],
        slab: &mut [Complex64],
        cost: &CostModel,
    ) -> usize {
        transpose_backward_impl(&self.decomp, comm, cols, slab, cost, self.abft)
    }
}

/// Appends a 52-bit block checksum as the trailing `f64` of an outgoing
/// transpose block (only when ABFT is armed).
fn seal_block(block: &mut Vec<f64>) {
    let digest = cpc_md::abft::scalar_digest(block) & cpc_md::abft::DIGEST_MASK;
    block.push(digest as f64);
}

/// Verifies and strips the trailing checksum of a received transpose
/// block. Returns `(payload, ok)`.
fn open_block(block: &[f64]) -> (&[f64], bool) {
    match block.split_last() {
        Some((sealed, payload)) => {
            let digest = cpc_md::abft::scalar_digest(payload) & cpc_md::abft::DIGEST_MASK;
            (payload, *sealed == digest as f64)
        }
        None => (block, false),
    }
}

/// Shared slab -> columns transpose (also used by the spatial PME).
/// When `abft` is armed every block carries a trailing checksum;
/// returns the number of blocks that failed verification.
pub(crate) fn transpose_forward_impl(
    decomp: &PmeDecomp,
    comm: &mut Comm<'_>,
    slab: &[Complex64],
    cols: &mut [Complex64],
    cost: &CostModel,
    abft: bool,
) -> usize {
    {
        let p = decomp.p;
        let (ny, nz, nx) = (decomp.ny, decomp.nz, decomp.nx);
        let rank = comm.rank();
        let my_planes = decomp.planes(rank);
        let x0 = my_planes.start;
        let my_cols = decomp.cols(rank);
        let c0 = my_cols.start;

        let mut sends: Vec<Vec<f64>> = Vec::with_capacity(p);
        let mut packed = 0usize;
        for d in 0..p {
            let dst_cols = decomp.cols(d);
            let mut block = Vec::with_capacity(2 * my_planes.len() * dst_cols.len() + 1);
            for gx in my_planes.clone() {
                for c in dst_cols.clone() {
                    let (y, z) = (c / nz, c % nz);
                    let v = slab[((gx - x0) * ny + y) * nz + z];
                    block.push(v.re);
                    block.push(v.im);
                }
            }
            packed += block.len() / 2;
            if abft {
                seal_block(&mut block);
            }
            sends.push(block);
        }
        comm.ctx().charge_compute(packed as f64 * cost.conv_point);
        if abft {
            // Sealing digests every packed element once more.
            comm.ctx().charge_compute(packed as f64 * cost.conv_point);
        }

        let recvs = comm.alltoallv(sends);

        let mut faults = 0usize;
        let mut unpacked = 0usize;
        for (s, block) in recvs.iter().enumerate() {
            let payload = if abft {
                let (payload, ok) = open_block(block);
                if !ok {
                    faults += 1;
                }
                payload
            } else {
                block.as_slice()
            };
            let src_planes = decomp.planes(s);
            let mut it = payload.iter();
            for gx in src_planes {
                for c in my_cols.clone() {
                    let re = *it.next().expect("block size matches");
                    let im = *it.next().expect("block size matches");
                    cols[(c - c0) * nx + gx] = Complex64::new(re, im);
                    unpacked += 1;
                }
            }
        }
        comm.ctx().charge_compute(unpacked as f64 * cost.conv_point);
        if abft {
            comm.ctx().charge_compute(unpacked as f64 * cost.conv_point);
        }
        faults
    }
}

/// Shared columns -> slab transpose (also used by the spatial PME).
/// When `abft` is armed every block carries a trailing checksum;
/// returns the number of blocks that failed verification.
pub(crate) fn transpose_backward_impl(
    decomp: &PmeDecomp,
    comm: &mut Comm<'_>,
    cols: &[Complex64],
    slab: &mut [Complex64],
    cost: &CostModel,
    abft: bool,
) -> usize {
    {
        let p = decomp.p;
        let (ny, nz, nx) = (decomp.ny, decomp.nz, decomp.nx);
        let rank = comm.rank();
        let my_planes = decomp.planes(rank);
        let x0 = my_planes.start;
        let my_cols = decomp.cols(rank);
        let c0 = my_cols.start;

        let mut sends: Vec<Vec<f64>> = Vec::with_capacity(p);
        let mut packed = 0usize;
        for d in 0..p {
            let dst_planes = decomp.planes(d);
            let mut block = Vec::with_capacity(2 * dst_planes.len() * my_cols.len() + 1);
            for gx in dst_planes {
                for c in my_cols.clone() {
                    let v = cols[(c - c0) * nx + gx];
                    block.push(v.re);
                    block.push(v.im);
                }
            }
            packed += block.len() / 2;
            if abft {
                seal_block(&mut block);
            }
            sends.push(block);
        }
        comm.ctx().charge_compute(packed as f64 * cost.conv_point);
        if abft {
            comm.ctx().charge_compute(packed as f64 * cost.conv_point);
        }

        let recvs = comm.alltoallv(sends);

        let mut faults = 0usize;
        let mut unpacked = 0usize;
        for (s, block) in recvs.iter().enumerate() {
            let payload = if abft {
                let (payload, ok) = open_block(block);
                if !ok {
                    faults += 1;
                }
                payload
            } else {
                block.as_slice()
            };
            let src_cols = decomp.cols(s);
            let mut it = payload.iter();
            for gx in my_planes.clone() {
                for c in src_cols.clone() {
                    let re = *it.next().expect("block size matches");
                    let im = *it.next().expect("block size matches");
                    let (y, z) = (c / nz, c % nz);
                    slab[((gx - x0) * ny + y) * nz + z] = Complex64::new(re, im);
                    unpacked += 1;
                }
            }
        }
        comm.ctx().charge_compute(unpacked as f64 * cost.conv_point);
        if abft {
            comm.ctx().charge_compute(unpacked as f64 * cost.conv_point);
        }
        faults
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpc_cluster::{run_cluster, ClusterConfig, NetworkKind, PIII_1GHZ};
    use cpc_md::builder::water_box;
    use cpc_md::nonbonded::{ewald_excluded_correction, ewald_self_energy};
    use cpc_md::pme::Pme;
    use cpc_mpi::Middleware;

    fn reference(system: &System, params: PmeParams) -> (f64, f64, f64, Vec<Vec3>) {
        let mut pme = Pme::new(params, &system.pbox);
        let mut forces = vec![Vec3::ZERO; system.n_atoms()];
        let (recip, _) = pme.energy_forces(
            &system.topology,
            &system.pbox,
            &system.positions,
            &mut forces,
        );
        let self_term = ewald_self_energy(&system.topology, params.beta);
        let (excl, _) = ewald_excluded_correction(
            &system.topology,
            &system.pbox,
            &system.positions,
            params.beta,
            &mut forces,
        );
        (recip, self_term, excl, forces)
    }

    #[test]
    fn parallel_pme_matches_sequential_for_all_rank_counts() {
        let system = water_box(3, 3.1);
        let params = PmeParams {
            grid: Dims3::new(24, 24, 24),
            order: 4,
            beta: 0.34,
        };
        let (recip_ref, self_ref, excl_ref, f_ref) = reference(&system, params);

        for p in [1usize, 2, 3, 4, 8] {
            let cfg = ClusterConfig::uni(p, NetworkKind::MyrinetGm);
            let sys = &system;
            let out = run_cluster(cfg, |ctx| {
                let mut comm = Comm::new(ctx, Middleware::Mpi);
                let ppme = ParallelPme::new(params, p);
                ppme.energy_forces(&mut comm, sys, &PIII_1GHZ)
            });
            for o in &out {
                let got = &o.result;
                assert!(
                    (got.recip - recip_ref).abs() < 1e-7 * recip_ref.abs().max(1.0),
                    "p={p}: recip {} vs {}",
                    got.recip,
                    recip_ref
                );
                assert!((got.self_term - self_ref).abs() < 1e-9);
                assert!((got.excluded - excl_ref).abs() < 1e-7 * excl_ref.abs().max(1.0));
                for (a, b) in got.forces.iter().zip(&f_ref) {
                    assert!((*a - *b).norm() < 1e-7 * (1.0 + b.norm()), "p={p}");
                }
            }
        }
    }

    #[test]
    fn cmpi_middleware_gives_identical_physics() {
        let system = water_box(2, 3.1);
        let params = PmeParams {
            grid: Dims3::new(24, 24, 24),
            order: 4,
            beta: 0.34,
        };
        let (recip_ref, ..) = reference(&system, params);
        let cfg = ClusterConfig::uni(4, NetworkKind::TcpGigE);
        let sys = &system;
        let out = run_cluster(cfg, |ctx| {
            let mut comm = Comm::new(ctx, Middleware::Cmpi);
            let ppme = ParallelPme::new(params, 4);
            ppme.energy_forces(&mut comm, sys, &PIII_1GHZ).recip
        });
        for o in &out {
            assert!((o.result - recip_ref).abs() < 1e-7 * recip_ref.abs().max(1.0));
        }
    }

    #[test]
    fn transpose_dominates_pme_communication() {
        // The alltoall transposes move the full mesh; the final combine
        // only 3N doubles. PME comm time must be nonzero and the mesh
        // traffic visible in bytes sent.
        let system = water_box(2, 3.1);
        let params = PmeParams {
            grid: Dims3::new(24, 24, 24),
            order: 4,
            beta: 0.34,
        };
        let cfg = ClusterConfig::uni(4, NetworkKind::TcpGigE);
        let sys = &system;
        let out = run_cluster(cfg, |ctx| {
            let mut comm = Comm::new(ctx, Middleware::Mpi);
            let ppme = ParallelPme::new(params, 4);
            ppme.energy_forces(&mut comm, sys, &PIII_1GHZ);
        });
        for o in &out {
            assert!(o.stats.bucket(Phase::Pme).comm > 0.0);
            // Two transposes, each sending my_planes x other_cols =
            // (24/4) x (576*3/4) complex points ~ 41 KB, plus the
            // combine: at least ~60 KB from each rank.
            assert!(o.stats.bytes_sent > 60_000, "bytes {}", o.stats.bytes_sent);
        }
    }
}
