//! Offline stand-in for the `rayon` crate, now backed by the real
//! `cpc-pool` work-stealing executor. `into_par_iter()` materializes
//! the items and maps them through the process-wide pool with results
//! committed in task-index order, so the output is byte-identical to
//! the old sequential shim at any thread count. `CPC_THREADS` selects
//! the worker count and `CPC_POOL_SEQUENTIAL=1` restores the
//! sequential fallback for bisection.

/// The traits the workspace imports via `use rayon::prelude::*`.
pub mod prelude {
    pub use super::iter::{IntoParallelIterator, ParIter, ParallelIterator};
}

/// Pool-backed re-implementations of the rayon iterator entry points.
pub mod iter {
    /// Conversion into a parallel iterator over the global `cpc-pool`.
    pub trait IntoParallelIterator {
        /// The element type.
        type Item;
        /// The parallel iterator type produced.
        type Iter;
        /// Converts `self` into a pool-backed parallel iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Item = I::Item;
        type Iter = ParIter<I::Item>;
        fn into_par_iter(self) -> ParIter<I::Item> {
            ParIter {
                items: self.into_iter().collect(),
            }
        }
    }

    /// A materialized parallel iterator: adapters execute eagerly on
    /// the global pool, index order preserved end to end.
    pub struct ParIter<T> {
        items: Vec<T>,
    }

    impl<T: Clone + Send + Sync> ParIter<T> {
        /// Parallel `map`, results in input order.
        pub fn map<R, F>(self, f: F) -> ParIter<R>
        where
            R: Send,
            F: Fn(T) -> R + Sync,
        {
            ParIter {
                items: cpc_pool::global().par_map_indexed(&self.items, |_, t| f(t.clone())),
            }
        }

        /// Parallel `filter_map`, survivors in input order.
        pub fn filter_map<R, F>(self, f: F) -> ParIter<R>
        where
            R: Send,
            F: Fn(T) -> Option<R> + Sync,
        {
            let mapped = cpc_pool::global().par_map_indexed(&self.items, |_, t| f(t.clone()));
            ParIter {
                items: mapped.into_iter().flatten().collect(),
            }
        }
    }

    impl<T> ParIter<T> {
        /// Gather into any `FromIterator` collection, in order.
        pub fn collect<C: FromIterator<T>>(self) -> C {
            self.items.into_iter().collect()
        }
    }

    /// Marker trait kept so `use rayon::prelude::*` stays valid; the
    /// adapters are inherent methods on [`ParIter`].
    pub trait ParallelIterator {}
    impl<T> ParallelIterator for ParIter<T> {}
}

#[cfg(test)]
mod tests {
    use super::iter::IntoParallelIterator;

    #[test]
    fn filter_map_collect_matches_sequential_iterator() {
        let par: Vec<usize> = (0..1000usize)
            .into_par_iter()
            .filter_map(|i| (i % 7 == 0).then_some(i * 2))
            .collect();
        let seq: Vec<usize> = (0..1000usize)
            .filter_map(|i| (i % 7 == 0).then_some(i * 2))
            .collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn map_preserves_input_order() {
        let par: Vec<i64> = vec![5i64, -3, 9, 0]
            .into_par_iter()
            .map(|x| x * x)
            .collect();
        assert_eq!(par, vec![25, 9, 81, 0]);
    }
}
