//! Offline stand-in for the `rayon` crate. `into_par_iter()` degrades
//! to the plain sequential iterator — same results, no thread pool —
//! which is all this workspace needs (the virtual cluster supplies its
//! own parallelism model; rayon is only a host-side convenience).

/// The traits the workspace imports via `use rayon::prelude::*`.
pub mod prelude {
    pub use super::iter::{IntoParallelIterator, ParallelIterator};
}

/// Sequential re-implementations of the rayon iterator entry points.
pub mod iter {
    /// Conversion into a "parallel" iterator (here: the sequential one).
    pub trait IntoParallelIterator {
        /// The element type.
        type Item;
        /// The iterator type produced.
        type Iter: Iterator<Item = Self::Item>;
        /// Converts `self` into an iterator; sequential in this shim.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Item = I::Item;
        type Iter = I::IntoIter;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// Marker alias so `ParallelIterator` method chains (`filter_map`,
    /// `map`, `collect`, ...) resolve to the std `Iterator` methods.
    pub trait ParallelIterator: Iterator {}
    impl<I: Iterator> ParallelIterator for I {}
}
