//! Offline stand-in for `serde_json`, rendering and parsing the serde
//! shim's [`Value`] tree. Follows serde_json's observable conventions:
//! struct → object with fields in declaration order, non-finite floats
//! → `null`, floats printed via Rust's shortest-roundtrip `{}` format,
//! numbers without fraction/exponent parsed as integers.

pub use serde::value::Value;

/// Error from JSON rendering or parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Result alias matching serde_json's.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` to a pretty-printed (2-space indent) JSON string.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses a JSON string into any shim-`Deserialize` type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

// ---- writer ---------------------------------------------------------

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(f: f64, out: &mut String) {
    if !f.is_finite() {
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e15 {
        // serde_json prints whole floats with a trailing ".0"
        out.push_str(&format!("{f:.1}"));
    } else {
        out.push_str(&format!("{f}"));
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(f) => write_float(*f, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                    if indent.is_none() {
                        // compact: no space after comma, as serde_json
                    }
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

// ---- parser ---------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing data at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // multi-byte UTF-8 sequences pass through untouched
                    let start = self.pos;
                    self.pos += 1;
                    while self.bytes.get(self.pos).is_some_and(|b| b & 0xc0 == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| Error::new("invalid UTF-8 in string"))?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<i64>()
                .map(Value::Int)
                .or_else(|_| text.parse::<f64>().map(Value::Float))
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]`, got {:?} at byte {}",
                        other.map(|b| b as char),
                        self.pos
                    )));
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}`, got {:?} at byte {}",
                        other.map(|b| b as char),
                        self.pos
                    )));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for src in ["null", "true", "-42", "3.5", "\"hi\\nthere\"", "[]", "{}"] {
            let v = parse_value(src).unwrap();
            let mut out = String::new();
            write_value(&v, &mut out, None, 0);
            let v2 = parse_value(&out).unwrap();
            assert_eq!(v, v2, "{src}");
        }
    }

    #[test]
    fn nested_roundtrip() {
        let src = r#"{"a": [1, 2.5, {"b": null}], "c": "x"}"#;
        let v = parse_value(src).unwrap();
        assert_eq!(v["a"][1].as_f64(), Some(2.5));
        assert!(v["a"][2]["b"].is_null());
        let compact = to_string(&v).unwrap();
        let v2: Value = from_str(&compact).unwrap();
        assert_eq!(v, v2);
    }
}
