//! The JSON-like data model the serde shim serializes through.

/// A JSON-shaped tree value. Object keys preserve insertion order so
/// serialized output is deterministic and mirrors field declaration
/// order, as serde_json does for structs.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also used for `None` and non-finite floats).
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Integer (JSON number without fraction or exponent).
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object as ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Returns true if this is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Borrows the boolean if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric view as `i64` (integers only).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric view as `u64` (non-negative integers only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    /// Numeric view as `f64` (integers widen losslessly enough here).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(n) => Some(*n as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Borrows the string if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Borrows the elements if this is an `Array`.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Borrows the key/value pairs if this is an `Object`.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Looks up a key in an `Object` (None for other variants).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|pairs| obj_get(pairs, key))
    }
}

/// Looks up `key` in an ordered object pair list.
pub fn obj_get<'a>(pairs: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        static NULL: Value = Value::Null;
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}
