//! Offline stand-in for the `serde` crate.
//!
//! The real serde is a visitor-based framework; this shim keeps the
//! same *spelling* at use sites (`use serde::{Deserialize, Serialize}`
//! plus `#[derive(Serialize, Deserialize)]`) but routes everything
//! through a small JSON-like [`value::Value`] tree: serializing
//! converts a type to a `Value`, deserializing reads one back. The
//! companion `serde_json` shim renders and parses that tree as JSON
//! with serde-compatible conventions (struct → object, unit enum
//! variant → string, data-carrying variant → single-key object,
//! non-finite floats → null).
//!
//! Only the surface this workspace uses is implemented. Notably the
//! derive macros reject generic types and `#[serde(...)]` attributes.

pub mod value;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

pub use value::Value;

/// Error raised when a [`Value`] does not match the requested type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with the given message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde shim error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reads `Self` back from a [`Value`], failing on shape mismatch.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---- primitive impls ------------------------------------------------

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(format!("integer {n} out of range"))),
                    Value::Float(f) if f.fract() == 0.0 => Ok(*f as $t),
                    other => Err(Error::custom(format!(
                        "expected integer, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize, u8, u16, u32, usize);

impl Serialize for u64 {
    fn to_value(&self) -> Value {
        if *self <= i64::MAX as u64 {
            Value::Int(*self as i64)
        } else {
            Value::Float(*self as f64)
        }
    }
}

impl Deserialize for u64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Int(n) if *n >= 0 => Ok(*n as u64),
            Value::Int(n) => Err(Error::custom(format!("negative integer {n} for u64"))),
            Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 => Ok(*f as u64),
            other => Err(Error::custom(format!("expected u64, got {other:?}"))),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(n) => Ok(*n as f64),
            // serde_json writes non-finite floats as null.
            Value::Null => Ok(f64::NAN),
            other => Err(Error::custom(format!("expected float, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::custom(format!("expected char, got {other:?}"))),
        }
    }
}

// ---- composite impls ------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        let n = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected array of length {N}, got {n}")))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) => {
                        let expect = [$($idx),+].len();
                        if items.len() != expect {
                            return Err(Error::custom(format!(
                                "expected {expect}-tuple, got array of {}",
                                items.len()
                            )));
                        }
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(Error::custom(format!(
                        "expected tuple array, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
