//! Offline stand-in for the `proptest` crate: deterministic
//! strategy-based randomized testing with the same spelling at use
//! sites (`proptest!`, `prop_assert!`, range/tuple/vec strategies,
//! `prop_map`/`prop_filter`/`prop_flat_map`, `Just`, `bool::ANY`).
//!
//! Unlike the real proptest there is no shrinking and no persisted
//! failure seeds: each test derives a fixed RNG stream from its module
//! path and name, so failures reproduce exactly on every run.

/// Deterministic random source used by all strategies.
pub mod test_runner {
    /// SplitMix64 generator seeded from the test's name.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the stream from an arbitrary label (FNV-1a hash).
        pub fn deterministic(label: &str) -> Self {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in label.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn uniform(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / 9007199254740992.0)
        }

        /// Uniform integer in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

/// Per-test configuration (`cases` is the number of generated inputs).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each `proptest!` test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::test_runner::TestRng;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value from the deterministic stream.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Rejects values failing `pred`, retrying (bounded) until one
        /// passes; panics with `reason` if generation stalls.
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            reason: impl Into<String>,
            pred: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                reason: reason.into(),
                pred,
            }
        }

        /// Generates an intermediate value, then draws from the
        /// strategy `f` builds from it.
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Strategy always yielding a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Output of [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        reason: String,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..100_000 {
                let candidate = self.inner.generate(rng);
                if (self.pred)(&candidate) {
                    return candidate;
                }
            }
            panic!("prop_filter exhausted retries: {}", self.reason);
        }
    }

    /// Output of [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.uniform() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            (self.start as f64 + rng.uniform() * (self.end - self.start) as f64) as f32
        }
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let width = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(width) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty integer range strategy");
                    let width = (hi - lo + 1) as u64;
                    (lo + rng.below(width) as i128) as $t
                }
            }
        )*};
    }

    impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy producing vectors with lengths drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// Vectors of `element` values with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy for arbitrary booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Generates `true` or `false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// The glob-import surface used by the workspace's proptests.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from
/// strategies; each runs `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome = (|| -> ::std::result::Result<(), ::std::string::String> {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(msg) = outcome {
                    panic!("proptest case {case} of {}: {msg}", stringify!($name));
                }
            }
        }
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body, reporting the
/// failing case instead of unwinding immediately.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(::std::format!(
                "{}\n  left: {:?}\n right: {:?}",
                ::std::format!($($fmt)+), l, r
            ));
        }
    }};
}
