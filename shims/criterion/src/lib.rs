//! Offline stand-in for the `criterion` crate. Provides the harness
//! surface the workspace's benches use — `Criterion`, benchmark
//! groups, `Bencher::iter`/`iter_batched`, `criterion_group!` /
//! `criterion_main!` — with a simple adaptive wall-clock measurement
//! (warm-up, then enough iterations to cover a fixed window) instead
//! of criterion's statistical machinery. `black_box` should be taken
//! from `std::hint`, as the benches already do.

use std::time::{Duration, Instant};

/// Minimum measurement window per benchmark.
const MEASURE_WINDOW: Duration = Duration::from_millis(200);

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs `f` as a named benchmark and prints its mean time.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_named(id.as_ref(), &mut f);
        self
    }

    /// Opens a named group; member benchmarks print as `group/id`.
    pub fn benchmark_group(&mut self, name: impl AsRef<str>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.as_ref().to_string(),
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs `f` as `group/id`.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_named(&format!("{}/{}", self.name, id.as_ref()), &mut f);
        self
    }

    /// Ends the group (no-op in the shim; kept for API parity).
    pub fn finish(self) {}
}

fn run_named<F: FnMut(&mut Bencher)>(name: &str, f: &mut F) {
    let mut b = Bencher {
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    if b.iters > 0 {
        let ns = b.elapsed.as_nanos() as f64 / b.iters as f64;
        println!("{name:<48} {:>14.1} ns/iter ({} iters)", ns, b.iters);
    } else {
        println!("{name:<48} (no measurement)");
    }
}

/// Timing state handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over an adaptive number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // warm-up
        for _ in 0..3 {
            std::hint::black_box(routine());
        }
        let mut iters = 0u64;
        let start = Instant::now();
        loop {
            std::hint::black_box(routine());
            iters += 1;
            if start.elapsed() >= MEASURE_WINDOW && iters >= 10 {
                break;
            }
            if iters >= 1_000_000 {
                break;
            }
        }
        self.iters = iters;
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        std::hint::black_box(routine(setup()));
        let mut iters = 0u64;
        let mut measured = Duration::ZERO;
        loop {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            measured += start.elapsed();
            iters += 1;
            if measured >= MEASURE_WINDOW && iters >= 10 {
                break;
            }
            if iters >= 1_000_000 {
                break;
            }
        }
        self.iters = iters;
        self.elapsed = measured;
    }
}

/// Batch sizing hint (ignored by the shim's measurement loop).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Inputs regenerated every iteration.
    PerIteration,
}

/// Collects benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = { let _ = $cfg; $crate::Criterion::default() };
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main()` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
