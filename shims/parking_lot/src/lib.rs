//! Offline stand-in for the `parking_lot` crate, backed by
//! `std::sync`. Only the surface this workspace uses is provided:
//! [`Mutex`] (whose `lock` returns a guard directly, no `Result`) and
//! [`Condvar`] (whose `wait` takes `&mut MutexGuard`). Like the real
//! parking_lot — and unlike std — locks are *not* poisoned when a
//! thread panics while holding one; the cluster simulator relies on
//! this because crashed ranks unwind via panic.

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// Mutual-exclusion primitive; `lock()` returns the guard directly.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex wrapping `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available. Poisoning
    /// from a panicked holder is ignored, matching parking_lot.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

/// RAII guard returned by [`Mutex::lock`]. Wraps the std guard in an
/// `Option` so [`Condvar::wait`] can temporarily take ownership.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside wait")
    }
}

/// Condition variable with parking_lot's `wait(&mut guard)` signature.
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing the mutex while waiting. The
    /// guard is reacquired (ignoring poison) before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present before wait");
        guard.inner = Some(
            self.inner
                .wait(std_guard)
                .unwrap_or_else(PoisonError::into_inner),
        );
    }

    /// Blocks until notified or `timeout` elapses, releasing the mutex
    /// while waiting. The guard is reacquired (ignoring poison) before
    /// returning. Mirrors parking_lot's `wait_for`.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard present before wait");
        let (reacquired, result) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(reacquired);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

/// Outcome of a timed condition-variable wait (see
/// [`Condvar::wait_for`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True when the wait ended because the timeout elapsed rather
    /// than a notification.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}
