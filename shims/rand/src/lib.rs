//! Offline stand-in for the `rand` crate. The workspace declares rand
//! in a few manifests but generates all physics randomness with its
//! own seeded xorshift streams; this shim supplies a tiny deterministic
//! generator with the most common rand entry points so the dependency
//! resolves without network access.

/// Minimal RNG core trait (subset of `rand::RngCore`).
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Sampling helpers (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform `f64` in `[0, 1)` via the top 53 bits.
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / 9007199254740992.0)
    }
    /// Uniform `usize` in `[0, bound)`; `bound` must be nonzero.
    fn gen_range_usize(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }
}

impl<T: RngCore> Rng for T {}

/// Deterministic xorshift64* generator.
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    /// Seeds the generator; a zero seed is remapped to a fixed odd word.
    pub fn seed_from_u64(seed: u64) -> Self {
        SmallRng {
            state: if seed == 0 { 0x9e3779b97f4a7c15 } else { seed },
        }
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545f4914f6cdd1d)
    }
}

/// Re-exports in the shape of `rand::prelude`.
pub mod prelude {
    pub use super::{Rng, RngCore, SmallRng};
}
