//! Offline stand-in for the `crossbeam` crate. The workspace declares
//! it but does not call into it; this empty crate satisfies the
//! dependency without network access. `scope` is provided as a thin
//! wrapper over `std::thread::scope` in case future code reaches for
//! the most common crossbeam entry point.

/// Structured concurrency via `std::thread::scope`.
pub mod thread {
    /// Runs `f` inside a `std::thread::scope`.
    pub fn scope<'env, F, T>(f: F) -> Result<T, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&'scope std::thread::Scope<'scope, 'env>) -> T,
    {
        Ok(std::thread::scope(f))
    }
}
