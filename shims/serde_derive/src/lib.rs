//! Offline stand-in for `serde_derive`. Parses the item's raw
//! `TokenStream` by hand (no syn/quote available offline) and emits
//! `impl serde::Serialize` / `impl serde::Deserialize` blocks that
//! route through the shim's `Value` data model. Supports non-generic
//! structs (named, tuple, unit) and enums (unit, tuple and struct
//! variants) — exactly the shapes this workspace derives. `#[serde]`
//! attributes and generics are rejected with a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write;

/// Derives the shim's `Serialize` for a non-generic struct or enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives the shim's `Deserialize` for a non-generic struct or enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---- item model -----------------------------------------------------

struct Field {
    name: String,
    /// True when the field's type spells `Option<...>`: absent keys
    /// deserialize to `None` instead of erroring.
    is_option: bool,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Shape {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    shape: Shape,
}

// ---- token walking --------------------------------------------------

fn skip_attrs(toks: &[TokenTree], i: &mut usize) {
    while *i < toks.len() {
        match &toks[*i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = toks.get(*i + 1) {
                    let attr = g.stream().to_string();
                    if attr.starts_with("serde") {
                        panic!("serde shim derive: #[serde(...)] attributes are unsupported");
                    }
                }
                *i += 2;
            }
            _ => break,
        }
    }
}

fn skip_vis(toks: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = toks.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

fn expect_ident(toks: &[TokenTree], i: &mut usize, what: &str) -> String {
    match toks.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde shim derive: expected {what}, found {other:?}"),
    }
}

fn is_punct(tok: Option<&TokenTree>, c: char) -> bool {
    matches!(tok, Some(TokenTree::Punct(p)) if p.as_char() == c)
}

/// Consumes type tokens up to (not including) a top-level `,`,
/// tracking `<...>` nesting so generic arguments don't split fields.
/// Returns the first identifier of the type (for `Option` detection).
fn skip_type(toks: &[TokenTree], i: &mut usize) -> Option<String> {
    let mut angle = 0i64;
    let mut first_ident = None;
    while *i < toks.len() {
        match &toks[*i] {
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => break,
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Ident(id) if first_ident.is_none() => {
                first_ident = Some(id.to_string());
            }
            _ => {}
        }
        *i += 1;
    }
    first_ident
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < toks.len() {
        skip_attrs(&toks, &mut i);
        skip_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = expect_ident(&toks, &mut i, "field name");
        if !is_punct(toks.get(i), ':') {
            panic!("serde shim derive: expected `:` after field `{name}`");
        }
        i += 1;
        let first = skip_type(&toks, &mut i);
        if i < toks.len() {
            i += 1; // the separating comma
        }
        fields.push(Field {
            name,
            is_option: first.as_deref() == Some("Option"),
        });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut count = 0;
    while i < toks.len() {
        skip_attrs(&toks, &mut i);
        skip_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        skip_type(&toks, &mut i);
        count += 1;
        if i < toks.len() {
            i += 1; // comma
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < toks.len() {
        skip_attrs(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = expect_ident(&toks, &mut i, "variant name");
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        if is_punct(toks.get(i), '=') {
            // explicit discriminant: skip its expression
            i += 1;
            skip_type(&toks, &mut i);
        }
        if i < toks.len() {
            i += 1; // comma
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs(&toks, &mut i);
    skip_vis(&toks, &mut i);
    let kw = expect_ident(&toks, &mut i, "`struct` or `enum`");
    let name = expect_ident(&toks, &mut i, "type name");
    if is_punct(toks.get(i), '<') {
        panic!("serde shim derive: generic type `{name}` is unsupported");
    }
    let shape = match kw.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            _ => Shape::UnitStruct,
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde shim derive: malformed enum body {other:?}"),
        },
        other => panic!("serde shim derive: expected struct or enum, found `{other}`"),
    };
    Item { name, shape }
}

// ---- code generation ------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let mut body = String::new();
    match &item.shape {
        Shape::NamedStruct(fields) => {
            body.push_str("let mut pairs: ::std::vec::Vec<(::std::string::String, ::serde::value::Value)> = ::std::vec::Vec::new();\n");
            for f in fields {
                let _ = writeln!(
                    body,
                    "pairs.push((::std::string::String::from(\"{0}\"), ::serde::Serialize::to_value(&self.{0})));",
                    f.name
                );
            }
            body.push_str("::serde::value::Value::Object(pairs)\n");
        }
        Shape::TupleStruct(n) => {
            if *n == 1 {
                // serde convention: newtype structs serialize transparently
                body.push_str("::serde::Serialize::to_value(&self.0)\n");
            } else {
                body.push_str("let mut items: ::std::vec::Vec<::serde::value::Value> = ::std::vec::Vec::new();\n");
                for idx in 0..*n {
                    let _ = writeln!(
                        body,
                        "items.push(::serde::Serialize::to_value(&self.{idx}));"
                    );
                }
                body.push_str("::serde::value::Value::Array(items)\n");
            }
        }
        Shape::UnitStruct => {
            body.push_str("::serde::value::Value::Null\n");
        }
        Shape::Enum(variants) => {
            body.push_str("match self {\n");
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        let _ = writeln!(
                            body,
                            "{name}::{vname} => ::serde::value::Value::Str(::std::string::String::from(\"{vname}\")),"
                        );
                    }
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                        let _ = write!(body, "{name}::{vname}({}) => ", binds.join(", "));
                        if *n == 1 {
                            let _ = writeln!(
                                body,
                                "::serde::value::Value::Object(::std::vec::Vec::from([(::std::string::String::from(\"{vname}\"), ::serde::Serialize::to_value(f0))])),"
                            );
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            let _ = writeln!(
                                body,
                                "::serde::value::Value::Object(::std::vec::Vec::from([(::std::string::String::from(\"{vname}\"), ::serde::value::Value::Array(::std::vec::Vec::from([{}])))])),",
                                items.join(", ")
                            );
                        }
                    }
                    VariantKind::Struct(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let pairs: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{0}\"), ::serde::Serialize::to_value({0}))",
                                    f.name
                                )
                            })
                            .collect();
                        let _ = writeln!(
                            body,
                            "{name}::{vname} {{ {} }} => ::serde::value::Value::Object(::std::vec::Vec::from([(::std::string::String::from(\"{vname}\"), ::serde::value::Value::Object(::std::vec::Vec::from([{}])))])),",
                            binds.join(", "),
                            pairs.join(", ")
                        );
                    }
                }
            }
            body.push_str("}\n");
        }
    }
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::value::Value {{\n{body}}}\n}}\n"
    )
}

fn named_field_inits(fields: &[Field], pairs_expr: &str, ctx: &str) -> String {
    let mut out = String::new();
    for f in fields {
        let fname = &f.name;
        let missing = if f.is_option {
            "::std::option::Option::None".to_string()
        } else {
            format!(
                "return ::std::result::Result::Err(::serde::Error::custom(\"missing field `{fname}` in {ctx}\"))"
            )
        };
        let _ = writeln!(
            out,
            "{fname}: match ::serde::value::obj_get({pairs_expr}, \"{fname}\") {{\n\
             ::std::option::Option::Some(field) => ::serde::Deserialize::from_value(field)?,\n\
             ::std::option::Option::None => {missing},\n\
             }},"
        );
    }
    out
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let mut body = String::new();
    match &item.shape {
        Shape::NamedStruct(fields) => {
            let _ = writeln!(
                body,
                "let pairs = v.as_object().ok_or_else(|| ::serde::Error::custom(\"expected object for {name}\"))?;"
            );
            let _ = writeln!(
                body,
                "::std::result::Result::Ok({name} {{\n{}}})",
                named_field_inits(fields, "pairs", name)
            );
        }
        Shape::TupleStruct(n) => {
            if *n == 1 {
                let _ = writeln!(
                    body,
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))"
                );
            } else {
                let _ = writeln!(
                    body,
                    "let items = v.as_array().ok_or_else(|| ::serde::Error::custom(\"expected array for {name}\"))?;"
                );
                let _ = writeln!(
                    body,
                    "if items.len() != {n} {{ return ::std::result::Result::Err(::serde::Error::custom(\"wrong arity for {name}\")); }}"
                );
                let inits: Vec<String> = (0..*n)
                    .map(|k| format!("::serde::Deserialize::from_value(&items[{k}])?"))
                    .collect();
                let _ = writeln!(
                    body,
                    "::std::result::Result::Ok({name}({}))",
                    inits.join(", ")
                );
            }
        }
        Shape::UnitStruct => {
            let _ = writeln!(body, "let _ = v; ::std::result::Result::Ok({name})");
        }
        Shape::Enum(variants) => {
            body.push_str("match v {\n::serde::value::Value::Str(tag) => match tag.as_str() {\n");
            for v in variants {
                if matches!(v.kind, VariantKind::Unit) {
                    let _ = writeln!(
                        body,
                        "\"{0}\" => ::std::result::Result::Ok({name}::{0}),",
                        v.name
                    );
                }
            }
            let _ = writeln!(
                body,
                "other => ::std::result::Result::Err(::serde::Error::custom(::std::format!(\"unknown variant `{{other}}` for {name}\"))),"
            );
            body.push_str("},\n::serde::value::Value::Object(pairs) if pairs.len() == 1 => {\nlet (tag, inner) = &pairs[0];\nmatch tag.as_str() {\n");
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => {}
                    VariantKind::Tuple(n) => {
                        if *n == 1 {
                            let _ = writeln!(
                                body,
                                "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(::serde::Deserialize::from_value(inner)?)),"
                            );
                        } else {
                            let inits: Vec<String> = (0..*n)
                                .map(|k| format!("::serde::Deserialize::from_value(&items[{k}])?"))
                                .collect();
                            let _ = writeln!(
                                body,
                                "\"{vname}\" => {{\nlet items = inner.as_array().ok_or_else(|| ::serde::Error::custom(\"expected array for {name}::{vname}\"))?;\nif items.len() != {n} {{ return ::std::result::Result::Err(::serde::Error::custom(\"wrong arity for {name}::{vname}\")); }}\n::std::result::Result::Ok({name}::{vname}({}))\n}},",
                                inits.join(", ")
                            );
                        }
                    }
                    VariantKind::Struct(fields) => {
                        let ctx = format!("{name}::{vname}");
                        let _ = writeln!(
                            body,
                            "\"{vname}\" => {{\nlet fields = inner.as_object().ok_or_else(|| ::serde::Error::custom(\"expected object for {ctx}\"))?;\n::std::result::Result::Ok({name}::{vname} {{\n{}}})\n}},",
                            named_field_inits(fields, "fields", &ctx)
                        );
                    }
                }
            }
            let _ = writeln!(
                body,
                "other => ::std::result::Result::Err(::serde::Error::custom(::std::format!(\"unknown variant `{{other}}` for {name}\"))),\n}}\n}},"
            );
            let _ = writeln!(
                body,
                "other => ::std::result::Result::Err(::serde::Error::custom(::std::format!(\"expected enum {name}, got {{other:?}}\"))),\n}}"
            );
        }
    }
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::value::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n{body}}}\n}}\n"
    )
}
