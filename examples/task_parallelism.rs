//! The paper's closing recommendation, quantified: "most research
//! groups have multiple CHARMM calculations that could run in parallel"
//! — so when is it better to run M independent calculations (task
//! parallelism) than to gang all processors on one calculation (data
//! parallelism)?
//!
//! ```text
//! cargo run --release --example task_parallelism [--quick]
//! ```

use cpc::prelude::*;
use cpc_workload::runner::{measure_with_model, paper_pme_params, quick_pme_params};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (system, model, steps) = if quick {
        (
            cpc_workload::runner::quick_system(),
            EnergyModel::Pme(quick_pme_params()),
            2,
        )
    } else {
        (
            cpc_workload::runner::myoglobin_shared().clone(),
            EnergyModel::Pme(paper_pme_params()),
            10,
        )
    };
    let cluster_cpus = 8usize;

    println!(
        "An {cluster_cpus}-CPU cluster and a queue of independent CHARMM calculations\n\
         ({} MD steps each). Strategies: M concurrent jobs of p = {cluster_cpus}/M CPUs.\n",
        steps
    );
    println!(
        "{:<24} {:>10} {:>8} {:>14} {:>22} {:>12}",
        "network", "jobs x p", "job(s)", "turnaround(s)", "throughput(jobs/min)", "efficiency"
    );
    for network in [NetworkKind::TcpGigE, NetworkKind::MyrinetGm] {
        let t1 = measure_with_model(
            &system,
            ExperimentPoint {
                network,
                ..ExperimentPoint::focal(1)
            },
            steps,
            model,
        )
        .energy_time();
        for m_jobs in [1usize, 2, 4, 8] {
            let p = cluster_cpus / m_jobs;
            let point = ExperimentPoint {
                network,
                ..ExperimentPoint::focal(p)
            };
            let t_job = measure_with_model(&system, point, steps, model).energy_time();
            // M independent jobs run side by side (separate nodes):
            // turnaround = one job's time; throughput = M jobs per that.
            let throughput = m_jobs as f64 / t_job * 60.0;
            let efficiency = t1 / (t_job * p as f64);
            println!(
                "{:<24} {:>6}x{:<3} {:>8.2} {:>14.2} {:>22.1} {:>11.0}%",
                network.label(),
                m_jobs,
                p,
                t_job,
                t_job,
                throughput,
                100.0 * efficiency
            );
        }
        println!();
    }
    println!(
        "Reading: on TCP/IP, throughput is maximized by task parallelism (8x1)\n\
         while a lone scientist wanting fast turnaround still gains from a few\n\
         CPUs per job; on Myrinet, data parallelism stays efficient to p=8, so\n\
         both goals align — matching the paper's cost-benefit discussion."
    );
}
