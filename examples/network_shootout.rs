//! Network shootout (paper Section 4.1 + Figure 7): the same CHARMM
//! calculation on four interconnect/software stacks, including the
//! Fast Ethernet configuration from the companion report [17].
//!
//! ```text
//! cargo run --release --example network_shootout [--quick]
//! ```

use cpc::prelude::*;
use cpc_workload::runner::{measure_with_model, paper_pme_params, quick_pme_params};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (system, model, steps) = if quick {
        (
            cpc_workload::runner::quick_system(),
            EnergyModel::Pme(quick_pme_params()),
            2,
        )
    } else {
        (
            cpc_workload::runner::myoglobin_shared().clone(),
            EnergyModel::Pme(paper_pme_params()),
            10,
        )
    };

    let networks = [
        NetworkKind::FastEthernet,
        NetworkKind::TcpGigE,
        NetworkKind::ScoreGigE,
        NetworkKind::MyrinetGm,
    ];

    println!(
        "{:<26} {:>3} {:>10} {:>7} {:>7} {:>7} {:>22}",
        "network", "p", "total(s)", "comp%", "comm%", "sync%", "MB/s avg (min..max)"
    );
    for network in networks {
        for p in [2usize, 4, 8] {
            let point = ExperimentPoint {
                network,
                ..ExperimentPoint::focal(p)
            };
            let m = measure_with_model(&system, point, steps, model);
            let (comp, comm, sync) = m.energy_pct;
            let tp = m
                .throughput
                .map(|(a, lo, hi)| format!("{a:6.1} ({lo:5.1}..{hi:6.1})"))
                .unwrap_or_else(|| "-".into());
            println!(
                "{:<26} {:>3} {:>10.3} {:>6.1}% {:>6.1}% {:>6.1}% {:>22}",
                network.label(),
                p,
                m.energy_time(),
                comp,
                comm,
                sync,
                tp
            );
        }
        println!();
    }
    println!(
        "Reading (matches the paper): Fast Ethernet and Gigabit Ethernet under\n\
         TCP/IP behave almost identically — the bottleneck is the protocol\n\
         stack, not the wire. SCore on the *same* Ethernet recovers most of\n\
         Myrinet's advantage purely in software; a large variation of the\n\
         throughput numbers is the warning sign of an unstable configuration."
    );
}
