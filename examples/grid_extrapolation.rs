//! Extrapolation beyond clusters (paper Section 5): "the detailed
//! performance figures ... allow to derive good estimates about the
//! benefits of moving applications to novel computing platforms such
//! as widely distributed computers (grid)".
//!
//! We take the paper up on that: the same CHARMM calculation measured
//! on the cluster networks and on wide-area grid links, plus the
//! task-parallelism alternative the paper recommends.
//!
//! ```text
//! cargo run --release --example grid_extrapolation [--quick]
//! ```

use cpc::prelude::*;
use cpc_workload::runner::{measure_with_model, paper_pme_params, quick_pme_params};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (system, model, steps) = if quick {
        (
            cpc_workload::runner::quick_system(),
            EnergyModel::Pme(quick_pme_params()),
            2,
        )
    } else {
        (
            cpc_workload::runner::myoglobin_shared().clone(),
            EnergyModel::Pme(paper_pme_params()),
            10,
        )
    };

    println!("One CHARMM calculation, data-parallel across sites/nodes:");
    println!(
        "{:<26} {:>3} {:>12} {:>9}",
        "platform", "p", "total(s)", "speedup"
    );
    let mut t1 = 0.0;
    for (network, procs) in [
        (NetworkKind::MyrinetGm, 1usize),
        (NetworkKind::MyrinetGm, 8),
        (NetworkKind::TcpGigE, 8),
        (NetworkKind::WideArea, 2),
        (NetworkKind::WideArea, 4),
        (NetworkKind::WideArea, 8),
    ] {
        let point = ExperimentPoint {
            network,
            ..ExperimentPoint::focal(procs)
        };
        let m = measure_with_model(&system, point, steps, model);
        if procs == 1 {
            t1 = m.energy_time();
        }
        println!(
            "{:<26} {:>3} {:>12.3} {:>8.2}x",
            network.label(),
            procs,
            m.energy_time(),
            t1 / m.energy_time()
        );
    }

    println!(
        "\nReading: data parallelism across wide-area links is a non-starter —\n\
         the energy calculation gets *slower* with every site added. On the\n\
         grid, CHARMM parallelism must stay task-level (many independent\n\
         calculations), with data parallelism confined inside each cluster:\n\
         exactly what the paper's breakdown predicts, and what the Legion\n\
         experience it cites [15] found in practice."
    );
}
