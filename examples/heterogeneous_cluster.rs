//! Can I add my new fast nodes to the old cluster? A question every
//! lab running CHARMM in 2002 faced — and a trap: the replicated-data
//! decomposition partitions work statically, so the *slowest* node
//! paces everyone (the fast nodes wait at every force combine).
//!
//! ```text
//! cargo run --release --example heterogeneous_cluster [--quick]
//! ```

use cpc::prelude::*;
use cpc_charmm::run_parallel_md;
use cpc_workload::runner::{paper_pme_params, quick_pme_params};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (system, model, steps) = if quick {
        (
            cpc_workload::runner::quick_system(),
            EnergyModel::Pme(quick_pme_params()),
            2,
        )
    } else {
        (
            cpc_workload::runner::myoglobin_shared().clone(),
            EnergyModel::Pme(paper_pme_params()),
            10,
        )
    };

    let run = |cluster: ClusterConfig| {
        let cfg = MdConfig {
            steps,
            ..MdConfig::paper_protocol(model, Middleware::Mpi, cluster)
        };
        run_parallel_md(&system, &cfg).energy_time()
    };

    println!("8 Myrinet nodes, {} MD steps, PME model:\n", steps);
    println!("{:<44} {:>10}", "configuration", "total(s)");
    let uniform_old = run(ClusterConfig::uni(8, NetworkKind::MyrinetGm).with_slow_nodes(8, 1.0));
    println!(
        "{:<44} {:>10.3}",
        "8 x 1.0 GHz (the old cluster)", uniform_old
    );

    let mixed = run(ClusterConfig::uni(8, NetworkKind::MyrinetGm).with_slow_nodes(4, 0.5));
    println!(
        "{:<44} {:>10.3}",
        "4 x 0.5 GHz + 4 x 1.0 GHz (mixed)", mixed
    );

    let slow_only = run(ClusterConfig::uni(4, NetworkKind::MyrinetGm).with_slow_nodes(4, 0.5));
    println!("{:<44} {:>10.3}", "4 x 0.5 GHz alone", slow_only);

    let fast_only = run(ClusterConfig::uni(4, NetworkKind::MyrinetGm));
    println!("{:<44} {:>10.3}", "4 x 1.0 GHz alone", fast_only);

    let gain = 100.0 * (fast_only / mixed - 1.0);
    let verdict = if gain <= 0.0 {
        format!("fail to beat the four fast ones alone ({gain:.0}% change)")
    } else {
        format!("barely beat the four fast ones alone (+{gain:.0}%)")
    };
    println!(
        "\nReading: with static (replicated-data) partitioning the mixed\n\
         cluster runs at the pace of its slowest nodes — eight mixed nodes\n\
         {verdict}. Heterogeneity needs speed-weighted partitioning, which\n\
         CHARMM's equal-pair split does not provide."
    );
}
