//! Is the second CPU worth it? (paper Section 4.3 / Figure 9)
//!
//! Compares uni- and dual-processor node configurations across
//! networks, separating the two mechanisms: shared-memory contention
//! (mild, everywhere) and NIC interrupt serialization (brutal, TCP
//! only).
//!
//! ```text
//! cargo run --release --example dual_processor_nodes [--quick]
//! ```

use cpc::prelude::*;
use cpc_workload::runner::{measure_with_model, paper_pme_params, quick_pme_params};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (system, model, steps) = if quick {
        (
            cpc_workload::runner::quick_system(),
            EnergyModel::Pme(quick_pme_params()),
            2,
        )
    } else {
        (
            cpc_workload::runner::myoglobin_shared().clone(),
            EnergyModel::Pme(paper_pme_params()),
            10,
        )
    };

    println!(
        "{:<24} {:>3} {:>6} {:>12} {:>12} {:>9}",
        "network", "p", "nodes", "uni total(s)", "dual total(s)", "dual/uni"
    );
    for network in [
        NetworkKind::TcpGigE,
        NetworkKind::ScoreGigE,
        NetworkKind::MyrinetGm,
    ] {
        for p in [2usize, 4, 8] {
            let uni = measure_with_model(
                &system,
                ExperimentPoint {
                    network,
                    ..ExperimentPoint::focal(p)
                },
                steps,
                model,
            );
            let dual_point = ExperimentPoint {
                network,
                node: NodeConfig::Dual,
                ..ExperimentPoint::focal(p)
            };
            let dual = measure_with_model(&system, dual_point, steps, model);
            println!(
                "{:<24} {:>3} {:>6} {:>12.3} {:>12.3} {:>8.2}x",
                network.label(),
                p,
                dual_point.cluster().nodes(),
                uni.energy_time(),
                dual.energy_time(),
                dual.energy_time() / uni.energy_time()
            );
        }
        println!();
    }
    println!(
        "Reading: dual-processor nodes halve the node count (and cost) but\n\
         over TCP/IP the shared interrupt path serializes packet handling,\n\
         destroying scalability; SCore and Myrinet use shared-memory /\n\
         coprocessor drivers and barely notice — exactly Figure 9's contrast."
    );
}
