//! The paper's headline question, answered on the virtual cluster: how
//! many processors can a single CHARMM calculation use before
//! scalability runs out?
//!
//! Runs the full 3552-atom myoglobin workload (10 MD steps, PME model)
//! on 1..16 processors for each network and prints speedups.
//!
//! ```text
//! cargo run --release --example myoglobin_scaling [--quick]
//! ```

use cpc::prelude::*;
use cpc_workload::runner::{measure_with_model, paper_pme_params, quick_pme_params};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (system, model, steps) = if quick {
        (
            cpc_workload::runner::quick_system(),
            EnergyModel::Pme(quick_pme_params()),
            2,
        )
    } else {
        (
            cpc_workload::runner::myoglobin_shared().clone(),
            EnergyModel::Pme(paper_pme_params()),
            10,
        )
    };
    println!(
        "Myoglobin-class system: {} atoms, {} MD steps per measurement\n",
        system.n_atoms(),
        steps
    );

    let networks = [
        NetworkKind::TcpGigE,
        NetworkKind::ScoreGigE,
        NetworkKind::MyrinetGm,
    ];
    let procs = [1usize, 2, 4, 8, 16];

    println!(
        "{:<24} {:>5} {:>10} {:>10} {:>10} {:>9} {:>11}",
        "network", "p", "classic(s)", "pme(s)", "total(s)", "speedup", "efficiency"
    );
    for network in networks {
        let mut t1 = None;
        for &p in &procs {
            let point = ExperimentPoint {
                network,
                ..ExperimentPoint::focal(p)
            };
            let m = measure_with_model(&system, point, steps, model);
            let total = m.energy_time();
            let t1v = *t1.get_or_insert(total);
            let speedup = t1v / total;
            println!(
                "{:<24} {:>5} {:>10.3} {:>10.3} {:>10.3} {:>8.2}x {:>10.1}%",
                network.label(),
                p,
                m.classic_time,
                m.pme_time,
                total,
                speedup,
                100.0 * speedup / p as f64
            );
        }
        println!();
    }
    println!(
        "Reading: on commodity TCP/IP the calculation stops scaling around 4-8\n\
         processors (the PME part first); SCore software or Myrinet hardware\n\
         extend useful parallelism — the paper's central conclusion."
    );
}
