//! Middleware case study (paper Section 4.2): why did the portable
//! CMPI layer collapse on TCP clusters?
//!
//! Reproduces Figure 8 and then drills down: the cost of one
//! synchronization under each middleware on each network.
//!
//! ```text
//! cargo run --release --example middleware_study [--quick]
//! ```

use cpc::prelude::*;
use cpc_cluster::{elapsed_time, run_cluster};
use cpc_mpi::Comm;
use cpc_workload::runner::{measure_with_model, paper_pme_params, quick_pme_params};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (system, model, steps) = if quick {
        (
            cpc_workload::runner::quick_system(),
            EnergyModel::Pme(quick_pme_params()),
            2,
        )
    } else {
        (
            cpc_workload::runner::myoglobin_shared().clone(),
            EnergyModel::Pme(paper_pme_params()),
            10,
        )
    };

    // --- Figure-8-style comparison.
    println!("Energy-calculation time, TCP/IP on Ethernet, uni-processor nodes:");
    println!(
        "{:<6} {:>3} {:>10} {:>7} {:>7} {:>7}",
        "mw", "p", "total(s)", "comp%", "comm%", "sync%"
    );
    for middleware in [Middleware::Mpi, Middleware::Cmpi] {
        for p in [1usize, 2, 4, 8] {
            let point = ExperimentPoint {
                middleware,
                ..ExperimentPoint::focal(p)
            };
            let m = measure_with_model(&system, point, steps, model);
            let (comp, comm, sync) = m.energy_pct;
            println!(
                "{:<6} {:>3} {:>10.3} {:>6.1}% {:>6.1}% {:>6.1}%",
                middleware.label(),
                p,
                m.energy_time(),
                comp,
                comm,
                sync
            );
        }
    }

    // --- Microbenchmark: one synchronization call.
    println!("\nCost of ONE synchronization call (mean of 50), 8 processors:");
    println!(
        "{:<24} {:>12} {:>12}",
        "network", "MPI barrier", "CMPI sync"
    );
    for network in [
        NetworkKind::TcpGigE,
        NetworkKind::ScoreGigE,
        NetworkKind::MyrinetGm,
    ] {
        let time_for = |mw: Middleware| {
            let cfg = ClusterConfig::uni(8, network);
            let out = run_cluster(cfg, |ctx| {
                let mut comm = Comm::new(ctx, mw);
                for _ in 0..50 {
                    comm.barrier();
                }
            });
            elapsed_time(&out) / 50.0
        };
        println!(
            "{:<24} {:>10.2}us {:>10.2}us",
            network.label(),
            time_for(Middleware::Mpi) * 1e6,
            time_for(Middleware::Cmpi) * 1e6
        );
    }
    println!(
        "\nReading: the CMPI synchronization (p-1 rounds of 1-byte ring\n\
         exchanges) is harmless on SCore/Myrinet but catastrophic over TCP,\n\
         where repeated tiny messages trip delayed-ACK/Nagle timers — the\n\
         paper's explanation for Figure 8's collapse from 4 to 8 processors."
    );
}
