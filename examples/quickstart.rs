//! Quickstart: run a small molecular dynamics simulation sequentially,
//! then measure the same calculation on a simulated PC cluster.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cpc::prelude::*;
use cpc_md::builder::water_box;
use cpc_md::dynamics::Simulation;
use cpc_md::minimize::minimize;

fn main() {
    // --- 1. A sequential simulation: 216 flexible waters, classic
    // CHARMM-style energy (switched LJ + shifted electrostatics, 10 A).
    let mut system = water_box(6, 3.1);
    println!(
        "built a water box: {} atoms, box {:.1} x {:.1} x {:.1} A",
        system.n_atoms(),
        system.pbox.lengths.x,
        system.pbox.lengths.y,
        system.pbox.lengths.z
    );

    let relax = minimize(&mut system, EnergyModel::Classic, 60);
    println!(
        "minimized: {:.1} -> {:.1} kcal/mol in {} steps",
        relax.initial_energy, relax.final_energy, relax.steps_taken
    );
    system.assign_velocities(300.0, 42);

    let mut sim = Simulation::new(system, EnergyModel::Classic, 0.001);
    println!("\nstep  potential(kcal/mol)  kinetic  total  temperature(K)");
    for _ in 0..10 {
        let r = sim.step();
        println!(
            "{:>4}  {:>19.2}  {:>7.2}  {:>6.2}  {:>8.1}",
            r.step,
            r.energy.total(),
            r.kinetic,
            r.total_energy(),
            sim.system.temperature()
        );
    }

    // --- 2. The same workload on virtual PC clusters: how long would
    // the energy calculation take on the paper's platforms?
    let sys = cpc_workload::runner::quick_system();
    let model = EnergyModel::Pme(cpc_workload::runner::quick_pme_params());
    println!("\nvirtual-cluster measurement (2 MD steps, PME model):");
    println!(
        "{:<28} {:>6} {:>12} {:>12}",
        "platform", "procs", "classic(s)", "pme(s)"
    );
    for network in [NetworkKind::TcpGigE, NetworkKind::MyrinetGm] {
        for procs in [1usize, 4] {
            let point = ExperimentPoint {
                network,
                ..ExperimentPoint::focal(procs)
            };
            let m = cpc_workload::runner::measure_with_model(&sys, point, 2, model);
            println!(
                "{:<28} {:>6} {:>12.3} {:>12.3}",
                network.label(),
                procs,
                m.classic_time,
                m.pme_time
            );
        }
    }
    println!("\n(see `cargo run -p cpc-bench --bin fig3` for the full paper figures)");
}
