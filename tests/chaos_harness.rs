//! End-to-end acceptance tests for the chaos harness: sampled
//! schedules uphold every oracle deterministically, a planted
//! known-bad schedule is caught and minimized to a replayable
//! reproducer, and the reproducer artifact round-trips through JSON.

use cpc::prelude::*;
use cpc_charmm::chaos::{flatten, ChaosHarness, Reproducer, Violation};
use cpc_charmm::recover::{AbftConfig, RecoveryConfig};
use cpc_cluster::{FaultPlan, FaultSpace, LinkDegradation, SdcFault, SdcTarget};

fn harness_with(tag: &str, ranks: usize, steps: usize, abft: AbftConfig) -> ChaosHarness {
    let mut sys = cpc_md::builder::water_box(2, 3.1);
    cpc_md::minimize::minimize(&mut sys, EnergyModel::Classic, 40);
    sys.assign_velocities(150.0, 3);
    let cluster = ClusterConfig::uni(ranks, NetworkKind::ScoreGigE).with_stall_timeout(20.0);
    let cfg = MdConfig {
        steps,
        ..MdConfig::paper_protocol(EnergyModel::Classic, Middleware::Mpi, cluster)
    };
    let dir = std::env::temp_dir().join(format!("cpc-chaos-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    ChaosHarness::with_options(sys, cfg, dir, RecoveryConfig::default(), abft).unwrap()
}

/// The default harness: ABFT checksums armed, as the engine ships.
fn harness(tag: &str, ranks: usize, steps: usize) -> ChaosHarness {
    harness_with(tag, ranks, steps, AbftConfig::armed())
}

#[test]
fn sampled_schedules_uphold_every_oracle_deterministically() {
    let h = harness("campaign", 4, 8);
    let space = FaultSpace::new(4, 4, 8, h.golden_wall(), 24);
    for index in 0..12 {
        let plan = space.sample(7, index);
        let a = h.check(&plan);
        assert!(
            a.passed(),
            "schedule {index} violated an oracle: {:?}",
            a.violations
        );
        // The verdict — violations, deviations, wall time — is a pure
        // function of the plan.
        let b = h.check(&plan);
        assert_eq!(a, b, "schedule {index} verdict must be deterministic");
    }
}

#[test]
fn planted_bad_schedule_is_caught_and_minimized_to_replayable_reproducer() {
    // ABFT disarmed: the planted gray flip must reach the final state
    // unrepaired for the deviation oracle (and the minimizer built on
    // it) to have something to catch — this validates the oracles
    // against the pre-ABFT engine.
    let h = harness_with("planted", 4, 8, AbftConfig::default());
    // The planted bug: a gray-zone SDC flip — mid-mantissa, far above
    // the benign bound, invisible to the numerical watchdog — buried
    // among harmless noise events.
    let wall = h.golden_wall();
    let plan = FaultPlan::none()
        .with_loss(0.05)
        .with_straggler(0, 1.5)
        .with_degradation(LinkDegradation::global(0.0, 0.5 * wall, 0.1, 2.0))
        .with_crash(1, 0.7 * wall)
        .with_sdc(SdcFault {
            step: 2,
            target: SdcTarget::Positions,
            atom: 3,
            axis: 1,
            bit: 40,
        });
    assert_eq!(flatten(&plan).len(), 5);

    // Caught by an oracle.
    let report = h.check(&plan);
    assert!(!report.passed(), "the planted schedule must be caught");

    // Minimized: only the corrupting flip survives, and well under the
    // three-event reproducer budget.
    let repro = h.minimize_to_reproducer(&plan, 0, 0);
    assert!(repro.events <= 3, "kept {} events", repro.events);
    assert_eq!(repro.plan.sdc.len(), 1, "the flip is the bug");
    assert!(repro.plan.crashes.is_empty() && repro.plan.loss == 0.0);
    assert!(
        repro
            .violations
            .iter()
            .any(|v| matches!(v, Violation::SilentCorruption { .. })),
        "minimized violations: {:?}",
        repro.violations
    );

    // Replayable: the JSON artifact round-trips and still fails.
    let parsed = Reproducer::from_json(&repro.to_json()).unwrap();
    assert_eq!(parsed, repro);
    let replay = h.check(&parsed.plan);
    assert_eq!(replay.violations, repro.violations, "replay reproduces");
}

#[test]
fn detectable_sdc_recovers_bit_identically_through_the_oracles() {
    // The fuzzer's detectable class: top exponent bit of a position at
    // step >= 2. Disarmed, the numerical watchdog must catch it, roll
    // back, and end bit-identical to golden — deviation exactly zero.
    let plan = FaultPlan::none().with_sdc(SdcFault {
        step: 3,
        target: SdcTarget::Positions,
        atom: 2,
        axis: 0,
        bit: 62,
    });
    let h = harness_with("detectable", 3, 4, AbftConfig::default());
    let report = h.check(&plan);
    assert!(report.passed(), "violations: {:?}", report.violations);
    assert!(report.watchdog_trips >= 1, "the flip must be detected");
    assert_eq!(report.max_deviation, 0.0, "recovery is exact");

    // Armed, the ABFT position bracket repairs the same flip a step
    // earlier — before the energy ever blows up — so the watchdog
    // stays quiet and the trajectory is still exact.
    let armed = harness("detectable-armed", 3, 4);
    let report = armed.check(&plan);
    assert!(report.passed(), "violations: {:?}", report.violations);
    assert!(report.abft_detections >= 1, "ABFT caught it first");
    assert_eq!(report.watchdog_trips, 0, "no rollback needed");
    assert_eq!(report.max_deviation, 0.0, "repair is exact");
}
