//! End-to-end smoke tests for the figure harness: every figure renders
//! (on the quick system) and contains the structure a reader expects.

use cpc::prelude::*;
use cpc_workload::figures;
use cpc_workload::runner::{quick_pme_params, quick_system};

fn lab_for(system: &cpc_md::System) -> Lab<'_> {
    Lab::custom(system, 1, EnergyModel::Pme(quick_pme_params()))
}

#[test]
fn all_figures_render_with_expected_sections() {
    let system = quick_system();
    let mut lab = lab_for(&system);
    let out = figures::all_figures(&mut lab);
    for needle in [
        "Figure 2",
        "Figure 3",
        "Figure 4a",
        "Figure 4b",
        "Figure 5",
        "Figure 6a",
        "Figure 6b",
        "Figure 7",
        "Figure 8a",
        "Figure 8b",
        "Figure 9a",
        "Figure 9b",
        "Full factorial design",
    ] {
        assert!(out.contains(needle), "missing section {needle}");
    }
    // Every network label appears.
    for label in ["TCP/IP on Ethernet", "SCore on Ethernet", "Myrinet"] {
        assert!(out.contains(label));
    }
    // Middleware labels appear in Figure 8.
    assert!(out.contains("MPI"));
    assert!(out.contains("CMPI"));
}

#[test]
fn factorial_covers_all_twelve_cells() {
    let system = quick_system();
    let mut lab = lab_for(&system);
    figures::factorial_table(&mut lab);
    // 12 platform cells x 4 proc counts measured.
    assert_eq!(lab.measurements().len(), 48);
}

#[test]
fn rendering_is_deterministic() {
    let system = quick_system();
    let a = figures::fig3(&mut lab_for(&system));
    let b = figures::fig3(&mut lab_for(&system));
    assert_eq!(a, b);
}

#[test]
fn json_dump_roundtrips() {
    let system = quick_system();
    let mut lab = lab_for(&system);
    lab.measure(ExperimentPoint::focal(2));
    lab.measure(ExperimentPoint {
        network: NetworkKind::MyrinetGm,
        ..ExperimentPoint::focal(4)
    });
    let json = lab.to_json();
    let values: Vec<cpc_workload::Measurement> = serde_json::from_str(&json).unwrap();
    assert_eq!(values.len(), 2);
    assert!(values.iter().all(|m| m.classic_time > 0.0));
}

#[test]
fn percentages_always_sum_to_hundred() {
    let system = quick_system();
    let mut lab = lab_for(&system);
    for p in [1usize, 2, 4, 8] {
        let m = lab.measure(ExperimentPoint::focal(p));
        for (label, (comp, comm, sync)) in [
            ("classic", m.classic_pct),
            ("pme", m.pme_pct),
            ("energy", m.energy_pct),
        ] {
            let total = comp + comm + sync;
            assert!((total - 100.0).abs() < 1e-6, "p={p} {label}: {total}");
            assert!(comp >= 0.0 && comm >= 0.0 && sync >= 0.0);
        }
    }
}
