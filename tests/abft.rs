//! End-to-end acceptance tests for the ABFT layer (ISSUE 5): zero
//! false positives and bit-identical physics across hundreds of
//! fault-free seeded runs, and 100% detection over a campaign of
//! sampled undetectable-SDC (gray-zone) schedules — the class the
//! fuzzer refused to draw before the checksums existed.

use cpc::prelude::*;
use cpc_charmm::recover::{run_parallel_md_faulty, AbftConfig, FaultConfig};
use cpc_cluster::{sdc_class, FaultPlan, FaultSpace, SdcClass};

fn base_system() -> System {
    let mut sys = cpc_md::builder::water_box(2, 3.1);
    cpc_md::minimize::minimize(&mut sys, EnergyModel::Classic, 40);
    sys
}

fn cfg(ranks: usize, steps: usize) -> MdConfig {
    MdConfig {
        steps,
        ..MdConfig::paper_protocol(
            EnergyModel::Classic,
            Middleware::Mpi,
            ClusterConfig::uni(ranks, NetworkKind::ScoreGigE),
        )
    }
}

/// The ABFT false-positive property: across 200 seeded fault-free
/// trajectories, the armed checksums raise zero corruption verdicts
/// and the physics is bit-identical to the plain (fault-unaware)
/// driver — arming ABFT costs time, never accuracy.
#[test]
fn two_hundred_fault_free_seeds_zero_verdicts_bit_identical_physics() {
    let base = base_system();
    let cfg = cfg(3, 3);
    let armed = FaultConfig::default().with_abft(AbftConfig::armed());
    for seed in 0..200u64 {
        let mut sys = base.clone();
        sys.assign_velocities(150.0, seed);
        let plain = run_parallel_md(&sys, &cfg);
        let ft = run_parallel_md_faulty(&sys, &cfg, &armed).unwrap();
        assert!(ft.completed, "seed {seed}");
        assert_eq!(ft.abft_detections, 0, "false positive at seed {seed}");
        assert_eq!(ft.abft_recomputes, 0, "seed {seed}");
        assert!(
            ft.corruptions.is_empty(),
            "seed {seed}: {:?}",
            ft.corruptions
        );
        assert_eq!(
            ft.report.final_positions, plain.final_positions,
            "seed {seed}: positions diverged"
        );
        assert_eq!(
            ft.report.final_velocities, plain.final_velocities,
            "seed {seed}: velocities diverged"
        );
        for (i, (a, b)) in ft
            .report
            .step_energies
            .iter()
            .zip(&plain.step_energies)
            .enumerate()
        {
            assert_eq!(
                a.classic.to_bits(),
                b.classic.to_bits(),
                "seed {seed} step {i}: classic energy"
            );
            assert_eq!(
                a.kinetic.to_bits(),
                b.kinetic.to_bits(),
                "seed {seed} step {i}: kinetic energy"
            );
        }
    }
}

/// The gray-zone campaign: harvest sampled undetectable-SDC flips from
/// the fuzzer (the class excluded from sampling before this PR), play
/// each schedule against the armed engine, and demand 100% detection
/// with an exact repair — final state bit-identical to the fault-free
/// armed run, numerical watchdog never involved.
#[test]
fn sampled_gray_zone_campaign_is_fully_detected_and_repaired_exactly() {
    let mut sys = base_system();
    sys.assign_velocities(150.0, 3);
    let cfg = cfg(3, 4);
    let abft = AbftConfig::armed();
    let golden =
        run_parallel_md_faulty(&sys, &cfg, &FaultConfig::default().with_abft(abft)).unwrap();

    let space = FaultSpace::new(
        3,
        3,
        cfg.steps as u64,
        golden.report.wall_time,
        sys.n_atoms(),
    );
    let mut campaigns = 0usize;
    let mut index = 0u64;
    while campaigns < 100 {
        let sampled = space.sample(90125, index);
        index += 1;
        // Keep only the gray flips: the schedule under test is "pure
        // undetectable corruption", everything else stripped so the
        // repair can be checked bit-exactly against the golden run.
        let gray: Vec<_> = sampled
            .sdc
            .iter()
            .copied()
            .filter(|f| sdc_class(f) == SdcClass::Undetectable)
            .collect();
        if gray.is_empty() {
            continue;
        }
        let mut plan = FaultPlan::none();
        for f in &gray {
            plan = plan.with_sdc(*f);
        }
        let ft =
            run_parallel_md_faulty(&sys, &cfg, &FaultConfig::new(plan).with_abft(abft)).unwrap();
        assert!(ft.completed, "schedule {index}");
        assert!(ft.sdc_events >= 1, "schedule {index}: flip never fired");
        assert!(
            ft.abft_detections >= 1,
            "schedule {index}: gray flips {gray:?} escaped ABFT"
        );
        assert_eq!(
            ft.watchdog_trips, 0,
            "schedule {index}: caught before the watchdog, no rollback"
        );
        assert_eq!(
            ft.report.final_positions, golden.report.final_positions,
            "schedule {index}: repair must be bit-exact"
        );
        assert_eq!(
            ft.report.final_velocities, golden.report.final_velocities,
            "schedule {index}: repair must be bit-exact"
        );
        campaigns += 1;
    }
    assert!(index < 4000, "the fuzzer samples the gray zone often");
}
