//! Disk-granularity crash-safety: every durable component of the
//! campaign stack runs on an injectable filesystem, and sampled
//! ENOSPC / EIO / short-write / rename-failure / power-loss schedules
//! must uphold the five crash-consistency oracles:
//!
//! 1. **No acked-then-lost**: a result acknowledged durable before a
//!    power cut is still there after restart.
//! 2. **No corrupt-accept**: every recovered result matches a fresh
//!    re-execution of its cell.
//! 3. **No panic**: every injected fault surfaces as a typed error.
//! 4. **No post-failed-fsync trust**: a file whose fsync failed is
//!    abandoned, never published (the fsyncgate policy).
//! 5. **Graceful completion**: once faults clear, the campaign drains
//!    and its artifact is byte-identical to a fault-free reference.

use cpc_cluster::DiskFaultSpace;
use cpc_vfs::{atomic_publish, explore_crashes, DiskFault, DiskFaultPlan, Fs, SimFs};
use cpc_workload::run_disk_chaos;
use std::path::Path;

const CELLS: u64 = 6;

fn tasks() -> Vec<u64> {
    (0..CELLS).collect()
}

fn exec(t: &u64) -> (Vec<f64>, f64) {
    (vec![*t as f64, (*t * *t) as f64], 0.25)
}

// The signature must be exactly `Fn(&R)` with `R = Vec<f64>` to match
// the service's key extractor; a slice would not unify.
#[allow(clippy::ptr_arg)]
fn key_of(r: &Vec<f64>) -> String {
    serde_json::to_string(&(r[0] as u64)).expect("key serializes")
}

/// The fault-free mutating-op horizon of the campaign: the index space
/// every sampled fault position is drawn from.
fn horizon() -> u64 {
    let probe = run_disk_chaos(&tasks(), "e2e-disk", &DiskFaultPlan::none(), key_of, exec)
        .expect("fault-free probe");
    assert!(probe.passed(), "probe violations: {:?}", probe.violations);
    probe.ledger.disk.ops
}

/// ≥50 seeded disk fault schedules — every fault class the sampler
/// draws, composed up to three per schedule — must uphold all five
/// crash-consistency oracles.
#[test]
fn fifty_seeded_disk_schedules_uphold_every_oracle() {
    let space = DiskFaultSpace::new(horizon());
    let mut failed = Vec::new();
    for (seed, count) in [(41u64, 30u64), (2002, 20)] {
        for index in 0..count {
            let plan = space.sample(seed, index);
            let report = run_disk_chaos(&tasks(), "e2e-disk", &plan, key_of, exec)
                .expect("schedules never fail at the driver level");
            if !report.passed() {
                failed.push((seed, index, report.violations.clone()));
            }
        }
    }
    assert!(failed.is_empty(), "failing schedules: {failed:?}");
}

/// A persistent ENOSPC mid-campaign forces the service to quiesce;
/// after the supervisor lifts it, the campaign drains byte-identical
/// to the fault-free reference.
#[test]
fn persistent_enospc_quiesces_then_resumes_byte_identical() {
    let plan = DiskFaultPlan::none().with(DiskFault::EnospcPersistent { at: horizon() / 2 });
    let report = run_disk_chaos(&tasks(), "e2e-disk", &plan, key_of, exec).unwrap();
    assert!(report.passed(), "violations: {:?}", report.violations);
    assert!(report.ledger.disk.enospc_failures >= 1, "the disk filled");
    assert!(report.ledger.enospc_lifts >= 1, "the supervisor lifted it");
    assert_eq!(report.ledger.completed as u64, CELLS);
    assert_eq!(
        report.ledger.artifact_digest,
        report.ledger.reference_digest
    );
}

/// A reordering power cut — each file independently keeps a prefix of
/// its unsynced writes — composed with a fsyncgate EIO must still
/// recover every acknowledged result.
#[test]
fn reordered_power_cut_after_failed_fsync_loses_nothing_acked() {
    let h = horizon();
    let plan = DiskFaultPlan::none()
        .with(DiskFault::EioFsync { at: h / 3 })
        .with(DiskFault::PowerLoss {
            at: 2 * h / 3,
            reorder: true,
            keep_seed: 0xFEED,
        });
    let report = run_disk_chaos(&tasks(), "e2e-disk", &plan, key_of, exec).unwrap();
    assert!(report.passed(), "violations: {:?}", report.violations);
    assert_eq!(report.ledger.acked_then_lost, 0);
    assert_eq!(report.ledger.disk.poisoned_publishes, 0);
}

/// The crash-point explorer proves the audited publish helper leaves a
/// readable old-or-new state at *every* mutating operation boundary —
/// the contract all five durable components now inherit from it.
#[test]
fn atomic_publish_survives_every_crash_point_of_an_overwrite() {
    let report = explore_crashes(
        |fs| {
            fs.create_dir_all(Path::new("/d"))?;
            atomic_publish(fs, Path::new("/d/state"), b"generation-one\n")?;
            atomic_publish(fs, Path::new("/d/state"), b"generation-two\n")
        },
        |fs| {
            // Every crash image holds nothing (before the first
            // publish's rename), generation one, or generation two —
            // never a torn in-between.
            match fs.read(Path::new("/d/state")) {
                Err(_) => Ok(()),
                Ok(bytes) if bytes == b"generation-one\n" || bytes == b"generation-two\n" => Ok(()),
                Ok(bytes) => Err(format!("torn publish visible: {bytes:?}")),
            }
        },
    )
    .expect("every crash image passes");
    assert!(report.ops >= 8, "the walk explored the whole publish");
    assert_eq!(report.crashes, report.ops + 1);
}

/// Determinism: the same `(seed, index)` schedule produces the same
/// ledger on every run — the property that makes a journaled verdict
/// worth resuming past.
#[test]
fn disk_chaos_is_deterministic_in_seed_and_index() {
    let space = DiskFaultSpace::new(horizon());
    for index in [0u64, 7, 19] {
        let plan = space.sample(9, index);
        let a = run_disk_chaos(&tasks(), "e2e-disk", &plan, key_of, exec).unwrap();
        let b = run_disk_chaos(&tasks(), "e2e-disk", &plan, key_of, exec).unwrap();
        assert_eq!(a.ledger, b.ledger, "index {index} diverged");
    }
}

/// The oracle layer itself: a filesystem that records a poisoned
/// publish (post-failed-fsync trust) must be convicted even when the
/// campaign otherwise drains cleanly.
#[test]
fn a_poisoned_publish_is_always_convicted() {
    use cpc_charmm::chaos::{check_disk_ledger, DiskLedger, DiskViolation};
    let mut ledger = DiskLedger {
        total_cells: 1,
        completed: 1,
        executed: 1,
        artifact_digest: Some(42),
        reference_digest: Some(42),
        ..DiskLedger::default()
    };
    ledger.disk.poisoned_publishes = 1;
    let violations = check_disk_ledger(&ledger);
    assert!(violations
        .iter()
        .any(|v| matches!(v, DiskViolation::PoisonedPublish { .. })));
}

/// `SimFs` is a real `Fs`: the sanity anchor that the whole campaign
/// above actually exercised an adversarial filesystem, not a no-op.
#[test]
fn the_sim_filesystem_drops_unsynced_bytes_at_power_cut() {
    let fs = SimFs::new();
    fs.create_dir_all(Path::new("/x")).unwrap();
    let mut f = fs.create(Path::new("/x/a")).unwrap();
    // The directory entry must be fsynced too, or the whole file
    // vanishes at the cut — the adversarial half of the POSIX model.
    fs.sync_dir(Path::new("/x")).unwrap();
    f.write_all(b"synced").unwrap();
    f.sync().unwrap();
    f.write_all(b" unsynced").unwrap();
    drop(f);
    fs.power_cut_now(false, 0);
    fs.restart();
    assert_eq!(fs.read(Path::new("/x/a")).unwrap(), b"synced");
}
