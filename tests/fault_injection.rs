//! End-to-end acceptance tests for the fault-injection subsystem:
//! all-zero plans must not perturb anything, injected faults must cost
//! time deterministically, and a mid-run crash must complete via
//! checkpoint-restart with the recovery booked under its own phase.

use cpc::prelude::*;
use cpc_charmm::{run_parallel_md, run_parallel_md_faulty, FaultConfig};
use cpc_cluster::FaultPlan;
use cpc_workload::runner::quick_system;

fn cfg(p: usize, steps: usize) -> MdConfig {
    MdConfig {
        steps,
        ..MdConfig::paper_protocol(
            EnergyModel::Classic,
            Middleware::Mpi,
            ClusterConfig::uni(p, NetworkKind::ScoreGigE),
        )
    }
}

#[test]
fn zero_plan_changes_nothing() {
    let sys = quick_system();
    let cfg = cfg(4, 2);
    let a = run_parallel_md(&sys, &cfg);
    let b = run_parallel_md(&sys, &cfg);
    assert_eq!(a.wall_time, b.wall_time, "fault-free figures stay stable");
    assert_eq!(a.final_positions, b.final_positions);

    let ft = run_parallel_md_faulty(&sys, &cfg, &FaultConfig::default()).unwrap();
    assert!(ft.completed);
    assert_eq!(ft.survivors, 4);
    assert_eq!(ft.recoveries, 0);
    assert_eq!(ft.recovery_time, 0.0);
    assert_eq!(
        ft.report.phase_breakdown(Phase::Recovery).total(),
        0.0,
        "no recovery time without faults"
    );
    // Same physics, bit for bit.
    assert_eq!(ft.report.final_positions, a.final_positions);
    assert_eq!(ft.report.final_velocities, a.final_velocities);
    let retransmits: u64 = ft.report.per_rank.iter().map(|s| s.retransmits).sum();
    assert_eq!(retransmits, 0, "no retransmissions on clean links");
}

#[test]
fn packet_loss_costs_time_not_physics() {
    let sys = quick_system();
    let cfg = cfg(4, 2);
    let clean = run_parallel_md_faulty(&sys, &cfg, &FaultConfig::default()).unwrap();
    let lossy = run_parallel_md_faulty(
        &sys,
        &cfg,
        &FaultConfig::new(FaultPlan::none().with_loss(0.1)),
    )
    .unwrap();
    assert!(
        lossy.report.wall_time > clean.report.wall_time,
        "retransmissions must cost time: {} vs {}",
        lossy.report.wall_time,
        clean.report.wall_time
    );
    let retransmits: u64 = lossy.report.per_rank.iter().map(|s| s.retransmits).sum();
    assert!(retransmits > 0, "loss must show up in the counters");
    assert_eq!(lossy.report.final_positions, clean.report.final_positions);
}

#[test]
fn straggler_slows_the_whole_run() {
    let sys = quick_system();
    let cfg = cfg(4, 2);
    let clean = run_parallel_md_faulty(&sys, &cfg, &FaultConfig::default()).unwrap();
    let straggling = run_parallel_md_faulty(
        &sys,
        &cfg,
        &FaultConfig::new(FaultPlan::none().with_straggler(0, 2.0)),
    )
    .unwrap();
    // Lockstep collectives drag everyone down to the straggler's pace.
    assert!(
        straggling.report.wall_time > 1.2 * clean.report.wall_time,
        "straggler {} vs clean {}",
        straggling.report.wall_time,
        clean.report.wall_time
    );
    assert_eq!(
        straggling.report.final_positions,
        clean.report.final_positions
    );
}

#[test]
fn mid_run_crash_completes_via_checkpoint_restart() {
    let sys = quick_system();
    let cfg = cfg(3, 4);
    let wall = run_parallel_md(&sys, &cfg).wall_time;
    let ft = run_parallel_md_faulty(
        &sys,
        &cfg,
        &FaultConfig::new(FaultPlan::none().with_crash(2, 0.5 * wall)),
    )
    .unwrap();
    assert_eq!(ft.crashed_ranks, vec![2]);
    assert_eq!(ft.survivors, 2);
    assert!(ft.completed, "survivors must finish all steps");
    assert_eq!(ft.report.step_energies.len(), 4);
    assert!(ft.recoveries >= 1);
    assert!(ft.recovery_time > 0.0);
    assert!(
        ft.report.phase_breakdown(Phase::Recovery).total() > 0.0,
        "recovery must be booked under its own phase"
    );
    // The trajectory survives the rollback and re-execution.
    let plain = run_parallel_md(&sys, &cfg);
    let max_dev = ft
        .report
        .final_positions
        .iter()
        .zip(&plain.final_positions)
        .map(|(a, b)| (*a - *b).norm())
        .fold(0.0f64, f64::max);
    assert!(max_dev < 1e-7, "max deviation {max_dev}");
}

#[test]
fn faulty_runs_replay_bit_identically() {
    let sys = quick_system();
    let cfg = cfg(4, 3);
    let wall = run_parallel_md(&sys, &cfg).wall_time;
    let fault = FaultConfig::new(
        FaultPlan::none()
            .with_loss(0.05)
            .with_straggler(1, 1.5)
            .with_crash(3, 0.6 * wall),
    );
    let run = || run_parallel_md_faulty(&sys, &cfg, &fault).unwrap();
    let (a, b) = (run(), run());
    assert_eq!(a.report.wall_time, b.report.wall_time);
    assert_eq!(a.report.final_positions, b.report.final_positions);
    assert_eq!(a.crashed_ranks, b.crashed_ranks);
    assert_eq!(a.recoveries, b.recoveries);
    assert_eq!(a.recovery_time, b.recovery_time);
    for (sa, sb) in a.report.per_rank.iter().zip(&b.report.per_rank) {
        assert_eq!(sa.retransmits, sb.retransmits);
        assert_eq!(sa.msgs_lost, sb.msgs_lost);
    }
}
