//! Determinism audit: no ambient randomness or wall-clock time may
//! reach simulation or chaos code paths. Every random draw must flow
//! from the seeded `cpc-cluster` RNG and every timestamp from the
//! virtual clock — that is what makes fault schedules, campaign
//! journals and reproducers byte-identical across reruns.
//!
//! The audit greps the workspace crates' sources (shims are external
//! stand-ins and are exempt) for the usual escape hatches. The only
//! allowance is the real-time *stall watchdog* in the cluster engine,
//! which measures how long a blocked receive has made no progress —
//! it decides when to give up on a hung run, never what the
//! simulation computes.

use std::path::{Path, PathBuf};

/// Patterns that smuggle nondeterminism into results.
const FORBIDDEN: &[&str] = &[
    "SystemTime::now",
    "Instant::now",
    "thread_rng",
    "from_entropy",
    "rand::random",
    "getrandom",
];

/// Files allowed to use a specific pattern, with the reason on record.
/// Keep this list short: every entry must justify why the use cannot
/// leak into simulated results.
fn allowed(rel_path: &str, pattern: &str) -> bool {
    // The engine's stall watchdog measures real elapsed time on a
    // *blocked* receive to convert a would-be infinite hang into a
    // typed SimError::Stalled. It never contributes to virtual time,
    // physics, or any journaled figure.
    if rel_path == "netsim/src/engine.rs" && pattern == "Instant::now" {
        return true;
    }
    // The gateway's TcpConn measures real elapsed time on a *real*
    // accepted socket to enforce the slowloris request deadline — the
    // same watchdog role at the transport layer. Campaign results
    // never flow through it deterministically: chaos schedules and
    // tests drive the handler through ScriptedConn, whose elapsed
    // time is scripted.
    if rel_path == "gateway/src/http.rs" && pattern == "Instant::now" {
        return true;
    }
    // The pool throughput benchmark exists to measure real wall-clock
    // rates (cells/sec, schedules/sec) for BENCH_pool.json. Nothing it
    // times flows back into a journal or a chaos verdict — it checks
    // the artifact digests it produces are thread-count-invariant and
    // then throws the artifacts away.
    if rel_path == "bench/src/bin/bench_pool.rs" && pattern == "Instant::now" {
        return true;
    }
    // Same role in the chaos binary: `chaos --bench` times the chaos
    // harnesses themselves (schedules/sec) for BENCH_chaos.json. The
    // timed runs are asserted to PASS their oracles and the wall
    // clock touches only the throughput rows, never a verdict,
    // journal or reproducer.
    rel_path == "bench/src/bin/chaos.rs" && pattern == "Instant::now"
}

fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).expect("crates directory is readable") {
        let path = entry.expect("directory entry").path();
        if path.is_dir() {
            rust_sources(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

#[test]
fn no_ambient_time_or_rng_in_simulation_or_chaos_code() {
    let crates = Path::new(env!("CARGO_MANIFEST_DIR")).join("crates");
    let mut sources = Vec::new();
    rust_sources(&crates, &mut sources);
    assert!(
        sources.len() > 30,
        "audit must actually see the workspace sources, found {}",
        sources.len()
    );

    let mut offenses = Vec::new();
    for path in &sources {
        let text = std::fs::read_to_string(path).expect("source file is readable");
        let rel = path
            .strip_prefix(&crates)
            .expect("source lives under crates/")
            .to_string_lossy()
            .replace('\\', "/");
        for pattern in FORBIDDEN {
            for (i, line) in text.lines().enumerate() {
                if line.contains(pattern) && !allowed(&rel, pattern) {
                    offenses.push(format!("crates/{rel}:{}: {pattern}", i + 1));
                }
            }
        }
    }
    assert!(
        offenses.is_empty(),
        "ambient time/RNG reached simulation code (route it through the \
         seeded cpc-cluster RNG or the virtual clock, or add a justified \
         allowance):\n{}",
        offenses.join("\n")
    );
}

#[test]
fn the_stall_watchdog_allowance_is_still_needed() {
    // If an allowed file ever stops using its pattern, the allowance
    // above must be deleted with it — a stale allowance is a hole in
    // the audit.
    for rel in ["crates/netsim/src/engine.rs", "crates/gateway/src/http.rs"] {
        let path = Path::new(env!("CARGO_MANIFEST_DIR")).join(rel);
        let text = std::fs::read_to_string(path).expect("allowed source is readable");
        assert!(
            text.contains("Instant::now"),
            "{rel} no longer uses Instant::now: remove its allowance from this audit"
        );
    }
}
