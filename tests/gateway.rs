//! Gateway-granularity robustness: the overload-safe multi-tenant
//! HTTP/JSON campaign gateway must (1) keep a well-behaved tenant's
//! throughput within a constant factor of uncontended service while a
//! flooding tenant is shed with 429s, (2) produce byte-identical
//! artifacts to the direct (no-HTTP) campaign path on real
//! measurement cells, fault-free and across `kill -9`, and (3) uphold
//! every gateway oracle over a broad sampled matrix of transport
//! fault schedules.

use cpc_gateway::{
    campaign_id, demo_cells, demo_flood_cells, http_get, http_post, run_gateway_chaos,
    CampaignModel, DemoModel, Gateway, GatewayConfig, ScriptedConn, TenantPolicy,
};
use cpc_md::EnergyModel;
use cpc_workload::factors::ExperimentPoint;
use cpc_workload::full_factorial;
use cpc_workload::runner::{measure_with_model, quick_pme_params, quick_system};
use cpc_workload::service::{artifact_digest, task_key, JobService, KillPoint, ServiceConfig};
use cpc_workload::Measurement;
use serde_json::Value;
use std::path::PathBuf;

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("cpc-gateway-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn send<M: CampaignModel>(gw: &mut Gateway<M>, bytes: Vec<u8>) -> ScriptedConn {
    let mut conn = ScriptedConn::request(bytes);
    gw.handle(&mut conn);
    conn
}

fn submit<M: CampaignModel>(gw: &mut Gateway<M>, tenant: &str, cells: &str) -> ScriptedConn {
    send(
        gw,
        http_post(
            "/campaigns",
            &format!("{{\"tenant\":\"{tenant}\",\"cells\":{cells}}}"),
        ),
    )
}

fn demo_gateway(root: &PathBuf, max_pending_cells: usize) -> Gateway<DemoModel> {
    let mut cfg = GatewayConfig::new(root, "demo");
    cfg.policy = TenantPolicy {
        quantum: 2,
        max_pending_cells,
        aging_rounds: 4,
    };
    Gateway::open(cfg, DemoModel).expect("gateway opens")
}

/// Completed cells of one tenant's campaigns after exactly `budget`
/// DRR grants.
fn completed_after<M: CampaignModel>(gw: &mut Gateway<M>, tenant_id: &str, budget: usize) -> usize {
    let mut granted = 0;
    while granted < budget {
        let r = gw.pump(1);
        if r.granted == 0 {
            break;
        }
        granted += r.granted;
    }
    gw.outcome_of(tenant_id).map_or(0, |o| o.completed)
}

/// The DRR fairness contract: under a flood from one tenant, a
/// well-behaved tenant must keep at least 0.4x the cells-per-grant
/// throughput it gets on an uncontended gateway, and the flood's
/// over-bound submissions must shed with 429 + Retry-After.
#[test]
fn a_flooded_gateway_keeps_the_steady_tenant_at_04x_uncontended_throughput() {
    const BUDGET: usize = 24;
    let steady_cells = demo_cells(16);

    // Uncontended reference: the steady tenant alone.
    let root_u = tmp_dir("drr-uncontended");
    let mut gw = demo_gateway(&root_u, 64);
    assert_eq!(
        submit(&mut gw, "steady", &steady_cells).response_status(),
        Some(201)
    );
    let id = campaign_id("steady", "demo", &steady_cells);
    let uncontended = completed_after(&mut gw, &id, BUDGET);
    assert!(
        uncontended >= 8,
        "the reference makes progress: {uncontended}"
    );

    // Contended: same submission plus a flooding tenant filling its
    // admission bound with distinct campaigns.
    let root_c = tmp_dir("drr-contended");
    let mut gw = demo_gateway(&root_c, 32);
    assert_eq!(
        submit(&mut gw, "steady", &steady_cells).response_status(),
        Some(201)
    );
    for i in 0..4 {
        let cells = format!(
            "[{}]",
            (0..8)
                .map(|j| (1000 + 10 * i + j).to_string())
                .collect::<Vec<_>>()
                .join(",")
        );
        assert_eq!(
            submit(&mut gw, "flood", &cells).response_status(),
            Some(201),
            "flood campaign {i} fits the bound"
        );
    }
    // The fifth crosses max_pending_cells = 32: shed, with advice.
    let conn = submit(&mut gw, "flood", "[2000,2001,2002,2003]");
    assert_eq!(
        conn.response_status(),
        Some(429),
        "over-bound flood is shed"
    );
    let retry: u64 = conn
        .response_header("Retry-After")
        .expect("shed responses carry Retry-After")
        .parse()
        .expect("Retry-After is integral seconds");
    assert!(retry >= 1, "retry advice is at least a second: {retry}");

    let contended = completed_after(&mut gw, &id, BUDGET);
    assert!(
        (contended as f64) >= 0.4 * (uncontended as f64),
        "DRR must hold the steady tenant at >= 0.4x uncontended: \
         {contended} contended vs {uncontended} uncontended in {BUDGET} grants"
    );

    let _ = std::fs::remove_dir_all(&root_u);
    let _ = std::fs::remove_dir_all(&root_c);
}

/// The real campaign model the `serve` binary exposes, inlined: cells
/// name processor counts, a submission expands to the full factor
/// space, and the protocol string matches the direct `campaign` path.
struct QuickModel {
    system: cpc_md::System,
    steps: usize,
    model: EnergyModel,
}

impl QuickModel {
    fn new() -> (Self, String) {
        let steps = 2;
        let model = EnergyModel::Pme(quick_pme_params());
        let protocol = format!("campaign steps={steps} model={model:?}");
        (
            QuickModel {
                system: quick_system(),
                steps,
                model,
            },
            protocol,
        )
    }
}

impl CampaignModel for QuickModel {
    type Task = ExperimentPoint;
    type Result = Measurement;

    fn parse_cells(&self, cells: &Value) -> Result<Vec<ExperimentPoint>, String> {
        let arr = cells
            .as_array()
            .ok_or_else(|| "cells must be a JSON array".to_string())?;
        let counts: Vec<usize> = arr
            .iter()
            .map(|v| {
                v.as_u64()
                    .map(|n| n as usize)
                    .ok_or_else(|| "bad count".to_string())
            })
            .collect::<Result<_, _>>()?;
        Ok(full_factorial(&counts))
    }

    fn key_of(r: &Measurement) -> String {
        task_key(&r.point).expect("experiment point serializes")
    }

    fn exec(&self, point: &ExperimentPoint) -> (Measurement, f64) {
        let m = measure_with_model(&self.system, *point, self.steps, self.model);
        let elapsed = m.energy_time();
        (m, elapsed)
    }
}

/// Runs the direct (no-HTTP) service path over the same cells and
/// protocol; returns the digest of its results journal.
fn direct_reference(dir: &PathBuf, protocol: &str, counts: &[usize]) -> Option<u64> {
    let mut cfg = ServiceConfig::new(dir, protocol);
    cfg.shards = 4;
    let journal = cfg.journal_path();
    let (model, _) = QuickModel::new();
    let tasks = full_factorial(counts);
    let mut service =
        JobService::<Measurement>::open(cfg, QuickModel::key_of).expect("service opens");
    let out = service
        .run(&tasks, |t| model.exec(t))
        .expect("direct run drains");
    assert!(out.drained && out.abandoned == 0);
    artifact_digest(&journal)
}

#[test]
fn a_fault_free_gateway_campaign_is_byte_identical_to_the_direct_path() {
    let root = tmp_dir("mirror");
    let direct_dir = root.join("direct");
    let (model, protocol) = QuickModel::new();
    let want = direct_reference(&direct_dir, &protocol, &[1, 2]);
    assert!(want.is_some(), "reference journal is readable");

    let mut gw = Gateway::open(GatewayConfig::new(root.join("gw"), &protocol), model)
        .expect("gateway opens");
    let conn = submit(&mut gw, "ci", "[1,2]");
    assert_eq!(
        conn.response_status(),
        Some(201),
        "{:?}",
        conn.response_body()
    );
    while !gw.all_done() {
        assert!(
            gw.pump(8).granted > 0 || gw.all_done(),
            "the pump progresses"
        );
    }
    let id = campaign_id("ci", &protocol, "[1,2]");
    let got = artifact_digest(gw.config().campaign_journal(&id));
    assert_eq!(got, want, "HTTP submission must not change a single byte");

    let conn = send(&mut gw, http_get(&format!("/campaigns/{id}/results")));
    assert_eq!(conn.response_status(), Some(200));
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn kill_resume_through_http_reproduces_the_direct_journal() {
    let root = tmp_dir("killmirror");
    let direct_dir = root.join("direct");
    let (model, protocol) = QuickModel::new();
    let want = direct_reference(&direct_dir, &protocol, &[1]);

    // Incarnation 1: armed to die mid-commit at its 4th fresh cell.
    let mut cfg = GatewayConfig::new(root.join("gw"), &protocol);
    cfg.kill = Some((4, KillPoint::MidCommit));
    let mut gw = Gateway::open(cfg, model).expect("gateway opens");
    assert_eq!(submit(&mut gw, "ci", "[1]").response_status(), Some(201));
    let mut fuel = 0;
    while !gw.pump(4).killed {
        fuel += 1;
        assert!(fuel < 100, "the injected kill fires");
    }
    assert!(gw.is_dead());
    drop(gw);

    // Incarnation 2: recovery is construction — no resubmission, the
    // durable meta.json and queue alone must finish the campaign.
    let (model, _) = QuickModel::new();
    let mut gw = Gateway::open(GatewayConfig::new(root.join("gw"), &protocol), model)
        .expect("gateway reopens");
    while !gw.all_done() {
        assert!(gw.pump(8).granted > 0 || gw.all_done(), "resume progresses");
    }
    let id = campaign_id("ci", &protocol, "[1]");
    let got = artifact_digest(gw.config().campaign_journal(&id));
    assert_eq!(got, want, "kill-resume over HTTP must be byte-identical");
    let _ = std::fs::remove_dir_all(&root);
}

/// The CI-gate breadth contract: at least 100 sampled transport fault
/// schedules — malformed and truncated requests, slowloris readers,
/// mid-response disconnects, connection floods, gateway kills — and
/// every one must uphold all six gateway oracles.
#[test]
fn a_hundred_sampled_transport_schedules_uphold_every_gateway_oracle() {
    let space = cpc_cluster::TransportFaultSpace::new(6);
    for index in 0..100 {
        let plan = space.sample(41, index);
        let dir = tmp_dir(&format!("transport-{index}"));
        let report = run_gateway_chaos(
            &dir,
            || DemoModel,
            &demo_cells(6),
            "demo",
            &plan,
            &demo_flood_cells,
        )
        .expect("schedule runs");
        assert!(
            report.passed(),
            "schedule {index} ({:?}) violated: {:?}\nledger: {:?}",
            plan.faults,
            report.violations,
            report.ledger
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
