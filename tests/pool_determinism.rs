//! Cross-thread determinism of the work-stealing executor, checked as
//! a seeded property over hundreds of campaigns:
//!
//! 1. **Fault-free byte-identity**: whatever the campaign shape, a
//!    pooled run at any sweep thread count produces an artifact
//!    byte-for-byte identical to the serial run's — the index-ordered
//!    commit means the interleaving can never reach the journal.
//! 2. **Replayable chaos verdicts**: a `chaos --sched` schedule is
//!    fully described by `(seed, index)`. Re-running the same
//!    schedule must reproduce the same verdict, the same violations,
//!    and the same artifact digests — real-scheduler noise (steal
//!    counts, pause timing) may differ between runs, but nothing the
//!    oracles judge may.

use cpc_cluster::SchedFaultSpace;
use cpc_pool::Pool;
use cpc_workload::run_sched_chaos;
use cpc_workload::service::{artifact_digest, JobService, ServiceConfig};
use std::path::PathBuf;

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("cpc-pool-determinism-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn exec(t: &u64) -> (Vec<f64>, f64) {
    (vec![*t as f64, (*t * *t) as f64], 0.25)
}

// The signature must be exactly `Fn(&R)` with `R = Vec<f64>` to match
// the service's key extractor; a slice would not unify.
#[allow(clippy::ptr_arg)]
fn key_of(r: &Vec<f64>) -> String {
    serde_json::to_string(&(r[0] as u64)).expect("key serializes")
}

/// Cheap deterministic mixing so each seed shapes its own campaign.
fn mix(seed: u64) -> u64 {
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    x ^= x >> 27;
    x.wrapping_mul(0x94D0_49BB_1331_11EB)
}

/// 200 seeded campaign shapes — varying cell count, cell identity and
/// pool width — each run serially and on the pool; the journals must
/// be byte-identical every single time.
#[test]
fn two_hundred_seeds_of_fault_free_byte_identity_across_thread_counts() {
    let base = tmp_dir("identity");
    for seed in 0..200u64 {
        let m = mix(seed);
        let cells = 3 + (m % 8) as usize; // 3..=10 cells
        let offset = (m >> 8) % 100_000; // distinct cell identities
        let threads = [2, 4, 8][(m >> 32) as usize % 3];
        let tasks: Vec<u64> = (0..cells as u64).map(|i| offset + i).collect();

        let serial_cfg = ServiceConfig::new(base.join(format!("s{seed}-serial")), "identity");
        let serial_journal = serial_cfg.journal_path();
        let mut serial = JobService::<Vec<f64>>::open(serial_cfg, key_of).expect("open serial");
        serial.run(&tasks, exec).expect("serial run");
        drop(serial);

        let pooled_cfg = ServiceConfig::new(base.join(format!("s{seed}-pooled")), "identity");
        let pooled_journal = pooled_cfg.journal_path();
        let mut pooled = JobService::<Vec<f64>>::open(pooled_cfg, key_of).expect("open pooled");
        pooled
            .run_pooled(&tasks, &Pool::new(threads), exec)
            .expect("pooled run");
        drop(pooled);

        assert_eq!(
            artifact_digest(&serial_journal),
            artifact_digest(&pooled_journal),
            "seed {seed}: {cells} cells at {threads} threads diverged from serial"
        );
        let _ = std::fs::remove_dir_all(base.join(format!("s{seed}-serial")));
        let _ = std::fs::remove_dir_all(base.join(format!("s{seed}-pooled")));
    }
    let _ = std::fs::remove_dir_all(&base);
}

/// Sched-chaos schedules replayed from `(seed, index)` must reproduce
/// everything the oracles judge: the verdict, the rendered violations,
/// the artifact digests across the whole thread sweep, and the count
/// of injected panics. Scheduler-noise counters (steals, pauses) are
/// deliberately exempt — they describe the real machine, not the
/// campaign.
#[test]
fn sched_chaos_verdicts_replay_deterministically_from_seed() {
    let space = SchedFaultSpace::new(6);
    let tasks: Vec<u64> = (0..6).collect();
    let base = tmp_dir("replay");
    for (seed, count) in [(1702u64, 12u64), (9, 12)] {
        for index in 0..count {
            let plan = space.sample(seed, index);
            let first = run_sched_chaos(
                base.join(format!("a-{seed}-{index}")),
                &tasks,
                "replay",
                &plan,
                key_of,
                exec,
            )
            .expect("first run");
            let second = run_sched_chaos(
                base.join(format!("b-{seed}-{index}")),
                &tasks,
                "replay",
                &plan,
                key_of,
                exec,
            )
            .expect("replay");

            assert_eq!(
                first.passed(),
                second.passed(),
                "seed {seed} index {index}: verdict flipped on replay"
            );
            assert_eq!(
                first.violations, second.violations,
                "seed {seed} index {index}: violations changed on replay"
            );
            assert_eq!(
                first.ledger.artifact_digest, second.ledger.artifact_digest,
                "seed {seed} index {index}: chaos artifact diverged on replay"
            );
            assert_eq!(
                first.ledger.reference_digest, second.ledger.reference_digest,
                "seed {seed} index {index}: serial reference diverged on replay"
            );
            assert_eq!(
                first.ledger.thread_digests, second.ledger.thread_digests,
                "seed {seed} index {index}: fault-free sweep diverged on replay"
            );
            assert_eq!(
                first.ledger.panics_injected, second.ledger.panics_injected,
                "seed {seed} index {index}: panic injection count changed on replay"
            );
            assert!(
                first.passed(),
                "seed {seed} index {index}: sampled schedule violated an oracle: {:?}",
                first.violations
            );
        }
    }
    let _ = std::fs::remove_dir_all(&base);
}
