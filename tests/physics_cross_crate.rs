//! Cross-crate physics invariants: whatever platform factors we vary,
//! the *physics* of the parallel engine must match the sequential
//! engine — only the virtual time may change.

use cpc::prelude::*;
use cpc_fft::Dims3;
use cpc_md::builder::water_box;
use cpc_md::dynamics::Simulation;
use cpc_md::minimize::minimize;
use cpc_md::pme::PmeParams;

fn test_system() -> System {
    let mut sys = water_box(2, 3.1);
    minimize(&mut sys, EnergyModel::Classic, 30);
    sys.assign_velocities(150.0, 9);
    sys
}

fn pme_model() -> EnergyModel {
    EnergyModel::Pme(PmeParams {
        grid: Dims3::new(24, 24, 24),
        order: 4,
        beta: 0.34,
    })
}

fn max_deviation(a: &[Vec3], b: &[Vec3]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (*x - *y).norm())
        .fold(0.0, f64::max)
}

#[test]
fn every_platform_produces_the_same_trajectory() {
    let sys = test_system();
    let mut seq = Simulation::new(sys.clone(), pme_model(), 0.001);
    seq.run(3);

    // Vary every factor: network, middleware, node config, rank count.
    let cases = [
        (NetworkKind::TcpGigE, Middleware::Mpi, 1usize, 1usize),
        (NetworkKind::TcpGigE, Middleware::Cmpi, 4, 1),
        (NetworkKind::ScoreGigE, Middleware::Mpi, 3, 1),
        (NetworkKind::MyrinetGm, Middleware::Mpi, 8, 1),
        (NetworkKind::TcpGigE, Middleware::Mpi, 4, 2),
        (NetworkKind::MyrinetGm, Middleware::Cmpi, 8, 2),
        (NetworkKind::FastEthernet, Middleware::Mpi, 2, 1),
    ];
    for (network, middleware, procs, cpus) in cases {
        let cluster = if cpus == 1 {
            ClusterConfig::uni(procs, network)
        } else {
            ClusterConfig::dual(procs, network)
        };
        let cfg = MdConfig {
            steps: 3,
            ..MdConfig::paper_protocol(pme_model(), middleware, cluster)
        };
        let report = cpc_charmm::run_parallel_md(&sys, &cfg);
        let dev = max_deviation(&report.final_positions, &seq.system.positions);
        assert!(
            dev < 1e-6,
            "{network:?}/{middleware:?}/p={procs}/cpus={cpus}: deviation {dev}"
        );
        let vdev = max_deviation(&report.final_velocities, &seq.system.velocities);
        assert!(vdev < 1e-6, "velocity deviation {vdev}");
    }
}

#[test]
fn energies_agree_with_sequential_components() {
    let sys = test_system();
    let mut seq = Simulation::new(sys.clone(), pme_model(), 0.001);
    let reports = seq.run(2);

    let cfg = MdConfig {
        steps: 2,
        ..MdConfig::paper_protocol(
            pme_model(),
            Middleware::Mpi,
            ClusterConfig::uni(4, NetworkKind::ScoreGigE),
        )
    };
    let par = cpc_charmm::run_parallel_md(&sys, &cfg);
    for (s, p) in reports.iter().zip(&par.step_energies) {
        assert!(
            (s.energy.classic_part() - p.classic).abs() < 1e-6,
            "classic: {} vs {}",
            s.energy.classic_part(),
            p.classic
        );
        assert!(
            (s.energy.pme_part() - p.pme).abs() < 1e-6,
            "pme: {} vs {}",
            s.energy.pme_part(),
            p.pme
        );
        assert!((s.kinetic - p.kinetic).abs() < 1e-6);
    }
}

#[test]
fn classic_model_runs_without_pme_phase() {
    let sys = test_system();
    let cfg = MdConfig {
        steps: 2,
        ..MdConfig::paper_protocol(
            EnergyModel::Classic,
            Middleware::Mpi,
            ClusterConfig::uni(4, NetworkKind::TcpGigE),
        )
    };
    let report = cpc_charmm::run_parallel_md(&sys, &cfg);
    assert!(report.classic_time() > 0.0);
    assert_eq!(
        report.pme_time(),
        0.0,
        "classic model must not touch the PME phase"
    );
    for e in &report.step_energies {
        assert_eq!(e.pme, 0.0);
    }
}

#[test]
fn virtual_time_is_reproducible_but_physics_independent_of_seed() {
    let sys = test_system();
    let mk = |seed: u64| {
        let mut cluster = ClusterConfig::uni(4, NetworkKind::TcpGigE);
        cluster.seed = seed;
        MdConfig {
            steps: 2,
            ..MdConfig::paper_protocol(pme_model(), Middleware::Mpi, cluster)
        }
    };
    let a = cpc_charmm::run_parallel_md(&sys, &mk(1));
    let b = cpc_charmm::run_parallel_md(&sys, &mk(1));
    let c = cpc_charmm::run_parallel_md(&sys, &mk(2));
    // Same seed: identical timing. Different seed: different timing,
    // identical physics.
    assert_eq!(a.wall_time, b.wall_time);
    assert_ne!(a.wall_time, c.wall_time);
    assert_eq!(a.final_positions, c.final_positions);
}
