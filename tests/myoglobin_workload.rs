//! The paper's molecular system, as rebuilt by the synthetic generator:
//! structural checks that the workload matches Section 2.2.

use cpc_md::builder::{myoglobin_raw, MYOGLOBIN_ATOMS, MYOGLOBIN_RESIDUES, MYOGLOBIN_WATERS};
use cpc_md::forcefield::AtomClass;
use cpc_md::neighbor::NeighborList;

#[test]
fn atom_budget_matches_the_paper() {
    let sys = myoglobin_raw();
    assert_eq!(sys.n_atoms(), MYOGLOBIN_ATOMS, "3552 atoms total");
    assert_eq!(MYOGLOBIN_ATOMS, 3552);
    assert_eq!(MYOGLOBIN_RESIDUES, 153);
    assert_eq!(MYOGLOBIN_WATERS, 337);

    // Component budget: 337 waters x 3 + CO (2) + sulfate (5) + protein.
    let n_ow = sys
        .topology
        .atoms
        .iter()
        .filter(|a| a.class == AtomClass::OW)
        .count();
    let n_hw = sys
        .topology
        .atoms
        .iter()
        .filter(|a| a.class == AtomClass::HW)
        .count();
    let n_s = sys
        .topology
        .atoms
        .iter()
        .filter(|a| a.class == AtomClass::S)
        .count();
    assert_eq!(n_ow, 337);
    assert_eq!(n_hw, 674);
    assert_eq!(n_s, 1, "one sulfate sulfur");
    let protein = MYOGLOBIN_ATOMS - 3 * 337 - 2 - 5;
    assert_eq!(protein, 2534);
}

#[test]
fn system_is_neutral_and_valid() {
    let sys = myoglobin_raw();
    assert!(sys.topology.total_charge().abs() < 1e-9);
    sys.topology.validate().unwrap();
    // One backbone N and CA per residue.
    let n_n = sys
        .topology
        .atoms
        .iter()
        .filter(|a| a.class == AtomClass::N)
        .count();
    assert_eq!(n_n, 153);
}

#[test]
fn pme_grid_matches_box_geometry() {
    let params = cpc_workload::runner::paper_pme_params();
    assert_eq!(
        (params.grid.nx, params.grid.ny, params.grid.nz),
        (80, 36, 48)
    );
    let sys = myoglobin_raw();
    // Mesh spacing ~<= 1 A in every dimension (PME accuracy rule).
    assert!(sys.pbox.lengths.x / params.grid.nx as f64 <= 1.0 + 1e-9);
    assert!(sys.pbox.lengths.y / params.grid.ny as f64 <= 1.0 + 1e-9);
    assert!(sys.pbox.lengths.z / params.grid.nz as f64 <= 1.0 + 1e-9);
}

#[test]
fn pair_density_is_in_the_charmm_regime() {
    // The workload characterization hinges on the nonbonded pair count
    // at the 10 A cutoff; the synthetic system must land in the same
    // regime as solvated myoglobin (hundreds of thousands of pairs).
    let sys = myoglobin_raw();
    let list = NeighborList::build(&sys.topology, &sys.pbox, &sys.positions, 10.0, 2.0);
    assert!(
        (200_000..2_000_000).contains(&list.pairs.len()),
        "pair count {}",
        list.pairs.len()
    );
}
