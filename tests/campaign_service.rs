//! Service-granularity crash-safety: the campaign job service
//! (leased sharded work queue + content-addressed result cache +
//! checksummed results journal) must make `kill -9` invisible.
//!
//! Two properties, checked over a seeded schedule matrix:
//!
//! 1. **No lost cell, no unlicensed re-execution**: every cell of the
//!    campaign ends durable exactly once; the only executions beyond
//!    one-per-cell are those a fault explicitly licensed (a worker
//!    killed before its result became durable, or a durable result
//!    destroyed by a torn journal write).
//! 2. **Byte-identical artifact after kill-resume**: however a
//!    schedule interleaves kills, torn queue/journal writes, stale
//!    leases and cache rot, the drained results journal is
//!    byte-for-byte the uninterrupted run's.

use cpc_cluster::ServiceFaultSpace;
use cpc_workload::service::{
    artifact_digest, run_service_chaos, JobService, KillPoint, ServiceConfig,
};
use std::path::PathBuf;

const CELLS: u64 = 6;
const SHARDS: usize = 4;

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("cpc-campaign-service-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// The synthetic campaign: cells `0..CELLS`, each producing
/// `[id, id^2]` at a fixed virtual cost. Deterministic, like every
/// real measurement cell.
fn tasks() -> Vec<u64> {
    (0..CELLS).collect()
}

fn exec(t: &u64) -> (Vec<f64>, f64) {
    (vec![*t as f64, (*t * *t) as f64], 0.25)
}

// The signature must be exactly `Fn(&R)` with `R = Vec<f64>` to match
// the service's key extractor; a slice would not unify.
#[allow(clippy::ptr_arg)]
fn key_of(r: &Vec<f64>) -> String {
    serde_json::to_string(&(r[0] as u64)).expect("key serializes")
}

/// ≥50 seeded service fault schedules — worker kills mid-cell,
/// orchestrator kills mid-commit, torn queue-shard and results-journal
/// writes, stale leases, cache bit flips, composed up to three per
/// schedule — must uphold both service oracles.
#[test]
fn fifty_seeded_service_schedules_uphold_both_oracles() {
    let space = ServiceFaultSpace::new(CELLS as usize, SHARDS);
    let base = tmp_dir("matrix");
    for (seed, count) in [(41u64, 30u64), (2002, 20)] {
        for index in 0..count {
            let plan = space.sample(seed, index);
            let dir = base.join(format!("s{seed}-{index:03}"));
            let report = run_service_chaos(&dir, &tasks(), "svc", &plan, key_of, exec)
                .expect("service chaos I/O");
            assert!(
                report.passed(),
                "seed {seed} schedule {index} ({:?}) violated: {:?}\nledger: {:?}",
                plan.faults,
                report.violations,
                report.ledger
            );
            // The byte-identity oracle is not vacuous: both digests
            // are real file fingerprints, not unreadable-artifact
            // placeholders.
            assert!(report.ledger.reference_digest.is_some());
            assert_eq!(
                report.ledger.artifact_digest,
                report.ledger.reference_digest
            );
        }
    }
    let _ = std::fs::remove_dir_all(&base);
}

/// The explicit kill matrix: a kill at every commit point of every
/// cell position resumes to a byte-identical artifact, and the only
/// execution beyond one-per-cell is the in-flight cell whose result
/// never became durable.
#[test]
fn kill_resume_matrix_every_cell_and_commit_point() {
    let ref_dir = tmp_dir("kill-ref");
    let ref_cfg = ServiceConfig::new(&ref_dir, "svc");
    let ref_journal = ref_cfg.journal_path();
    let mut svc = JobService::<Vec<f64>>::open(ref_cfg, key_of).expect("open reference");
    svc.run(&tasks(), exec).expect("reference run");
    drop(svc);
    let want = artifact_digest(&ref_journal);
    assert!(want.is_some());

    for (tag, point) in [
        ("before", KillPoint::BeforeResult),
        ("mid", KillPoint::MidCommit),
        ("after", KillPoint::AfterCommit),
    ] {
        for cell in 1..=CELLS as usize {
            let dir = tmp_dir(&format!("kill-{tag}-{cell}"));
            let cfg = ServiceConfig {
                kill: Some((cell, point)),
                ..ServiceConfig::new(&dir, "svc")
            };
            let journal = cfg.journal_path();
            let mut svc = JobService::<Vec<f64>>::open(cfg, key_of).expect("open killed");
            let killed = svc.run(&tasks(), exec).expect("killed run");
            assert!(killed.killed, "{tag}/{cell}: the kill fires");
            drop(svc); // SIGKILL: every durable write is already synced.

            let mut svc = JobService::<Vec<f64>>::open(ServiceConfig::new(&dir, "svc"), key_of)
                .expect("reopen");
            let resumed = svc.run(&tasks(), exec).expect("resumed run");
            assert!(resumed.drained, "{tag}/{cell}: resume drains");
            assert_eq!(
                resumed.completed, CELLS as usize,
                "{tag}/{cell}: no lost cell"
            );
            let licensed = CELLS as usize + killed.lost_executions;
            assert!(
                killed.executed + resumed.executed <= licensed,
                "{tag}/{cell}: {} + {} executions exceed licensed {licensed}",
                killed.executed,
                resumed.executed
            );
            assert_eq!(
                artifact_digest(&journal),
                want,
                "{tag}/{cell}: artifact must be byte-identical after kill-resume"
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
    let _ = std::fs::remove_dir_all(&ref_dir);
}

/// Back-to-back kills — a second incarnation killed again before the
/// first resume finishes — still converge to the reference artifact.
#[test]
fn repeated_kills_still_converge() {
    let ref_dir = tmp_dir("rep-ref");
    let ref_cfg = ServiceConfig::new(&ref_dir, "svc");
    let ref_journal = ref_cfg.journal_path();
    let mut svc = JobService::<Vec<f64>>::open(ref_cfg, key_of).expect("open reference");
    svc.run(&tasks(), exec).expect("reference run");
    drop(svc);
    let want = artifact_digest(&ref_journal);

    let dir = tmp_dir("rep-kills");
    for (cells, point) in [
        (2usize, KillPoint::MidCommit),
        (1, KillPoint::BeforeResult),
        (1, KillPoint::AfterCommit),
    ] {
        let cfg = ServiceConfig {
            kill: Some((cells, point)),
            ..ServiceConfig::new(&dir, "svc")
        };
        let mut svc = JobService::<Vec<f64>>::open(cfg, key_of).expect("open incarnation");
        svc.run(&tasks(), exec).expect("killed incarnation");
        drop(svc);
    }
    let cfg = ServiceConfig::new(&dir, "svc");
    let journal = cfg.journal_path();
    let mut svc = JobService::<Vec<f64>>::open(cfg, key_of).expect("final open");
    let out = svc.run(&tasks(), exec).expect("final drain");
    assert!(out.drained);
    assert_eq!(out.completed, CELLS as usize);
    assert_eq!(artifact_digest(&journal), want);
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&ref_dir);
}
