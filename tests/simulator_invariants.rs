//! Qualitative invariants of the virtual platform — the orderings the
//! paper reports must be stable properties of the simulator, not
//! accidents of one run.

use cpc::prelude::*;
use cpc_workload::runner::{measure_with_model, quick_pme_params, quick_system};

fn model() -> EnergyModel {
    EnergyModel::Pme(quick_pme_params())
}

fn energy_time(point: ExperimentPoint) -> f64 {
    let sys = quick_system();
    measure_with_model(&sys, point, 2, model()).energy_time()
}

#[test]
fn network_quality_ordering_at_scale() {
    let t = |network| {
        energy_time(ExperimentPoint {
            network,
            ..ExperimentPoint::focal(8)
        })
    };
    let tcp = t(NetworkKind::TcpGigE);
    let fast = t(NetworkKind::FastEthernet);
    let score = t(NetworkKind::ScoreGigE);
    let myri = t(NetworkKind::MyrinetGm);
    assert!(myri < score, "myrinet {myri} vs score {score}");
    assert!(score < tcp, "score {score} vs tcp {tcp}");
    assert!(tcp < fast, "tcp {tcp} vs fast ethernet {fast}");
}

#[test]
fn myrinet_scales_monotonically_to_eight() {
    let t = |p| {
        energy_time(ExperimentPoint {
            network: NetworkKind::MyrinetGm,
            ..ExperimentPoint::focal(p)
        })
    };
    let (t1, t2, t4, t8) = (t(1), t(2), t(4), t(8));
    assert!(t2 < t1, "{t2} vs {t1}");
    assert!(t4 < t2, "{t4} vs {t2}");
    assert!(t8 < t4, "{t8} vs {t4}");
}

#[test]
fn cmpi_never_beats_mpi_on_tcp() {
    for p in [2usize, 4, 8] {
        let mpi = energy_time(ExperimentPoint::focal(p));
        let cmpi = energy_time(ExperimentPoint {
            middleware: Middleware::Cmpi,
            ..ExperimentPoint::focal(p)
        });
        assert!(cmpi >= mpi * 0.98, "p={p}: cmpi {cmpi} vs mpi {mpi}");
    }
}

#[test]
fn dual_nodes_cost_little_on_myrinet_much_on_tcp() {
    let uni_tcp = energy_time(ExperimentPoint::focal(8));
    let dual_tcp = energy_time(ExperimentPoint {
        node: NodeConfig::Dual,
        ..ExperimentPoint::focal(8)
    });
    let uni_myri = energy_time(ExperimentPoint {
        network: NetworkKind::MyrinetGm,
        ..ExperimentPoint::focal(8)
    });
    let dual_myri = energy_time(ExperimentPoint {
        network: NetworkKind::MyrinetGm,
        node: NodeConfig::Dual,
        ..ExperimentPoint::focal(8)
    });
    let tcp_ratio = dual_tcp / uni_tcp;
    let myri_ratio = dual_myri / uni_myri;
    assert!(tcp_ratio > 1.15, "TCP dual/uni {tcp_ratio}");
    assert!(myri_ratio < 1.3, "Myrinet dual/uni {myri_ratio}");
    assert!(tcp_ratio > myri_ratio);
}

#[test]
fn throughput_ordering_and_stability() {
    let sys = quick_system();
    let m = |network| {
        measure_with_model(
            &sys,
            ExperimentPoint {
                network,
                ..ExperimentPoint::focal(8)
            },
            2,
            model(),
        )
        .throughput
        .expect("payload traffic at p=8")
    };
    let (tcp_avg, tcp_min, tcp_max) = m(NetworkKind::TcpGigE);
    let (sc_avg, sc_min, sc_max) = m(NetworkKind::ScoreGigE);
    let (my_avg, ..) = m(NetworkKind::MyrinetGm);
    assert!(my_avg > sc_avg, "myrinet {my_avg} vs score {sc_avg}");
    assert!(sc_avg > tcp_avg, "score {sc_avg} vs tcp {tcp_avg}");
    // The paper's warning sign: TCP spread dwarfs SCore's.
    assert!(tcp_max / tcp_min > 2.0 * (sc_max / sc_min));
}

#[test]
fn slower_cpus_shift_the_balance_toward_computation() {
    // Ablation on the CPU factor: a half-speed CPU makes the same
    // communication look relatively cheaper.
    let sys = quick_system();
    let mut point = ExperimentPoint::focal(4);
    let fast = measure_with_model(&sys, point, 2, model());
    // Scale the cost model to a 0.5 GHz part.
    let mut cluster = point.cluster();
    cluster.cpu.ghz = 0.5;
    point.procs = 4;
    let cfg = MdConfig {
        steps: 2,
        ..MdConfig::paper_protocol(model(), Middleware::Mpi, cluster)
    };
    let slow_report = cpc_charmm::run_parallel_md(&sys, &cfg);
    let slow = cpc_workload::runner::summarize(point, &slow_report);
    assert!(
        slow.energy_pct.0 > fast.energy_pct.0,
        "comp share must grow on slower CPUs"
    );
    assert!(slow.energy_time() > fast.energy_time());
}
